#!/usr/bin/env python
"""Run-over-run speedup trend from ``BENCH_history.jsonl``.

``repro bench --record`` appends one JSON document per benchmark run;
this is the reader side: a per-gate trend table (speedup, delta vs the
previous run, ratio vs the first recorded run, gate verdict) so a
regression shows up as a trend, not a single noisy sample.

    python scripts/bench_trend.py                # all gates
    python scripts/bench_trend.py --metric np    # filter by metric text
    python scripts/bench_trend.py --json         # machine-readable

Stdlib only (plus the repo's own table renderer).  A missing or empty
history exits 2 with a one-line explanation on stderr — a CI step that
*expected* a trend must fail loudly, not print an empty table and pass.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.tables import render_table  # noqa: E402

_PAIR = re.compile(r"([\w-]+) vs ([\w-]+) backend")


def gate_label(gate: Dict) -> str:
    """Short stable label for one gate across metric-wording changes."""
    match = _PAIR.search(gate.get("metric", ""))
    if match:
        return f"{match.group(1)} vs {match.group(2)}"
    return gate.get("metric", "?")


def load_history(path: Path) -> List[Dict]:
    records = []
    with open(path, encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                print(f"warning: {path}:{i + 1}: bad JSON ({exc})",
                      file=sys.stderr)
    records.sort(key=lambda r: r.get("recorded_at", ""))
    return records


def collect_trends(records: List[Dict]) -> Dict[str, List[Dict]]:
    """Label -> chronological list of {recorded_at, speedup, target}."""
    trends: Dict[str, List[Dict]] = {}
    for record in records:
        # early records carried a single "gate"; later ones a "gates" list
        gates = record.get("gates") or (
            [record["gate"]] if record.get("gate") else []
        )
        for gate in gates:
            if not isinstance(gate.get("speedup"), (int, float)):
                continue
            trends.setdefault(gate_label(gate), []).append(
                {
                    "recorded_at": record.get("recorded_at", "?"),
                    "speedup": gate["speedup"],
                    "target": gate.get("target"),
                }
            )
    return trends


def render_trend(label: str, samples: List[Dict]) -> str:
    first = samples[0]["speedup"]
    rows = []
    prev = None
    for i, sample in enumerate(samples):
        speedup = sample["speedup"]
        target = sample["target"]
        rows.append(
            [
                i + 1,
                sample["recorded_at"],
                f"{speedup:.3f}x",
                "-" if prev is None else f"{speedup - prev:+.3f}",
                f"{speedup / first:.2f}x" if first else "-",
                "-" if target is None else f"{target:.1f}x",
                "-" if target is None else ("ok" if speedup >= target else "MISS"),
            ]
        )
        prev = speedup
    return render_table(
        ["run", "recorded_at", "speedup", "d prev", "vs first", "target",
         "gate"],
        rows,
        title=f"speedup trend - {label}",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="render run-over-run gate-speedup trends from "
        "BENCH_history.jsonl"
    )
    parser.add_argument(
        "history", nargs="?", default=str(REPO_ROOT / "BENCH_history.jsonl"),
        help="history file (default: BENCH_history.jsonl at the repo root)",
    )
    parser.add_argument(
        "--metric", default=None,
        help="only gates whose label contains this substring",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the trend data as JSON instead of tables",
    )
    args = parser.parse_args(argv)

    path = Path(args.history)
    if not path.exists():
        print(
            f"error: no benchmark history at {path} "
            "(run `repro bench --record` first)",
            file=sys.stderr,
        )
        return 2
    trends = collect_trends(load_history(path))
    if not trends:
        print(
            f"error: {path} contains no gate samples "
            "(empty or unrecognized history)",
            file=sys.stderr,
        )
        return 2
    if args.metric:
        trends = {
            label: samples for label, samples in trends.items()
            if args.metric.lower() in label.lower()
        }
        if not trends:
            print(
                f"error: no gate label matches --metric {args.metric!r}",
                file=sys.stderr,
            )
            return 2
    if args.as_json:
        print(json.dumps(trends, indent=2, sort_keys=True))
        return 0
    blocks = [render_trend(label, trends[label]) for label in sorted(trends)]
    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        raise SystemExit(0)
