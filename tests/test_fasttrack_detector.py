"""Unit tests for FASTTRACK (Algorithms 7 and 8) and its metadata moves."""

from repro.core.clocks import Epoch
from repro.detectors import FastTrackDetector, GenericDetector
from repro.trace.events import acq, fork, join, rd, rel, vol_rd, vol_wr, wr
from repro.trace.generator import random_trace

X, Y = 1, 2
L, L2 = 100, 101
V = 200


def run(events):
    d = FastTrackDetector()
    d.run(events)
    return d


class TestRaceDetection:
    def test_ww_race(self):
        d = run([fork(0, 1), wr(0, X, site=1), wr(1, X, site=2)])
        assert [r.kind for r in d.races] == ["ww"]

    def test_wr_race(self):
        d = run([fork(0, 1), wr(0, X, site=1), rd(1, X, site=2)])
        assert [r.kind for r in d.races] == ["wr"]

    def test_rw_race(self):
        d = run([fork(0, 1), rd(0, X, site=1), wr(1, X, site=2)])
        assert [r.kind for r in d.races] == ["rw"]

    def test_lock_discipline_race_free(self):
        d = run(
            [
                fork(0, 1),
                acq(0, L), rd(0, X), wr(0, X), rel(0, L),
                acq(1, L), rd(1, X), wr(1, X), rel(1, L),
            ]
        )
        assert d.races == []

    def test_fork_join_race_free(self):
        d = run([wr(0, X), fork(0, 1), wr(1, X), join(0, 1), wr(0, X)])
        assert d.races == []

    def test_volatile_ordering(self):
        d = run(
            [fork(0, 1), wr(0, X), vol_wr(0, V), vol_rd(1, V), wr(1, X)]
        )
        assert d.races == []

    def test_shortest_race_only(self):
        # w0 races w1; w1 races r1... FASTTRACK reports only the race with
        # the *last* conflicting access recorded in metadata.
        d = run(
            [
                fork(0, 1),
                wr(0, X, site=1),
                wr(1, X, site=2),  # races site 1
                acq(1, L), rel(1, L),
                acq(0, L), rd(0, X, site=3),  # ordered after site 2 via L
            ]
        )
        assert [(r.first_site, r.second_site) for r in d.races] == [(1, 2)]

    def test_write_read_same_thread_no_race(self):
        d = run([wr(0, X), rd(0, X), wr(0, X)])
        assert d.races == []


class TestEpochTransitions:
    # metadata introspection goes through ``var_view``, which reconstructs
    # the same VarState shape on either state backend

    def test_read_same_epoch_is_noop(self):
        d = FastTrackDetector()
        d.run([rd(0, X, site=1)])
        before = list(d.var_view(X).read.entries())
        d.apply(rd(0, X, site=9))  # same epoch: no update at all
        assert list(d.var_view(X).read.entries()) == before

    def test_read_map_inflates_for_concurrent_reads(self):
        d = FastTrackDetector()
        d.run([fork(0, 1), rd(0, X), rd(1, X)])
        assert not d.var_view(X).read.is_epoch
        assert len(d.var_view(X).read) == 2

    def test_ordered_reads_stay_epoch(self):
        d = FastTrackDetector()
        d.run(
            [
                fork(0, 1),
                rd(0, X),
                acq(0, L), rel(0, L),
                acq(1, L), rd(1, X),
            ]
        )
        assert d.var_view(X).read.is_epoch
        assert d.var_view(X).read.epoch.tid == 1

    def test_write_clears_read_map(self):
        # the paper's modified FASTTRACK clears R at writes
        d = FastTrackDetector()
        d.run([fork(0, 1), rd(0, X), rd(1, X), wr(0, X)])
        assert d.var_view(X).read is None

    def test_write_epoch_recorded(self):
        d = FastTrackDetector()
        d.run([wr(0, X)])
        assert d.var_view(X).write == Epoch(1, 0)

    def test_same_epoch_write_is_noop(self):
        d = FastTrackDetector()
        d.run([wr(0, X, site=1), rd(0, Y), wr(0, X, site=2)])
        assert d.var_view(X).write_site == 1  # second write skipped

    def test_release_advances_epoch(self):
        d = FastTrackDetector()
        d.run([wr(0, X, site=1), acq(0, L), rel(0, L), wr(0, X, site=2)])
        assert d.var_view(X).write_site == 2
        assert d.var_view(X).write == Epoch(2, 0)


class TestEquivalenceWithGeneric:
    def test_same_distinct_races_on_random_traces(self):
        for seed in range(25):
            trace = random_trace(seed=seed, length=300)
            ft = FastTrackDetector()
            ft.run(trace)
            g = GenericDetector()
            g.run(trace)
            # FASTTRACK reports a subset of GENERIC's distinct races
            # (shortest only), and both flag the same racy variables.
            assert {r.var for r in ft.races} == {r.var for r in g.races}
            assert ft.distinct_races <= g.distinct_races

    def test_race_free_traces_equivalent(self):
        from repro.trace.generator import race_free_trace

        for seed in range(10):
            trace = race_free_trace(seed=seed, length=200)
            ft = FastTrackDetector()
            assert ft.run(trace) == []


class TestAccounting:
    def test_footprint_counts_metadata(self):
        d = run([fork(0, 1), rd(0, X), rd(1, X), wr(0, Y), acq(0, L), rel(0, L)])
        assert d.footprint_words() > 0

    def test_epoch_cheaper_than_read_map(self):
        epoch_d = run([rd(0, X)])
        map_d = run([fork(0, 1), fork(0, 2), rd(0, X), rd(1, X), rd(2, X)])
        assert map_d.var_view(X).read.words() > epoch_d.var_view(X).read.words()
