"""The online LiteRace baseline (paper §5.3)."""

from repro.detectors import FastTrackDetector, LiteRaceDetector
from repro.trace.events import Event, fork, join, rd, wr
from repro.trace.events import METHOD_ENTER, METHOD_EXIT


def enter(tid, m):
    return Event(METHOD_ENTER, tid, m, 0)


def exit_(tid, m):
    return Event(METHOD_EXIT, tid, m, 0)


def hot_loop_trace(iters=2000, racy_every=0):
    """Two threads repeatedly invoking hot method 7; optionally an
    unsynchronized racy pair inside the hot code."""
    events = [fork(0, 1)]
    for i in range(iters):
        tid = i % 2
        events.append(enter(tid, 7))
        events.append(rd(tid, 100 + tid, site=1))
        # racy accesses land deep into the loop (never in the warm-up
        # invocations, which LiteRace samples at 100%); hits both parities
        if racy_every and i % racy_every >= racy_every - 2:
            if tid == 0:
                events.append(wr(0, 55, site=10))
            else:
                events.append(wr(1, 55, site=11))
        events.append(exit_(tid, 7))
    events.append(join(0, 1))
    return events


class TestAdaptiveSampling:
    def test_effective_rate_decays_for_hot_code(self):
        d = LiteRaceDetector(burst_length=10, seed=1)
        d.run(hot_loop_trace(4000))
        assert d.effective_rate < 0.10

    def test_cold_code_fully_instrumented(self):
        d = LiteRaceDetector(burst_length=10, seed=1)
        events = [fork(0, 1)]
        # each method invoked once per thread: always sampled
        for m in range(20):
            events += [enter(0, 50 + m), rd(0, m, site=m), exit_(0, 50 + m)]
        events.append(join(0, 1))
        d.run(events)
        assert d.effective_rate == 1.0

    def test_first_invocations_sampled(self):
        d = LiteRaceDetector(burst_length=100, seed=2)
        d.run(hot_loop_trace(40))
        assert d.effective_rate > 0.9

    def test_min_rate_floor(self):
        d = LiteRaceDetector(burst_length=1, min_rate=0.001, seed=3)
        d.run(hot_loop_trace(3000))
        assert d.sampled_accesses > 0  # never fully off

    def test_burst_length_increases_coverage(self):
        short = LiteRaceDetector(burst_length=1, seed=4)
        short.run(hot_loop_trace(3000))
        long = LiteRaceDetector(burst_length=1000, seed=4)
        long.run(hot_loop_trace(3000))
        assert long.effective_rate > short.effective_rate

    def test_top_level_code_gets_initial_burst(self):
        d = LiteRaceDetector(burst_length=50, seed=5)
        d.run([fork(0, 1)] + [rd(0, 1, site=1)] * 10 + [join(0, 1)])
        assert d.sampled_accesses == 10


class TestRaceFinding:
    def test_finds_cold_races_reliably(self):
        found = 0
        for seed in range(10):
            d = LiteRaceDetector(burst_length=10, seed=seed)
            events = [fork(0, 1)]
            events += [enter(0, 5), wr(0, 9, site=1), exit_(0, 5)]
            events += [enter(1, 6), wr(1, 9, site=2), exit_(1, 6)]
            events.append(join(0, 1))
            d.run(events)
            found += bool(d.races)
        assert found == 10  # cold code: sampled at 100%

    def test_misses_hot_races_often(self):
        """Races between two hot accesses escape LiteRace (Figure 6)."""
        trials = 15
        ft_found = lr_found = 0
        for seed in range(trials):
            trace = hot_loop_trace(3000, racy_every=1000)
            ft = FastTrackDetector()
            ft.run(trace)
            ft_found += bool(ft.races)
            lr = LiteRaceDetector(burst_length=10, seed=seed)
            lr.run(trace)
            lr_found += bool(lr.races)
        assert ft_found == trials
        assert lr_found < trials  # LiteRace misses the hot race sometimes

    def test_sync_always_tracked_no_false_positives(self):
        """Sampling code never loses happens-before edges."""
        from repro.trace.generator import race_free_trace

        for seed in range(8):
            trace = race_free_trace(seed=seed, length=300)
            d = LiteRaceDetector(burst_length=5, seed=seed)
            d.run(trace)
            assert d.races == []

    def test_space_never_discarded(self):
        d = LiteRaceDetector(burst_length=10, seed=1)
        d.run(hot_loop_trace(2000))
        footprint_mid = d.footprint_words()
        d.run(hot_loop_trace(2000))
        assert d.footprint_words() >= footprint_mid
