"""Detection-quality accounting (``repro.obs.quality``).

Pins the tentpole contracts of the coverage layer:

* ``repro/coverage-report/v1`` is a pure function of counters, marks,
  and races — byte-identical across state backends and between the
  streamed and offline paths (modulo the ``source`` label);
* the live :class:`RaceMonitor`/:class:`SamplingDriver` records the
  same sampling marks an offline replay of the same event sequence
  sees, and the two coverage documents agree;
* the matrix-level proportionality audit confirms detection ∝ sampling
  rate within the Wilson 95% interval on seeded workloads.
"""

import json
import random

import pytest

from repro.analysis.parallel import expand_matrix, matrix_coverage, run_matrix
from repro.core.backend import BACKENDS
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector
from repro.live import RaceMonitor
from repro.live.monitor import SamplingDriver
from repro.obs import FlightRecorder, RunObserver
from repro.obs.quality import (
    COVERAGE_SCHEMA,
    ProportionalityAuditor,
    build_coverage,
    effective_rate_ci,
    merge_coverage,
    render_coverage,
    sync_op_split,
    validate_coverage,
    write_coverage,
)
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.scheduler import run_program
from repro.sim.workloads import WORKLOADS, build_program
from repro.trace.events import fork, rd, sbegin, send, wr

X = 1


def _doc_bytes(doc):
    return json.dumps(doc, indent=2, sort_keys=True).encode()


def _live_run(backend=None, rate=0.1, seed=5, scale=0.4, workload="micro"):
    """One seeded live PACER run; returns (runtime, detector, observer)."""
    detector = PacerDetector(backend=backend)
    obs = RunObserver()
    runtime = Runtime(
        build_program(WORKLOADS[workload].scaled(scale), seed),
        detector,
        controller=BiasCorrectedController(rate, rng=random.Random(seed)),
        config=RuntimeConfig(track_memory=False),
        seed=seed,
        observer=obs,
    )
    runtime.run()
    return runtime, detector, obs


def _live_coverage(backend=None, **kwargs):
    runtime, detector, obs = _live_run(backend=backend, **kwargs)
    return build_coverage(
        source="detect",
        detector=detector.name,
        workload="micro",
        nominal_rate=kwargs.get("rate", 0.1),
        counters=detector.counters.snapshot(),
        marks=obs.sampling_marks,
        races=detector.races,
        events=runtime.events,
    )


class TestBuildAndValidate:
    def test_sync_op_split(self):
        counters = {
            "joins_slow_sampling": 3, "joins_fast_sampling": 4,
            "copies_deep_sampling": 2, "copies_shallow_sampling": 1,
            "joins_slow_nonsampling": 10, "copies_deep_nonsampling": 20,
            "reads_fast_sampling": 999,  # access counters never count
        }
        assert sync_op_split(counters) == (10, 40)

    def test_effective_rate_ci_empty(self):
        assert effective_rate_ci(0, 0) == (0.0, None)

    def test_build_valid_document(self):
        doc = _live_coverage()
        assert doc["schema"] == COVERAGE_SCHEMA
        assert validate_coverage(doc) == []
        assert 0.0 < doc["sync"]["effective_rate"] < 1.0
        assert doc["periods"]["count"] > 0
        # attribution is total: every race is in or out of a period
        races = doc["races"]
        assert races["first_in_period"] + races["unattributed"] == races["dynamic"]

    def test_always_on_detector_rate_is_one(self):
        detector = FastTrackDetector()
        detector.run(run_program(build_program(
            WORKLOADS["micro"].scaled(0.3), 1), seed=1))
        doc = build_coverage(
            source="analyze", detector=detector.name,
            counters=detector.counters.snapshot(), races=detector.races,
            events=detector.perf.events,
        )
        assert validate_coverage(doc) == []
        assert doc["sync"]["effective_rate"] == 1.0
        assert doc["estimate"]["true_dynamic"] == len(detector.races)

    def test_validation_catches_corruption(self):
        doc = _live_coverage()
        bad = json.loads(json.dumps(doc))
        bad["sync"]["sampled"] = bad["sync"]["total"] + 1
        assert validate_coverage(bad)
        bad = json.loads(json.dumps(doc))
        bad["races"]["first_in_period"] = None
        assert validate_coverage(bad)
        del doc["estimate"]
        assert validate_coverage(doc)
        assert validate_coverage("nope")
        assert validate_coverage({"schema": "other/v9"})

    def test_write_is_deterministic(self, tmp_path):
        doc = _live_coverage()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_coverage(a, doc)
        write_coverage(b, json.loads(json.dumps(doc)))
        assert a.read_bytes() == b.read_bytes()

    def test_render_smoke(self):
        text = render_coverage(_live_coverage())
        assert "effective sampling rate" in text
        assert "estimated true dynamic races" in text


class TestAuditor:
    def test_reentrant_accumulation(self):
        runtime, detector, obs = _live_run()
        auditor = ProportionalityAuditor(
            source="audit", detector=detector.name, nominal_rate=0.1
        )
        # observe twice: the second call must replace, not double-count
        auditor.observe_detector(detector, events=runtime.events)
        auditor.observe_marks(obs.sampling_marks)
        first = auditor.coverage()
        auditor.observe_detector(detector, events=runtime.events)
        auditor.observe_marks(obs.sampling_marks)
        assert auditor.coverage() == first
        assert validate_coverage(first) == []
        assert auditor.effective_rate() == pytest.approx(
            first["sync"]["effective_rate"], abs=1e-9
        )


class TestMerge:
    def test_merge_pools_sync_ops(self):
        docs = [_live_coverage(seed=s) for s in (1, 2)]
        merged = merge_coverage(docs, source="merged")
        assert validate_coverage(merged) == []
        assert merged["sync"]["sampled"] == sum(
            d["sync"]["sampled"] for d in docs
        )
        assert merged["trials"] == 2
        assert merged["races"]["dynamic"] == sum(
            d["races"]["dynamic"] for d in docs
        )

    def test_merge_is_associative(self):
        docs = [_live_coverage(seed=s) for s in (1, 2, 3)]
        left = merge_coverage([merge_coverage(docs[:2])] + docs[2:])
        right = merge_coverage(docs[:1] + [merge_coverage(docs[1:])])
        # labels collapse identically; compare everything but source
        left.pop("source"), right.pop("source")
        assert left == right

    def test_merge_empty(self):
        doc = merge_coverage([], source="telemetry")
        assert validate_coverage(doc) == []
        assert doc["trials"] == 0 and doc["sync"]["total"] == 0


class TestBackendParity:
    def test_byte_identical_across_backends(self):
        """The acceptance bar: one run's coverage document is the same
        bytes no matter which state backend analyzed it."""
        blobs = {
            backend: _doc_bytes(_live_coverage(backend=backend))
            for backend in BACKENDS
        }
        reference = blobs[BACKENDS[0]]
        assert all(blob == reference for blob in blobs.values()), (
            "coverage documents differ across state backends"
        )


class TestStreamedVsOffline:
    def test_telemetry_equals_offline_modulo_source(self):
        """A streamed session's coverage equals offline analysis of the
        same trace — ``source`` is the only differing field."""
        from repro.net import ServerConfig, TelemetryClient, TelemetryServer

        events = [
            fork(0, 1), fork(0, 2),
            sbegin(), wr(1, X, site=11), wr(2, X, site=12), send(),
            rd(1, X, site=13), wr(2, X, site=14),
            sbegin(), rd(1, X, site=15), send(),
        ]
        # offline: the analyze path (observer marks from on_sampling)
        detector = PacerDetector()
        obs = RunObserver()
        obs.attach(detector)
        detector.run(events)
        obs.finalize(detector)
        offline = build_coverage(
            source="analyze", detector=detector.name,
            counters=detector.counters.snapshot(), marks=obs.sampling_marks,
            races=detector.races, events=detector.perf.events,
        )
        with TelemetryServer(
            ServerConfig(shard_mode="inline", n_shards=2)
        ) as server:
            client = TelemetryClient(
                server.address, "parity", detector="pacer", chunk_size=3
            )
            client.connect()
            client.send_events(events)
            client.close()
            streamed = server.session_doc("parity")["coverage"]
        assert validate_coverage(streamed) == []
        assert streamed["source"] == "telemetry"
        assert offline["source"] == "analyze"
        assert dict(streamed, source=None) == dict(offline, source=None)


class TestLiveOfflineParity:
    def test_sampling_mark_and_coverage_parity(self):
        """Satellite: the live monitor + driver record the same
        sbegin/send marks an offline replay of the same sequence sees,
        and both sides build the same coverage document."""
        monitor = RaceMonitor(
            detector=PacerDetector(),
            observer=RunObserver(recorder=FlightRecorder()),
        )
        driver = SamplingDriver(monitor, rate=0.5, rng=random.Random(9))
        x = monitor.shared("x")
        # drive the period clock by hand: deterministic, single-threaded
        script = []

        def step(n=1):
            for _ in range(n):
                driver._toggle_once()
                script.append(("toggle", driver.sampled_periods))

        step()
        x.set(1)
        x.set(2)
        step(3)
        v = x.get()
        assert v == 2
        step(2)
        x.set(3)
        driver.stop()
        monitor.finalize()
        live_marks = list(monitor.observer.recorder.sampling_marks)
        assert live_marks, "driver recorded no sampling transitions"

        # offline replay: same accesses, sbegin/send at the marked vts
        accesses = [
            wr(0, 0, site="a"), wr(0, 0, site="b"),
            rd(0, 0, site="c"), wr(0, 0, site="d"),
        ]
        # live marks don't advance the clock, so several can share one
        # vt — replay them as an ordered merge, never a dict
        events, mi = [], 0
        for i, ev in enumerate(accesses):
            while mi < len(live_marks) and live_marks[mi][0] <= i:
                events.append(sbegin() if live_marks[mi][1] else send())
                mi += 1
            events.append(ev)
        for _, entering in live_marks[mi:]:  # trailing toggles
            events.append(sbegin() if entering else send())
        detector = PacerDetector(sampling=False)
        obs = RunObserver(recorder=FlightRecorder())
        obs.attach(detector)
        detector.run(events)
        obs.finalize(detector)
        offline_marks = list(obs.recorder.sampling_marks)
        assert [e for _, e in offline_marks] == [e for _, e in live_marks]

        live_cov = monitor.coverage_report(nominal_rate=0.5)
        offline_cov = build_coverage(
            source="live", detector=detector.name, nominal_rate=0.5,
            counters=detector.counters.snapshot(), marks=obs.sampling_marks,
            races=detector.races, events=detector.perf.events,
        )
        assert validate_coverage(live_cov) == []
        assert live_cov["periods"] == offline_cov["periods"]
        assert live_cov["sync"] == offline_cov["sync"]


class TestMatrixAudit:
    def test_detection_proportional_within_wilson(self):
        """Acceptance: on a seeded workload the audit confirms detection
        rate ∝ sampling rate within the Wilson 95% interval at three
        rates spanning two orders of magnitude."""
        rates = [0.01, 0.1, 0.5]
        tasks = expand_matrix(
            workloads=["pseudojbb"],
            detectors=["fasttrack", "pacer"],
            rates=[None] + rates,
            seeds=range(8),
            scale=0.2,
        )
        results = run_matrix(tasks, jobs=4)
        doc = matrix_coverage(tasks, results)
        assert validate_coverage(doc) == []
        audit = {row["rate"]: row for row in doc["audit"]}
        assert sorted(audit) == rates
        for rate in rates:
            row = audit[rate]
            assert row["baseline"] == "fasttrack"
            assert row["baseline_races"] > 0
            assert row["trials"] == 8
            assert row["expected_occurrences"] > 0
            assert row["consistent"] is True, (
                f"rate {rate}: {row['detected']}/"
                f"{row['expected_occurrences']} dynamic races "
                f"inconsistent with effective rate "
                f"{row['effective_rate']} (CI {row['ci95']})"
            )
        # the curve is monotone in expectation; pin the seeded outcome
        detected = [audit[rate]["detected"] for rate in rates]
        assert detected == sorted(detected)

    def test_jobs_independent(self):
        tasks = expand_matrix(
            workloads=["micro"], detectors=["fasttrack", "pacer"],
            rates=[None, 0.1], seeds=range(2), scale=0.2,
        )
        doc1 = matrix_coverage(tasks, run_matrix(tasks, jobs=1))
        doc2 = matrix_coverage(tasks, run_matrix(tasks, jobs=2))
        assert _doc_bytes(doc1) == _doc_bytes(doc2)


class TestTopQualityPanel:
    def test_quality_keys_always_present(self):
        from repro.net import build_top_status, render_top, validate_top_status

        status = build_top_status({"sessions": [], "report": {}, "metrics": {},
                                   "server": {}})
        assert validate_top_status(status) == []
        qual = status["quality"]
        assert qual["effective_rate"] is None
        assert qual["sync_total"] == 0
        assert "quality:" in render_top(status)
