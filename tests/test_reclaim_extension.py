"""The accordion-style dead-thread reclamation extension.

The paper (§5.1) notes that a production implementation would reuse
thread ids via accordion clocks; this extension implements the simplest
sound piece — dropping a joined thread's clock and version vector — and
these tests show it changes no reports while shrinking thread metadata
on thread-heavy workloads (hsqldb's 403 threads, 102 live).
"""

from helpers import race_sigs

from repro import PacerDetector
from repro.analysis import run_trial
from repro.core.sampling import ScriptedController
from repro.sim.runtime import RuntimeConfig
from repro.sim.workloads import HSQLDB
from repro.trace.events import fork, join, rd, sbegin, send, wr
from repro.trace.generator import random_trace

QUICK = RuntimeConfig(track_memory=False)


class TestSoundness:
    def test_reports_unchanged_on_random_traces(self):
        for seed in range(20):
            trace = random_trace(seed=seed, length=500, sampling_period_prob=0.06)
            base = PacerDetector()
            base.run(trace)
            reclaiming = PacerDetector(reclaim_dead_threads=True)
            reclaiming.run(trace)
            assert race_sigs(reclaiming.races) == race_sigs(base.races)

    def test_race_with_dead_threads_metadata_still_reported(self):
        # u's sampled write survives u's death and is still reported.
        trace = [
            fork(0, 1),
            fork(0, 2),
            sbegin(),
            wr(1, 7, 10),
            send(),
            join(0, 1),  # u dies; its metadata about var 7 remains
            rd(2, 7, 20),  # concurrent with the dead thread's write
        ]
        d = PacerDetector(reclaim_dead_threads=True)
        d.run(trace)
        assert [(r.first_site, r.second_site) for r in d.races] == [(10, 20)]

    def test_ordering_through_dead_thread_preserved(self):
        # t0 -> u -> (join) -> t0: accesses ordered through u stay clean.
        trace = [
            fork(0, 1),
            sbegin(),
            wr(1, 7, 10),
            send(),
            join(0, 1),
            wr(0, 7, 20),  # ordered after u's write via the join
        ]
        d = PacerDetector(reclaim_dead_threads=True)
        d.run(trace)
        assert d.races == []


class TestSpace:
    def test_thread_metadata_reclaimed(self):
        d = PacerDetector(reclaim_dead_threads=True)
        trace = [fork(0, 1), wr(1, 5), join(0, 1), fork(0, 2), join(0, 2)]
        d.run(trace)
        assert set(d._thread) == {0}

    def test_hsqldb_thread_meta_bounded_by_live_set(self):
        spec = HSQLDB.scaled(0.3)
        base = PacerDetector()
        run_trial(spec, base, 0, controller=ScriptedController([True] * 10_000),
                  config=QUICK)
        reclaiming = PacerDetector(reclaim_dead_threads=True)
        run_trial(spec, reclaiming, 0,
                  controller=ScriptedController([True] * 10_000), config=QUICK)
        assert len(base._thread) == spec.threads_total
        assert len(reclaiming._thread) <= spec.max_live
        assert reclaiming.footprint_words() < base.footprint_words()
        assert {(r.var, r.first_site, r.second_site) for r in reclaiming.races} == {
            (r.var, r.first_site, r.second_site) for r in base.races
        }
