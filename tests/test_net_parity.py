"""Differential parity: streaming detection ≡ offline ``repro analyze``.

The telemetry server's whole claim is that moving detection behind a
wire changes *nothing* about the analysis: a workload streamed through
the server in arbitrary chunks — through real worker processes, across
disconnect/resume, even across an injected worker crash — must yield
byte-identical races, counters, and ``repro/race-report/v1`` documents
to running the same events through a detector in one process.  "Modulo
session metadata" means exactly one field: ``source`` says
``"telemetry"`` instead of ``"analyze"``.

Pinned on every available state backend (``object``, ``packed``, and —
when numpy is installed — ``packed-np``) and for both an always-on
detector (FASTTRACK) and the sampling one (PACER).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import DETECTORS
from repro.core.backend import BACKENDS as AVAILABLE_BACKENDS
from repro.net import ServerConfig, TelemetryClient, TelemetryServer
from repro.obs import RunObserver, SyncIndex
from repro.obs.provenance import DEFAULT_WINDOW, FlightRecorder
from repro.obs.reports import build_report, validate_report
from repro.trace.generator import GeneratorConfig, random_trace

BACKENDS = list(AVAILABLE_BACKENDS)
DETECTOR_NAMES = ["fasttrack", "pacer"]

#: racy seeded workload with sampling periods (exercises PACER's
#: proportionality bookkeeping through the wire too)
TRACE = random_trace(
    GeneratorConfig(length=600, sampling_period_prob=0.05, seed=0)
)
EVENTS = list(TRACE.events)


def offline_report(detector_name: str, backend: str):
    """The ``repro analyze --report-out`` pipeline, inline."""
    det = DETECTORS[detector_name](backend=backend)
    obs = RunObserver(recorder=FlightRecorder(window=DEFAULT_WINDOW))
    obs.attach(det)
    det.run(EVENTS)
    obs.finalize(det)
    doc = build_report(
        det.races,
        source="analyze",
        detector=det.name,
        backend=det.backend_name,
        rate=None,
        events=det.perf.events,
        contexts=obs.race_contexts,
        sync=SyncIndex.from_trace(TRACE),
        site_name=None,
    )
    return doc, det.counters.snapshot(), obs.registry.snapshot()


def streamed_report(detector_name: str, backend: str, **kwargs):
    """The same events pushed through a server session."""
    chunk_size = kwargs.pop("chunk_size", 37)  # odd: never batch-aligned
    config = ServerConfig(n_shards=2, **kwargs)
    with TelemetryServer(config) as server:
        client = TelemetryClient(
            server.address,
            "parity",
            detector=detector_name,
            backend=backend,
            chunk_size=chunk_size,
        )
        client.connect()
        client.send_events(EVENTS)
        summary = client.close()
        doc = server.session_doc("parity")
    return doc, summary


def canonical(report_doc: dict) -> str:
    """Deterministic JSON with the one legitimate difference removed."""
    doc = dict(report_doc)
    doc.pop("source")
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("detector_name", DETECTOR_NAMES)
def test_streamed_report_byte_identical(detector_name, backend):
    off_doc, off_counters, _ = offline_report(detector_name, backend)
    sdoc, summary = streamed_report(
        detector_name, backend, shard_mode="process"
    )
    streamed = sdoc["report"]
    assert streamed["source"] == "telemetry"
    assert off_doc["source"] == "analyze"
    assert canonical(streamed) == canonical(off_doc)
    assert not validate_report(streamed)
    # the operation counters — the paper's cost accounting — match too
    assert sdoc["counters"] == off_counters
    assert summary["events"] == len(EVENTS)
    assert summary["races"] == off_doc["dynamic_races"]
    assert summary["distinct_races"] == off_doc["distinct_races"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_survives_chunking_choices(backend):
    """Chunk size is invisible: 1-event frames equal 500-event frames."""
    off_doc, _, _ = offline_report("fasttrack", backend)
    for chunk_size in (1, 193, 5000):
        sdoc, _ = streamed_report(
            "fasttrack", backend, shard_mode="inline", chunk_size=chunk_size
        )
        assert canonical(sdoc["report"]) == canonical(off_doc), chunk_size


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_survives_disconnect_and_resume(backend):
    """A mid-stream disconnect plus resume retransmit changes nothing."""
    off_doc, off_counters, _ = offline_report("fasttrack", backend)
    with TelemetryServer(ServerConfig(n_shards=2, shard_mode="process")) as server:
        client = TelemetryClient(
            server.address, "parity", detector="fasttrack",
            backend=backend, chunk_size=37,
        )
        client.connect()
        half = len(EVENTS) // 2
        client.send_events(EVENTS[:half])
        client.abort()  # dirty disconnect: no CLOSE, unacked state kept
        ack = client.reconnect()
        assert ack.resume_seq <= client.next_seq - 1
        client.send_events(EVENTS[half:])
        summary = client.close()
        sdoc = server.session_doc("parity")
    assert summary["events"] == len(EVENTS)  # exactly-once despite retransmit
    assert canonical(sdoc["report"]) == canonical(off_doc)
    assert sdoc["counters"] == off_counters


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_survives_worker_crash(backend):
    """A crashed shard worker is respawned and replayed: same report."""
    off_doc, off_counters, _ = offline_report("fasttrack", backend)
    with TelemetryServer(
        ServerConfig(
            n_shards=2,
            shard_mode="process",
            crash_plan={0: 3, 1: 3},  # whichever shard owns the session
        )
    ) as server:
        client = TelemetryClient(
            server.address, "parity", detector="fasttrack",
            backend=backend, chunk_size=37,
        )
        client.connect()
        client.send_events(EVENTS)
        client.close()
        sdoc = server.session_doc("parity")
        assert server.worker_restarts == 1
    assert canonical(sdoc["report"]) == canonical(off_doc)
    assert sdoc["counters"] == off_counters


def test_multi_session_merge_is_deterministic():
    """Independent sessions fold into one deterministic merged report."""
    docs = []
    for _ in range(2):
        with TelemetryServer(ServerConfig(n_shards=3, shard_mode="inline")) as server:
            for i, detector_name in enumerate(("fasttrack", "pacer", "eraser")):
                client = TelemetryClient(
                    server.address, f"s{i}", detector=detector_name,
                    chunk_size=53,
                )
                client.connect()
                client.send_events(EVENTS)
                client.close()
            doc = server.query_doc()
            docs.append(doc)
            assert [s["session"] for s in doc["sessions"]] == ["s0", "s1", "s2"]
            assert all(s["state"] == "closed" for s in doc["sessions"])
    merged0, merged1 = docs[0]["report"], docs[1]["report"]
    assert json.dumps(merged0, sort_keys=True) == json.dumps(merged1, sort_keys=True)
    assert merged0["events"] == 3 * len(EVENTS)
    assert not validate_report(merged0)


def test_metrics_match_offline_totals():
    """The per-session metrics snapshot carries the offline totals."""
    _, _, off_metrics = offline_report("fasttrack", "object")
    sdoc, _ = streamed_report("fasttrack", "object", shard_mode="inline")
    streamed = sdoc["metrics"]
    for key in ("counters", "gauges"):
        for name, value in off_metrics[key].items():
            assert streamed[key][name] == value, name
