"""Race provenance: flight recorder, sync index, and HB witnesses."""

import pytest

from repro.detectors.base import Race, distinct_races
from repro.detectors.fasttrack import FastTrackDetector
from repro.obs.provenance import (
    DEFAULT_WINDOW,
    FlightRecorder,
    SyncIndex,
    extract_witness,
)
from repro.trace.events import (
    acq,
    fork,
    join,
    rd,
    rel,
    sbegin,
    send,
    vol_rd,
    vol_wr,
    wr,
)


def make_race(**kw):
    defaults = dict(
        var=7,
        kind="ww",
        first_tid=0,
        first_clock=1,
        first_site=11,
        second_tid=1,
        second_site=22,
        index=-1,
        first_index=-1,
    )
    defaults.update(kw)
    return Race(**defaults)


class TestFlightRecorder:
    def test_ring_keeps_only_last_window_events(self):
        recorder = FlightRecorder(window=4)
        for i in range(10):
            recorder.record(i, "wr", tid=0, target=1, site=i)
        ctx = recorder._context(0, pivot=9)
        held = [ev["vt"] for ev in ctx["events"]]
        assert held == [6, 7, 8, 9]
        assert recorder.events_recorded == 10

    def test_sync_side_log_outlives_access_ring(self):
        recorder = FlightRecorder(window=2, sync_window=64)
        recorder.record(0, "acq", tid=0, target=100, site=0)
        for i in range(1, 8):
            recorder.record(i, "wr", tid=0, target=1, site=0)
        # the acquire has aged out of the 2-slot ring but not the sync log
        sync = SyncIndex.from_recorder(recorder)
        assert sync.acquires_between(0, -1, 99) == [(0, "acq", 100)]

    def test_sampling_marks_deduplicated(self):
        recorder = FlightRecorder()
        for index, event in enumerate(
            [sbegin(), sbegin(), send(), send(), sbegin()]
        ):
            recorder.record(index, event.kind, event.tid, event.target, event.site)
        assert recorder.sampling_marks == [(0, True), (2, False), (4, True)]

    def test_capture_marks_aged_out_first_access(self):
        recorder = FlightRecorder(window=3)
        for i in range(10):
            recorder.record(i, "wr", tid=0, target=1, site=0)
        recorder.record(10, "wr", tid=1, target=1, site=1)
        race = make_race(index=10, first_index=0)
        captured = recorder.capture(race)
        assert captured["second"]["complete"] is True
        assert captured["first"]["complete"] is False
        assert captured["window"] == 3

    def test_capture_without_first_index(self):
        recorder = FlightRecorder()
        recorder.record(0, "wr", tid=1, target=1, site=1)
        captured = recorder.capture(make_race(index=0, first_index=-1))
        assert captured["first"] is None
        assert [ev["vt"] for ev in captured["second"]["events"]] == [0]

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            FlightRecorder(window=0)

    def test_default_window(self):
        assert FlightRecorder().window == DEFAULT_WINDOW


class TestSyncIndex:
    def test_from_trace_is_exact_and_complete(self):
        trace = [fork(0, 1), wr(0, 5, 1), rel(0, 100), acq(1, 100), wr(1, 5, 2)]
        sync = SyncIndex.from_trace(trace)
        assert sync.source == "trace"
        assert sync.complete is True
        assert sync.releases_between(0, 1, 4) == [(2, "rel", 100)]
        assert sync.acquires_between(1, 1, 4) == [(3, "acq", 100)]

    def test_between_bounds_are_exclusive(self):
        trace = [rel(0, 100), rel(0, 101), rel(0, 102)]
        sync = SyncIndex.from_trace(trace)
        assert sync.releases_between(0, 0, 2) == [(1, "rel", 101)]

    def test_periods_and_period_of(self):
        trace = [sbegin(), wr(0, 1, 1), send(), wr(0, 1, 1), sbegin(), wr(1, 1, 2)]
        sync = SyncIndex.from_trace(trace)
        assert sync.periods() == [(0, 2), (4, None)]
        assert sync.period_of(1) == 0
        assert sync.period_of(3) is None
        assert sync.period_of(5) == 1
        assert sync.period_of(-1) is None

    def test_from_recorder_flagged_incomplete(self):
        recorder = FlightRecorder()
        recorder.record(0, "rel", tid=0, target=100, site=0)
        sync = SyncIndex.from_recorder(recorder)
        assert sync.source == "flight-recorder"
        assert sync.complete is False
        assert sync.releases_between(0, -1, 9) == [(0, "rel", 100)]


class TestExtractWitness:
    def run_fasttrack(self, trace):
        detector = FastTrackDetector()
        detector.run(trace)
        assert detector.races, "test trace must race"
        return detector.races[0], SyncIndex.from_trace(trace)

    def test_no_release_verdict(self):
        trace = [fork(0, 1), wr(0, 5, 1), wr(1, 5, 2)]
        race, sync = self.run_fasttrack(trace)
        witness = extract_witness(race, sync)
        assert witness["verdict"] == "no-release"
        assert "no happens-before edge was possible" in witness["summary"]
        assert witness["edge"] is None
        assert witness["releases_after_first"] == []

    def test_sync_gap_verdict(self):
        trace = [
            fork(0, 1),
            wr(0, 5, 1),
            acq(0, 100),
            rel(0, 100),
            acq(1, 200),
            rel(1, 200),
            wr(1, 5, 2),
        ]
        race, sync = self.run_fasttrack(trace)
        witness = extract_witness(race, sync)
        assert witness["verdict"] == "sync-gap"
        assert "no common object connects" in witness["summary"]
        assert witness["releases_after_first"] == [
            {"vt": 3, "kind": "rel", "target": 100}
        ]
        assert witness["acquires_before_second"] == [
            {"vt": 4, "kind": "acq", "target": 200}
        ]

    def test_ordering_edge_release_acquire(self):
        # synthetic suspicious report: the accesses ARE ordered by the lock
        trace = [fork(0, 1), wr(0, 5, 1), acq(0, 9), rel(0, 9), acq(1, 9), wr(1, 5, 2)]
        sync = SyncIndex.from_trace(trace)
        race = make_race(var=5, first_site=1, second_site=2, index=5, first_index=1)
        witness = extract_witness(race, sync)
        assert witness["verdict"] == "ordering-edge"
        assert witness["edge"] == {
            "kind": "rel->acq",
            "target": 9,
            "release_vt": 3,
            "acquire_vt": 4,
        }
        assert "suspicious" in witness["summary"]

    def test_ordering_edge_volatile(self):
        trace = [fork(0, 1), wr(0, 5, 1), vol_wr(0, 200), vol_rd(1, 200), wr(1, 5, 2)]
        sync = SyncIndex.from_trace(trace)
        race = make_race(var=5, index=4, first_index=1)
        witness = extract_witness(race, sync)
        assert witness["verdict"] == "ordering-edge"
        assert witness["edge"]["kind"] == "vol_wr->vol_rd"

    def test_ordering_edge_fork(self):
        trace = [wr(0, 5, 1), fork(0, 1), wr(1, 5, 2)]
        sync = SyncIndex.from_trace(trace)
        race = make_race(var=5, index=2, first_index=0)
        witness = extract_witness(race, sync)
        assert witness["verdict"] == "ordering-edge"
        assert witness["edge"]["kind"] == "fork"

    def test_ordering_edge_join(self):
        trace = [fork(0, 1), wr(1, 5, 1), join(0, 1), wr(0, 5, 2)]
        sync = SyncIndex.from_trace(trace)
        race = make_race(var=5, first_tid=1, second_tid=0, index=3, first_index=1)
        witness = extract_witness(race, sync)
        assert witness["verdict"] == "ordering-edge"
        assert witness["edge"]["kind"] == "join"

    def test_sampling_attribution(self):
        trace = [sbegin(), fork(0, 1), wr(0, 5, 1), send(), sbegin(), wr(1, 5, 2)]
        race, sync = self.run_fasttrack(trace)
        witness = extract_witness(race, sync)
        assert witness["sampling"] == {
            "first_period": 0,
            "second_period": 1,
            "n_periods": 2,
        }

    def test_no_sampling_marks_means_no_attribution(self):
        trace = [fork(0, 1), wr(0, 5, 1), wr(1, 5, 2)]
        race, sync = self.run_fasttrack(trace)
        assert extract_witness(race, sync)["sampling"] is None


class TestStringSites:
    """Regression pin: sites may be ``file:line`` strings (live frontend)."""

    @pytest.mark.parametrize("backend", ["object", "packed"])
    def test_detectors_carry_string_sites(self, backend):
        detector = FastTrackDetector(backend=backend)
        trace = [fork(0, 1), wr(0, 5, "a.py:10"), wr(1, 5, "b.py:20")]
        races = detector.run(trace)
        assert len(races) == 1
        assert races[0].first_site == "a.py:10"
        assert races[0].second_site == "b.py:20"
        assert races[0].distinct_key == ("a.py:10", "b.py:20")
        assert detector.distinct_races == {("a.py:10", "b.py:20")}

    def test_distinct_races_mixes_int_and_string_sites(self):
        races = [
            make_race(first_site="a.py:1", second_site=3),
            make_race(first_site="a.py:1", second_site=3),
            make_race(first_site=1, second_site=2),
        ]
        assert distinct_races(races) == {("a.py:1", 3), (1, 2)}
