"""Soak and chaos: the telemetry server under concurrent, hostile load.

One server, many misbehaving clients at once:

* ``REPRO_SOAK_SESSIONS`` (default 8) concurrent sessions streaming
  distinct seeded workloads through real shard worker processes;
* a third of them disconnect mid-stream without CLOSE and resume on a
  fresh connection (retransmit + duplicate-suppression exercised under
  contention);
* a fault-injected shard worker crashes partway through and must be
  respawned and replayed without losing any session;
* a deliberately slow shard plus a tiny credit window drives clients
  into backpressure stalls — and the server's receive buffers must stay
  bounded while they wait.

Afterwards: every session's summary matches what it sent, the roster
shows zero dropped sessions, per-session results equal an uncontended
baseline, and shutdown is clean.  Scaled down in CI smoke via the
environment knob; the defaults hold the whole run to a few seconds.
"""

from __future__ import annotations

import json
import os
import threading

from repro.net import ServerConfig, TelemetryClient, TelemetryServer
from repro.net.protocol import DEFAULT_MAX_FRAME
from repro.trace.generator import GeneratorConfig, random_trace

N_SESSIONS = max(2, int(os.environ.get("REPRO_SOAK_SESSIONS", "8")))
EVENTS_PER_SESSION = int(os.environ.get("REPRO_SOAK_EVENTS", "400"))
CHUNK_SIZE = 23


def workload(seed: int):
    trace = random_trace(
        GeneratorConfig(length=EVENTS_PER_SESSION, seed=seed)
    )
    return list(trace.events)


def stream_session(server_address, name, events, *, disconnect, results):
    """One client thread; records its outcome instead of raising."""
    try:
        client = TelemetryClient(
            server_address, name, chunk_size=CHUNK_SIZE, timeout=60.0
        )
        client.connect()
        if disconnect:
            half = len(events) // 2
            client.send_events(events[:half])
            client.abort()  # dirty mid-stream disconnect
            client.reconnect()
            client.send_events(events[half:])
        else:
            client.send_events(events)
        summary = client.close()
        results[name] = {
            "summary": summary,
            "credit_waits": client.credit_waits,
            "error": None,
        }
    except Exception as exc:  # pragma: no cover - only on failure
        results[name] = {"summary": None, "credit_waits": 0, "error": repr(exc)}


def run_fleet(config: ServerConfig, *, disconnect_every=3):
    """N concurrent sessions against one server; returns all outcomes."""
    workloads = {f"soak-{i:02d}": workload(seed=i) for i in range(N_SESSIONS)}
    results = {}
    with TelemetryServer(config) as server:
        threads = [
            threading.Thread(
                target=stream_session,
                args=(server.address, name, events),
                kwargs={
                    "disconnect": i % disconnect_every == 1,
                    "results": results,
                },
            )
            for i, (name, events) in enumerate(workloads.items())
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "client thread hung"
        doc = server.query_doc()
        rx_high = server.rx_buffer_high
        restarts = server.worker_restarts
    return workloads, results, doc, rx_high, restarts


def assert_no_lost_sessions(workloads, results, doc):
    assert set(results) == set(workloads)
    for name, outcome in sorted(results.items()):
        assert outcome["error"] is None, f"{name}: {outcome['error']}"
        assert outcome["summary"]["events"] == len(workloads[name]), name
    roster = {s["session"]: s for s in doc["sessions"]}
    assert set(roster) == set(workloads), "sessions dropped from the roster"
    for name, entry in roster.items():
        assert entry["state"] == "closed", f"{name} not cleanly closed"
        assert entry["events"] == len(workloads[name]), name
    assert doc["report"]["events"] == sum(len(e) for e in workloads.values())


def test_soak_concurrent_sessions_with_chaos():
    """The headline soak: concurrency + disconnects + a worker crash."""
    workloads, results, doc, rx_high, restarts = run_fleet(
        ServerConfig(
            n_shards=2,
            shard_mode="process",
            # both shards own sessions (N >= 2 hashes across 2 shards);
            # shard 0's first worker dies before its 5th events message
            crash_plan={0: 5},
        )
    )
    assert_no_lost_sessions(workloads, results, doc)
    assert restarts == 1, "the crashed worker was recovered exactly once"
    assert doc["server"]["worker_restarts"] == 1
    # bounded memory: the receive high-water mark never exceeds one
    # max-size frame plus a recv chunk, no matter how many clients push
    assert rx_high <= DEFAULT_MAX_FRAME + 65536
    # disconnected sessions really did resume rather than reopen
    assert doc["metrics"]["counters"]["net_sessions_resumed"] >= 1
    assert doc["metrics"]["counters"]["net_sessions_opened"] == N_SESSIONS


def test_soak_results_match_uncontended_baseline():
    """Chaos changes timing, never results: compare to a quiet run."""
    _, chaotic_results, chaotic_doc, _, _ = run_fleet(
        ServerConfig(n_shards=2, shard_mode="process", crash_plan={1: 4})
    )
    _, quiet_results, quiet_doc, _, _ = run_fleet(
        ServerConfig(n_shards=2, shard_mode="process"),
        disconnect_every=10**9,  # nobody disconnects
    )
    def essence(outcome):
        # a disconnect splits the stream into different chunk boundaries,
        # so chunk *counts* may differ; the analysis results must not
        summary = dict(outcome["summary"])
        summary.pop("chunks")
        return summary

    for name in quiet_results:
        assert essence(chaotic_results[name]) == essence(quiet_results[name]), name
    chaotic = {s["session"]: s for s in chaotic_doc["sessions"]}
    quiet = {s["session"]: s for s in quiet_doc["sessions"]}
    for name in quiet:
        for key in ("events", "races", "distinct_races"):
            assert chaotic[name][key] == quiet[name][key], (name, key)
    # and the merged race reports are byte-identical
    assert json.dumps(chaotic_doc["report"], sort_keys=True) == json.dumps(
        quiet_doc["report"], sort_keys=True
    )


def test_backpressure_blocks_fast_writer():
    """A slow shard + tiny credit window must stall the client, not
    balloon the server: credit waits observed, receive buffer bounded."""
    events = workload(seed=99)
    with TelemetryServer(
        ServerConfig(
            n_shards=1,
            shard_mode="process",
            credits=2,
            chunk_delay=0.02,  # 20ms per chunk in the worker
        )
    ) as server:
        client = TelemetryClient(
            server.address, "slow", chunk_size=11, timeout=60.0
        )
        client.connect()
        client.send_events(events)
        summary = client.close()
        rx_high = server.rx_buffer_high
        doc = server.query_doc()
    assert summary["events"] == len(events)
    # ~36 chunks through a 2-chunk window over a slow shard: the sender
    # must have blocked waiting for credits many times
    assert client.credit_waits >= 10
    assert client.unacked == []
    # the window held: the server never buffered more than the credit
    # window's worth of our tiny frames (far below one max frame)
    assert rx_high < DEFAULT_MAX_FRAME
    assert doc["sessions"][0]["state"] == "closed"


def test_shutdown_finalizes_attached_sessions():
    """stop() with live, un-CLOSEd sessions still folds their results."""
    events = workload(seed=7)
    server = TelemetryServer(ServerConfig(n_shards=2, shard_mode="process"))
    server.start()
    client = TelemetryClient(server.address, "abandoned", chunk_size=17)
    client.connect()
    client.send_events(events)
    client.drain()  # everything acked, nothing closed
    server.stop()
    doc = server.query_doc(refresh=False)
    roster = {s["session"]: s for s in doc["sessions"]}
    assert roster["abandoned"]["events"] == len(events)
    assert doc["report"]["events"] == len(events)
    client.abort()


def test_stop_is_idempotent():
    server = TelemetryServer(ServerConfig(n_shards=1, shard_mode="inline"))
    server.start()
    server.stop()
    server.stop()
