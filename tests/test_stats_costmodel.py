"""Operation counters and the analysis cost model."""

import pytest

from repro import FastTrackDetector, PacerDetector
from repro.core.stats import CostModel, OpCounters
from repro.trace.generator import random_trace


class TestOpCounters:
    def test_snapshot_and_diff(self):
        c = OpCounters()
        c.reads_slow_sampling += 5
        snap = c.snapshot()
        c.reads_slow_sampling += 2
        c.joins_fast_nonsampling += 1
        delta = c.diff(snap)
        assert delta["reads_slow_sampling"] == 2
        assert delta["joins_fast_nonsampling"] == 1
        assert delta["writes_slow_sampling"] == 0

    def test_aggregates(self):
        c = OpCounters(
            joins_slow_sampling=2,
            joins_slow_nonsampling=3,
            joins_fast_sampling=1,
            joins_fast_nonsampling=4,
            reads_slow_sampling=10,
            reads_fast_nonsampling=20,
            writes_slow_nonsampling=5,
        )
        assert c.joins_slow == 5
        assert c.joins_fast == 5
        assert c.reads == 30
        assert c.writes == 5


class TestCostModel:
    def test_more_threads_cost_more_for_slow_ops(self):
        c = OpCounters(joins_slow_sampling=100)
        model = CostModel()
        assert model.cost(c, 64) > model.cost(c, 2)

    def test_fast_paths_cheapest(self):
        model = CostModel()
        fast = OpCounters(reads_fast_nonsampling=1000)
        slow = OpCounters(reads_slow_nonsampling=1000)
        assert model.cost(fast, 4) < model.cost(slow, 4)

    def test_pacer_nonsampling_cheaper_than_fasttrack(self):
        trace = random_trace(seed=1, length=2000)
        ft = FastTrackDetector()
        ft.run(trace)
        p = PacerDetector(sampling=False)
        p.run(trace)
        model = CostModel()
        n = ft.n_threads
        assert model.cost(p.counters, n) < model.cost(ft.counters, n) / 3

    def test_pacer_cost_scales_with_sampling(self):
        """Modeled cost grows monotonically with the sampled fraction."""
        from repro.trace.events import sbegin, send

        def with_rate(fraction, seed=2):
            base = random_trace(seed=seed, length=3000)
            events = []
            period = 100
            for i, e in enumerate(base):
                if i % period == 0:
                    events.append(
                        sbegin() if (i // period) % 10 < fraction * 10 else send()
                    )
                events.append(e)
            # normalize: strip invalid alternation by rebuilding
            out, sampling = [], False
            for e in events:
                if e.kind == "sbegin":
                    if not sampling:
                        out.append(e)
                        sampling = True
                elif e.kind == "send":
                    if sampling:
                        out.append(e)
                        sampling = False
                else:
                    out.append(e)
            p = PacerDetector()
            p.run(out)
            return CostModel().cost(p.counters, p.n_threads)

        costs = [with_rate(f) for f in (0.0, 0.3, 1.0)]
        assert costs[0] < costs[1] < costs[2]
