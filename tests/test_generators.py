"""Random trace generators: feasibility, determinism, and knobs."""

import pytest

from repro.trace.generator import GeneratorConfig, race_free_trace, random_trace
from repro.trace.oracle import HBOracle


class TestRandomTrace:
    def test_deterministic_per_seed(self):
        assert random_trace(seed=7).events == random_trace(seed=7).events

    def test_different_seeds_differ(self):
        assert random_trace(seed=1).events != random_trace(seed=2).events

    def test_always_feasible(self):
        for seed in range(10):
            random_trace(seed=seed, length=300).validate()

    def test_thread_count_honored(self):
        trace = random_trace(seed=0, n_threads=6)
        assert len(trace.threads) == 6

    def test_sampling_periods_inserted(self):
        trace = random_trace(seed=0, length=400, sampling_period_prob=0.1)
        assert trace.count("sbegin") > 0
        assert trace.count("sbegin") == trace.count("send")

    def test_no_sampling_periods_by_default(self):
        assert random_trace(seed=0).count("sbegin") == 0

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            random_trace(seed=0, bogus_option=3)

    def test_config_object_accepted(self):
        cfg = GeneratorConfig(n_threads=3, length=50, seed=5)
        trace = random_trace(cfg)
        assert len(trace.threads) == 3

    def test_unprotected_traces_usually_racy(self):
        racy = sum(
            not HBOracle(
                random_trace(seed=s, protected_fraction=0.0, length=200)
            ).is_race_free()
            for s in range(10)
        )
        assert racy >= 8

    def test_volatile_fraction_knob(self):
        trace = random_trace(seed=0, length=300, sync_fraction=0.5)
        assert trace.count("vol_rd") + trace.count("vol_wr") > 50


class TestRaceFreeTrace:
    def test_race_free_by_construction(self):
        for seed in range(10):
            assert HBOracle(race_free_trace(seed=seed, length=250)).is_race_free()

    def test_feasible(self):
        for seed in range(5):
            race_free_trace(seed=seed).validate()

    def test_deterministic(self):
        assert race_free_trace(seed=4).events == race_free_trace(seed=4).events

    def test_with_sampling_periods_still_race_free(self):
        trace = race_free_trace(seed=1, length=300, sampling_period_prob=0.1)
        assert trace.count("sbegin") > 0
        assert HBOracle(trace).is_race_free()
