"""Differential tests: the batched fast path vs the scalar path.

``Detector.run_batch`` (and the inlined FASTTRACK/PACER batch loops) is
pure plumbing — it must be *behavior-identical* to feeding the same
events through ``apply`` one at a time.  These tests pin that equivalence
over hundreds of seeded random programs built from the micro workload
generators: identical race reports (down to trace indices), identical
operation-counter snapshots, identical metadata footprints, and
identical thread bookkeeping, for every detector family.

Two cross-detector anchors ride along: PACER analyzing a fully-sampled
trace reports exactly FASTTRACK's races (the paper's r=100% identity),
and FASTTRACK's reports agree with the exact happens-before oracle.
"""

from __future__ import annotations

import random

import pytest

from helpers import race_sigs
from repro.core.backend import BACKENDS as AVAILABLE_BACKENDS
from repro.core.pacer import PacerDetector
from repro.detectors import (
    EraserDetector,
    FastTrackDetector,
    GoldilocksDetector,
    LiteRaceDetector,
)
from repro.sim.scheduler import run_program
from repro.sim.workloads import micro
from repro.trace.batch import encode_batch
from repro.trace.events import Event, READ, SBEGIN, SEND, WRITE
from repro.trace.oracle import HBOracle

SEEDS = range(35)

#: program generators, each parameterized from the per-case RNG so that
#: every seed exercises a differently-shaped program
GENERATORS = [
    ("counter_race", lambda rng: micro.counter_race(
        n_threads=rng.randint(2, 4), increments=rng.randint(3, 12))),
    ("producer_consumer", lambda rng: micro.producer_consumer(
        items=rng.randint(4, 12), n_consumers=rng.randint(1, 3))),
    ("lock_ping_pong", lambda rng: micro.lock_ping_pong(
        rounds=rng.randint(5, 25), n_locks=rng.randint(1, 3))),
    ("fork_join_tree", lambda rng: micro.fork_join_tree(
        depth=rng.randint(1, 3), work=rng.randint(2, 8))),
    ("volatile_flag", lambda rng: micro.volatile_flag(
        iterations=rng.randint(3, 15))),
    ("redundant_sync_storm", lambda rng: micro.redundant_sync_storm()),
]

CASES = [
    (name, build, seed) for name, build in GENERATORS for seed in SEEDS
]
assert len(CASES) >= 200, "the differential sweep must cover >= 200 programs"

DETECTORS = [
    ("fasttrack", FastTrackDetector),
    ("pacer", PacerDetector),
    ("pacer-sampling", lambda: PacerDetector(sampling=True)),
    ("eraser", EraserDetector),
    ("literace", lambda: LiteRaceDetector(seed=99)),
    ("goldilocks", GoldilocksDetector),
]


def _trace_for(build, seed):
    rng = random.Random(seed * 9176 + 13)
    return list(run_program(build(rng), seed=seed).events)


def _with_sampling_periods(events, seed, period=40, rate=0.3):
    """Insert deterministic sbegin/send markers (period sampling)."""
    rng = random.Random(seed)
    out, sampling = [], False
    for i, e in enumerate(events):
        if i % period == 0 and e.kind in (READ, WRITE):
            want = rng.random() < rate
            if want and not sampling:
                out.append(Event(SBEGIN, -1, 0))
                sampling = True
            elif not want and sampling:
                out.append(Event(SEND, -1, 0))
                sampling = False
        out.append(e)
    if sampling:
        out.append(Event(SEND, -1, 0))
    return out


def _full_state(detector):
    """Everything observable that the batch path must reproduce."""
    return {
        "races": race_sigs(detector.races),
        "race_details": [
            (r.first_clock, r.first_site, r.second_site) for r in detector.races
        ],
        "counters": detector.counters.snapshot(),
        "footprint": detector.footprint_words(),
        "events_seen": detector._events_seen,
        "threads": sorted(detector._threads),
    }


def _assert_identical(factory, events, label):
    scalar = factory()
    scalar.run(list(events))
    batched = factory()
    # small batch size forces multi-batch runs and boundary handling
    batched.run_batch(list(events), batch_size=37)
    assert _full_state(scalar) == _full_state(batched), label
    # pre-encoded single batches must behave the same as re-chunked ones
    encoded = factory()
    encoded.run_batch(encode_batch(list(events)))
    assert _full_state(scalar) == _full_state(encoded), f"{label} (pre-encoded)"


@pytest.mark.parametrize(
    "name,build,seed", CASES, ids=[f"{n}-{s}" for n, _, s in CASES]
)
def test_batched_equals_scalar(name, build, seed):
    events = _trace_for(build, seed)
    for det_name, factory in DETECTORS:
        _assert_identical(factory, events, f"{det_name}/{name}/seed{seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_equals_scalar_with_sampling_periods(seed):
    """PACER flipping sampling on/off mid-batch stays scalar-identical."""
    name, build = GENERATORS[seed % len(GENERATORS)]
    events = _with_sampling_periods(_trace_for(build, seed), seed)
    _assert_identical(PacerDetector, events, f"pacer-marked/{name}/seed{seed}")
    _assert_identical(
        lambda: PacerDetector(discard_metadata=False),
        events,
        f"pacer-nodiscard/{name}/seed{seed}",
    )


#: detectors whose state layout actually switches with the backend
#: (plus literace, which samples *into* the FASTTRACK layout)
BACKEND_DETECTORS = [
    ("fasttrack", lambda backend: FastTrackDetector(backend=backend)),
    ("pacer", lambda backend: PacerDetector(backend=backend)),
    ("pacer-sampling", lambda backend: PacerDetector(sampling=True, backend=backend)),
    ("pacer-nodiscard", lambda backend: PacerDetector(
        discard_metadata=False, backend=backend)),
    ("literace", lambda backend: LiteRaceDetector(seed=99, backend=backend)),
]

#: the non-reference (arena) backends, with ``packed-np`` skipped
#: gracefully on interpreters without numpy
ARENA_BACKENDS = [
    pytest.param("packed", id="packed"),
    pytest.param(
        "packed-np",
        id="packed-np",
        marks=pytest.mark.skipif(
            "packed-np" not in AVAILABLE_BACKENDS,
            reason="numpy not installed; packed-np backend unavailable",
        ),
    ),
]


@pytest.mark.parametrize("arena", ARENA_BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_arena_backends_agree_with_object(seed, arena):
    """Each arena backend is observationally identical to the reference
    object backend: same race reports (down to indices), same operation
    counters, same footprint words, same thread bookkeeping — on both
    the scalar and the batched dispatch path, and (for ``packed-np``)
    through the vectorized column kernels on pre-encoded batches."""
    name, build = GENERATORS[seed % len(GENERATORS)]
    plain = _trace_for(build, seed)
    marked = _with_sampling_periods(plain, seed)
    for det_name, make in BACKEND_DETECTORS:
        for events, variant in ((plain, "plain"), (marked, "marked")):
            obj = make("object")
            obj.run(list(events))
            arena_scalar = make(arena)
            arena_scalar.run(list(events))
            arena_batched = make(arena)
            arena_batched.run_batch(list(events), batch_size=37)
            arena_encoded = make(arena)
            arena_encoded.run_batch(encode_batch(list(events)))
            label = f"{det_name}/{name}/seed{seed}/{variant}/{arena}"
            assert _full_state(obj) == _full_state(arena_scalar), label
            assert _full_state(obj) == _full_state(arena_batched), (
                f"{label} (batched)"
            )
            assert _full_state(obj) == _full_state(arena_encoded), (
                f"{label} (pre-encoded)"
            )


def _footprint_curve(make, backend, events, stride=23):
    """Figure 10's raw material: footprint words sampled every ``stride``
    events while the trace replays through ``run_batch``."""
    det = make(backend)
    curve = []
    for start in range(0, len(events), stride):
        det.run_batch(list(events[start:start + stride]))
        curve.append(det.footprint_words())
    return curve


@pytest.mark.parametrize("seed", SEEDS)
def test_footprint_curves_identical_across_backends(seed):
    """The Figure-10 footprint curve — not just the final value — is
    byte-equal across all available backends.  PACER's metadata discard
    makes this sharp: released slots sit on the arena free list, and a
    backend that counted arena *capacity* instead of live entries would
    diverge from the object backend exactly after the first discard."""
    name, build = GENERATORS[seed % len(GENERATORS)]
    marked = _with_sampling_periods(_trace_for(build, seed), seed)
    for det_name, make in BACKEND_DETECTORS:
        ref = _footprint_curve(make, "object", marked)
        for backend in AVAILABLE_BACKENDS[1:]:
            got = _footprint_curve(make, backend, marked)
            assert got == ref, f"{det_name}/{name}/seed{seed}/{backend}"


@pytest.mark.parametrize("seed", SEEDS)
def test_pacer_full_rate_is_fasttrack(seed):
    """PACER at r=1.0 (always sampling) reports exactly FASTTRACK races."""
    name, build = GENERATORS[seed % len(GENERATORS)]
    events = _trace_for(build, seed)
    ft = FastTrackDetector()
    ft.run_batch(list(events))
    pacer = PacerDetector(sampling=True)
    pacer.run_batch(list(events))
    assert race_sigs(pacer.races) == race_sigs(ft.races), f"{name}/seed{seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_fasttrack_batched_agrees_with_oracle(seed):
    """Batched FASTTRACK reports are sound vs the exact HB oracle."""
    name, build = GENERATORS[seed % len(GENERATORS)]
    events = _trace_for(build, seed)
    oracle = HBOracle(events)
    racy_vars = oracle.racy_variables()
    oracle_keys = {pair.distinct_key for pair in oracle.all_races()}
    ft = FastTrackDetector()
    ft.run_batch(list(events))
    assert {r.var for r in ft.races} <= racy_vars, f"{name}/seed{seed}"
    assert ft.distinct_races <= oracle_keys, f"{name}/seed{seed}"
    # every racy variable yields at least one FASTTRACK report: clearing
    # read maps on writes never erases the *first* race on a variable
    assert {r.var for r in ft.races} == racy_vars, f"{name}/seed{seed}"
