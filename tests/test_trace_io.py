"""Text serialization round-trips (LiteRace's offline log format)."""

import pytest

from repro.trace.events import acq, fork, rd, sbegin, send, wr
from repro.trace.generator import random_trace
from repro.trace.textio import dump_trace, dumps_trace, load_trace, loads_trace


class TestFormat:
    def test_simple_lines(self):
        text = dumps_trace([wr(0, 5, 9), sbegin(), rd(1, 5), send()])
        assert text.splitlines() == ["wr 0 5 9", "sbegin", "rd 1 5", "send"]

    def test_round_trip_random_traces(self):
        for seed in range(5):
            trace = random_trace(seed=seed, length=150, sampling_period_prob=0.05)
            again = loads_trace(dumps_trace(trace))
            assert again.events == trace.events

    def test_file_round_trip(self, tmp_path):
        trace = random_trace(seed=3, length=100)
        path = tmp_path / "trace.log"
        dump_trace(trace, path)
        assert load_trace(path).events == trace.events

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nwr 0 5 9  # trailing comment\n"
        trace = loads_trace(text)
        assert trace.events == [wr(0, 5, 9)]

    def test_site_zero_omitted_and_restored(self):
        text = dumps_trace([rd(2, 7)])
        assert text.strip() == "rd 2 7"
        assert loads_trace(text).events == [rd(2, 7)]


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            loads_trace("frobnicate 1 2")

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="expected"):
            loads_trace("wr 0")

    def test_sbegin_with_operands(self):
        with pytest.raises(ValueError, match="takes no operands"):
            loads_trace("sbegin 3")

    def test_error_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_trace("wr 0 1\nbogus 1 2\n")

    def test_validation_can_be_disabled(self):
        # an infeasible trace loads with validate=False
        trace = loads_trace("rel 0 5", validate=False)
        assert trace.events[0].kind == "rel"
