"""Property-based tests (hypothesis) for the core invariants.

Strategies build *feasible* traces directly (locks held per thread,
fork/join discipline, sampling-period alternation maintained by
construction), then check the paper's central claims:

* precision — no detector reports a non-race (vs the exact HB oracle);
* completeness — race-free traces produce no reports;
* PACER at r=100% is exactly FASTTRACK;
* the proportionality guarantee — FASTTRACK races with a sampled first
  access and no intervening conflicting access are always reported;
* metadata economy — PACER tracks nothing it does not need;
* vector-clock lattice laws.
"""

from hypothesis import given, settings, strategies as st

from helpers import in_sampling_window, race_sigs, sampling_windows

from repro import FastTrackDetector, GenericDetector, PacerDetector
from repro.core.clocks import VectorClock
from repro.trace.events import (
    Event,
    acq,
    fork,
    join,
    rd,
    rel,
    sbegin,
    send,
    vol_rd,
    vol_wr,
    wr,
)
from repro.trace.oracle import HBOracle
from repro.trace.trace import Trace


# -- trace strategy -----------------------------------------------------------


@st.composite
def feasible_traces(draw, max_threads=4, max_vars=5, max_locks=3, max_len=60,
                    with_sampling=False):
    """Generate a feasible trace by simulating simple thread states."""
    n_threads = draw(st.integers(2, max_threads))
    length = draw(st.integers(5, max_len))
    events = [fork(0, tid) for tid in range(1, n_threads)]
    held = {tid: [] for tid in range(n_threads)}
    lock_holder = {}
    sampling = False
    for _ in range(length):
        if with_sampling and draw(st.booleans()) and draw(st.integers(0, 3)) == 0:
            events.append(send() if sampling else sbegin())
            sampling = not sampling
        tid = draw(st.integers(0, n_threads - 1))
        choice = draw(st.integers(0, 9))
        if choice <= 4:  # data access
            var = draw(st.integers(0, max_vars - 1))
            site = draw(st.integers(1, 12))
            if draw(st.booleans()):
                events.append(wr(tid, var, site))
            else:
                events.append(rd(tid, var, site))
        elif choice <= 6:  # lock acquire (if free) or release (if held)
            if held[tid] and draw(st.booleans()):
                lock = held[tid].pop()
                events.append(rel(tid, lock))
                del lock_holder[lock]
            else:
                lock = 100 + draw(st.integers(0, max_locks - 1))
                if lock_holder.get(lock, tid) == tid:
                    if lock not in held[tid]:  # avoid reentrant noise
                        events.append(acq(tid, lock))
                        held[tid].append(lock)
                        lock_holder[lock] = tid
        elif choice == 7:
            events.append(vol_wr(tid, 200 + draw(st.integers(0, 1))))
        else:
            events.append(vol_rd(tid, 200 + draw(st.integers(0, 1))))
    # release everything still held; close the sampling period
    for tid, locks in held.items():
        for lock in reversed(locks):
            events.append(rel(tid, lock))
    if sampling:
        events.append(send())
    return Trace(events).validate()


# -- vector clock laws ---------------------------------------------------------

clock_lists = st.lists(st.integers(0, 6), min_size=0, max_size=5)


@given(clock_lists, clock_lists)
def test_join_is_least_upper_bound(a_vals, b_vals):
    a, b = VectorClock(a_vals), VectorClock(b_vals)
    j = a.copy()
    j.join(b)
    assert a.leq(j) and b.leq(j)
    # minimality: j is pointwise max, so any upper bound dominates it
    for i in range(max(len(a_vals), len(b_vals))):
        assert j.get(i) == max(a.get(i), b.get(i))


@given(clock_lists, clock_lists)
def test_join_commutative(a_vals, b_vals):
    ab = VectorClock(a_vals)
    ab.join(VectorClock(b_vals))
    ba = VectorClock(b_vals)
    ba.join(VectorClock(a_vals))
    assert ab == ba


@given(clock_lists, clock_lists, clock_lists)
def test_join_associative(a_vals, b_vals, c_vals):
    left = VectorClock(a_vals)
    left.join(VectorClock(b_vals))
    left.join(VectorClock(c_vals))
    bc = VectorClock(b_vals)
    bc.join(VectorClock(c_vals))
    right = VectorClock(a_vals)
    right.join(bc)
    assert left == right


@given(clock_lists)
def test_join_idempotent(a_vals):
    a = VectorClock(a_vals)
    j = a.copy()
    j.join(a)
    assert j == a


@given(clock_lists, clock_lists, clock_lists)
def test_leq_transitive(a_vals, b_vals, c_vals):
    a, b, c = VectorClock(a_vals), VectorClock(b_vals), VectorClock(c_vals)
    if a.leq(b) and b.leq(c):
        assert a.leq(c)


# -- detector properties ----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(feasible_traces())
def test_pacer_full_sampling_is_fasttrack(trace):
    ft = FastTrackDetector()
    ft.run(trace)
    p = PacerDetector(sampling=True)
    p.run(trace)
    assert race_sigs(ft.races) == race_sigs(p.races)


@settings(max_examples=60, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_pacer_precision_under_any_schedule(trace):
    oracle = HBOracle(trace)
    truth = set()
    for accesses in oracle._by_var.values():
        for j, b in enumerate(accesses):
            for a in accesses[:j]:
                if a.conflicts_with(b) and not a.happens_before(b):
                    truth.add((a.index, b.index))
    p = PacerDetector()
    p.run(trace)
    for race in p.races:
        assert (race.first_index, race.index) in truth


@settings(max_examples=60, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_detectors_precise(trace):
    oracle = HBOracle(trace)
    racy_vars = oracle.racy_variables()
    for det in (GenericDetector(), FastTrackDetector()):
        det.run(trace)
        assert {r.var for r in det.races} <= racy_vars


@settings(max_examples=60, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_generic_complete_for_racy_variables(trace):
    oracle = HBOracle(trace)
    g = GenericDetector()
    g.run(trace)
    assert {r.var for r in g.races} == oracle.racy_variables()


@settings(max_examples=40, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_pacer_guarantee(trace):
    """Sampled FASTTRACK shortest races are always flagged by PACER.

    Identity is (variable, first thread): the exact cited access/site may
    legitimately differ between the two detectors when a thread re-reads
    a variable within one epoch (read-map representation differs once
    sampling has discarded older reads), but the sampled race itself must
    be reported.
    """
    windows = sampling_windows(trace)
    ft = FastTrackDetector()
    ft.run(trace)
    p = PacerDetector()
    p.run(trace)
    flagged = {
        (r.var, r.first_tid)
        for r in p.races
        if in_sampling_window(r.first_index, windows)
    }
    accesses = {}
    for i, e in enumerate(trace):
        if e.kind in ("rd", "wr"):
            accesses.setdefault(e.target, []).append((i, e.kind))
    for r in ft.races:
        if not in_sampling_window(r.first_index, windows):
            continue
        intervening = any(
            r.first_index < i < r.index
            for i, _k in accesses.get(r.var, [])
        )
        if intervening:
            continue  # not necessarily a shortest race
        assert (r.var, r.first_tid) in flagged


@settings(max_examples=40, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_pacer_no_metadata_without_sampling(trace):
    stripped = [e for e in trace if e.kind not in ("sbegin", "send")]
    p = PacerDetector(sampling=False)
    p.run(stripped)
    assert p.tracked_variables == 0
    assert p.races == []


@settings(max_examples=40, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_pacer_ablation_flags_do_not_change_reports(trace):
    baseline = PacerDetector()
    baseline.run(trace)
    expected = race_sigs(baseline.races)
    for kwargs in (
        {"use_versions": False},
        {"use_sharing": False},
        {"use_versions": False, "use_sharing": False},
    ):
        variant = PacerDetector(**kwargs)
        variant.run(trace)
        assert race_sigs(variant.races) == expected


@settings(max_examples=30, deadline=None)
@given(feasible_traces(with_sampling=True))
def test_pacer_lemma7_invariant(trace):
    """Ver(o) ⪯ C_t.ver implies S_o.vc ⊑ C_t.vc (Lemma 7)."""
    from repro.core.versioning import VE_BOTTOM, VE_TOP, vepoch_tid, vepoch_version

    d = PacerDetector()
    for event in trace:
        d.apply(event)
    for tid, tmeta in d._thread.items():
        for sync in list(d._lock.values()) + list(d._vol.values()):
            ve = sync.vepoch
            if ve in (VE_BOTTOM, VE_TOP):
                continue
            if tmeta.ver.get(vepoch_tid(ve)) >= vepoch_version(ve):
                assert sync.clock.leq(tmeta.clock)


# -- packed-state representation ----------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    st.integers(1, 2**40),
    st.integers(0, 2**20 - 1),
)
def test_packed_epoch_round_trip(clock, tid):
    """pack_epoch/unpack_epoch is the identity on the valid domain."""
    from repro.core.clocks import Epoch, pack_epoch, unpack_epoch

    packed = pack_epoch(clock, tid)
    assert unpack_epoch(packed) == Epoch(clock, tid)
    assert packed > 0  # never collides with the packed bottom epoch


@settings(max_examples=200, deadline=None)
@given(
    st.integers(1, 2**40), st.integers(0, 2**20 - 1),
    st.integers(1, 2**40), st.integers(0, 2**20 - 1),
)
def test_packed_epoch_preserves_clock_order(c1, t1, c2, t2):
    """Integer comparison of packed epochs agrees with clock comparison
    for same-thread epochs, and clock dominance wins across threads."""
    from repro.core.clocks import pack_epoch

    p1, p2 = pack_epoch(c1, t1), pack_epoch(c2, t2)
    if t1 == t2:
        assert (p1 < p2) == (c1 < c2)
    if c1 < c2:
        assert p1 < p2


@settings(max_examples=100, deadline=None)
@given(st.integers())
def test_packed_epoch_rejects_out_of_range(value):
    """tids outside TID_BITS and non-positive clocks never pack."""
    import pytest

    from repro.core.clocks import MAX_TID, pack_epoch
    from repro.core.versioning import pack_vepoch

    if not 0 <= value <= MAX_TID:
        with pytest.raises(ValueError):
            pack_epoch(1, value)
        with pytest.raises(ValueError):
            pack_vepoch(1, value)
    if value <= 0:
        with pytest.raises(ValueError):
            pack_epoch(value, 0)
        with pytest.raises(ValueError):
            pack_vepoch(value, 0)


@settings(max_examples=200, deadline=None)
@given(st.integers(1, 2**40), st.integers(0, 2**20 - 1))
def test_packed_vepoch_round_trip(version, tid):
    from repro.core.versioning import (
        VE_BOTTOM,
        VE_TOP,
        VersionEpoch,
        pack_vepoch,
        unpack_vepoch,
        vepoch_tid,
        vepoch_version,
    )

    packed = pack_vepoch(version, tid)
    assert unpack_vepoch(packed) == VersionEpoch(version, tid)
    assert vepoch_version(packed) == version
    assert vepoch_tid(packed) == tid
    assert packed not in (VE_BOTTOM, VE_TOP)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 30), st.integers(0, 9)),
        min_size=1,
        max_size=12,
    )
)
def test_readmap_inflate_transitions(records):
    """ReadMap state machine: epoch until a second thread records, then a
    shared map that exactly mirrors a reference dict; words() tracks the
    representation (2 for an epoch, 2 + 2*len for a map)."""
    from repro.core.clocks import ReadMap

    first_tid, first_clock, first_site = records[0]
    rm = ReadMap(first_tid, first_clock, first_site)
    reference = {first_tid: (first_clock, first_site, -1)}
    inflated = False
    for tid, clock, site in records[1:]:
        rm.record(tid, clock, site)
        reference[tid] = (clock, site, -1)
        if tid != first_tid:
            inflated = True
        if not inflated:
            # same-thread records overwrite the epoch in place
            reference = {tid: (clock, site, -1)}
    assert rm.is_epoch == (not inflated)
    assert {t: (c, s, i) for t, c, s, i in rm.entries()} == reference
    if inflated:
        assert rm.words() == 2 + 2 * len(reference)
        # discard removes single entries but never deflates back
        victim = next(iter(reference))
        rm.discard(victim)
        reference.pop(victim)
        assert not rm.is_epoch
        assert rm.words() == 2 + 2 * len(reference)
    else:
        assert rm.words() == 2
