"""PACER outside sampling periods: fast paths, discards, the guarantee.

These tests encode the paper's §3.1 scenarios, including Figure 1, and
the proportionality guarantee relative to FASTTRACK's reports.
"""

from helpers import in_sampling_window, race_sigs, sampling_windows

from repro import FastTrackDetector, PacerDetector
from repro.trace.events import (
    acq,
    fork,
    join,
    rd,
    rel,
    sbegin,
    send,
    vol_rd,
    vol_wr,
    wr,
)
from repro.trace.generator import random_trace

X, Y, Z = 1, 2, 3
L, L2 = 100, 101
V = 200


class TestFastPath:
    def test_untracked_accesses_do_no_work(self):
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1), rd(0, X), wr(1, Y), rd(1, X)])
        assert d.counters.reads_fast_nonsampling == 2
        assert d.counters.writes_fast_nonsampling == 1
        assert d.counters.reads_slow_nonsampling == 0
        assert d.tracked_variables == 0

    def test_no_metadata_allocated_when_not_sampling(self):
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1)] + [wr(0, v) for v in range(50)])
        assert d.tracked_variables == 0

    def test_tracked_variable_takes_slow_path(self):
        d = PacerDetector()
        d.run([sbegin(), wr(0, X), send(), rd(0, X)])
        assert d.counters.reads_slow_nonsampling == 1


class TestSampledRaceDetection:
    def test_sampled_write_races_with_later_unsampled_read(self):
        # Figure 1's y-race: write inside the period, read after it.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(),
                wr(0, X, site=1),
                send(),
                rd(1, X, site=2),
            ]
        )
        assert [(r.first_site, r.second_site) for r in d.races] == [(1, 2)]

    def test_sampled_write_races_with_much_later_access(self):
        d = PacerDetector()
        events = [fork(0, 1), sbegin(), wr(0, X, site=1), send()]
        events += [rd(1, Y) for _ in range(20)]  # unrelated fast-path noise
        events += [wr(1, X, site=2)]
        d.run(events)
        assert ("ww", 1, 2) in {(r.kind, r.first_site, r.second_site) for r in d.races}

    def test_race_across_two_sampling_periods(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(0, X, site=1), send(),
                sbegin(), rd(1, X, site=2), send(),
            ]
        )
        assert [(r.first_site, r.second_site) for r in d.races] == [(1, 2)]

    def test_unsampled_first_access_not_reported(self):
        d = PacerDetector()
        d.run([fork(0, 1), wr(0, X, site=1), rd(1, X, site=2)])
        assert d.races == []

    def test_figure1_x_scenario_discards_ordered_read(self):
        # Sampled read R_x on t2 is ordered (via a lock) before t1's
        # unsampled write; PACER detects no race at the write, discards
        # x's metadata, and correctly stays silent at the second write.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1), fork(0, 2),
                sbegin(),
                rd(2, X, site=1),  # sampled read
                acq(2, L), rel(2, L),
                send(),
                acq(1, L),
                wr(1, X, site=2),  # ordered after the read: no race, discard
                rel(1, L),
                wr(2, X, site=3),  # races site 2 (unsampled): must NOT report
            ]
        )
        assert d.races == []
        assert d.tracked_variables == 0


class TestDiscardRules:
    def test_unsampled_write_discards_all_metadata(self):
        d = PacerDetector()
        d.run([fork(0, 1), sbegin(), wr(0, X), rd(0, Y), send()])
        assert d.tracked_variables == 2
        d.apply(wr(1, X))  # different thread: not the same epoch
        d.apply(wr(1, Y))
        assert d.tracked_variables == 0

    def test_unsampled_ordered_read_discards_read_epoch(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), rd(0, X, site=1), acq(0, L), rel(0, L), send(),
                acq(1, L),
                rd(1, X, site=2),  # FASTTRACK would overwrite: discard
            ]
        )
        view = d.var_view(X)
        assert view is None or view.read is None

    def test_unsampled_concurrent_read_keeps_epoch(self):
        # Table 4 Rule 4: a concurrent read epoch is NOT discarded.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), rd(0, X, site=1), send(),
                rd(1, X, site=2),  # concurrent with the sampled read
            ]
        )
        assert d.var_view(X).read is not None
        d.apply(wr(1, X, site=3))
        assert ("rw", 1, 3) in {(r.kind, r.first_site, r.second_site) for r in d.races}

    def test_same_epoch_read_not_discarded(self):
        # A same-epoch re-read must keep the sampled entry: FASTTRACK
        # would not overwrite it either.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), rd(0, X, site=1), send(),
                rd(0, X, site=1),  # same epoch (frozen clock)
                wr(1, X, site=2),
            ]
        )
        assert ("rw", 1, 2) in {(r.kind, r.first_site, r.second_site) for r in d.races}

    def test_map_discard_only_own_entry(self):
        # Table 4 Rule 3: a non-sampled read in shared mode discards only
        # the reading thread's entry.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1), fork(0, 2),
                sbegin(), rd(0, X, site=1), rd(1, X, site=2), send(),
                acq(2, L), rd(0, X, site=3),  # t0 discards its own entry
                wr(2, X, site=4),
            ]
        )
        firsts = {(r.kind, r.first_site) for r in d.races}
        assert ("rw", 2) in firsts  # t1's sampled read still reported
        assert ("rw", 1) not in firsts  # t0's entry was discarded

    def test_same_epoch_unsampled_write_keeps_metadata(self):
        # Algorithm 13: a same-epoch write performs checks but no discard.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(0, X, site=1), send(),
                wr(0, X, site=9),  # same epoch: checks only, keep W
                rd(1, X, site=2),
            ]
        )
        assert ("wr", 1, 2) in {(r.kind, r.first_site, r.second_site) for r in d.races}

    def test_nonsampled_write_checks_before_discard(self):
        # The discard still reports races with sampled metadata first.
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), rd(0, X, site=1), send(),
                wr(1, X, site=2),
            ]
        )
        assert [(r.kind, r.first_site, r.second_site) for r in d.races] == [
            ("rw", 1, 2)
        ]
        assert d.tracked_variables == 0


class TestGuaranteeOnRandomTraces:
    def test_every_sampled_first_access_is_flagged(self):
        """Every FASTTRACK race whose first access is sampled and whose
        access pair has no intervening conflicting access must appear in
        PACER's reports with the same static identity."""
        missed = 0
        total = 0
        for seed in range(40):
            trace = random_trace(seed=seed, length=600, sampling_period_prob=0.06)
            windows = sampling_windows(trace)
            ft = FastTrackDetector()
            ft.run(trace)
            p = PacerDetector()
            p.run(trace)
            sampled_firsts = {
                (r.var, r.first_tid, r.first_site)
                for r in p.races
                if in_sampling_window(r.first_index, windows)
            }
            accesses = {}
            for i, e in enumerate(trace):
                if e.kind in ("rd", "wr"):
                    accesses.setdefault(e.target, []).append((i, e.kind))
            for r in ft.races:
                if not in_sampling_window(r.first_index, windows):
                    continue
                # skip FASTTRACK's stale same-epoch reports: an
                # intervening conflicting access means (first, second)
                # is not a shortest race
                second_kind = "wr" if r.kind == "rw" else (
                    "rd" if r.kind == "wr" else "wr"
                )
                intervening = any(
                    r.first_index < i < r.index
                    and (k == "wr" or second_kind == "wr")
                    for i, k in accesses.get(r.var, [])
                )
                if intervening:
                    continue
                total += 1
                if (r.var, r.first_tid, r.first_site) not in sampled_firsts:
                    missed += 1
        assert total > 500  # the corpus actually exercises the guarantee
        assert missed == 0

    def test_precision_with_sampling(self):
        """PACER never reports a non-race, under any sampling schedule."""
        from repro.trace.oracle import HBOracle

        for seed in range(25):
            trace = random_trace(seed=seed, length=400, sampling_period_prob=0.08)
            oracle = HBOracle(trace)
            truth = set()
            for accesses in oracle._by_var.values():
                for j, b in enumerate(accesses):
                    for a in accesses[:j]:
                        if a.conflicts_with(b) and not a.happens_before(b):
                            truth.add((a.index, b.index))
            p = PacerDetector()
            p.run(trace)
            for race in p.races:
                assert (race.first_index, race.index) in truth
