"""The Eraser lockset and Djit+ baselines (paper §6.2)."""

from repro.detectors import (
    DjitPlusDetector,
    EraserDetector,
    GenericDetector,
    NullDetector,
)
from repro.trace.events import acq, fork, join, rd, rel, vol_rd, vol_wr, wr
from repro.trace.generator import random_trace

X, Y = 1, 2
L, L2 = 100, 101
V = 200


class TestEraser:
    def test_catches_unprotected_sharing(self):
        d = EraserDetector()
        d.run([fork(0, 1), wr(0, X, site=1), wr(1, X, site=2)])
        assert len(d.races) == 1

    def test_consistent_lock_clean(self):
        d = EraserDetector()
        d.run(
            [
                fork(0, 1),
                acq(0, L), wr(0, X), rel(0, L),
                acq(1, L), wr(1, X), rel(1, L),
            ]
        )
        assert d.races == []

    def test_lockset_intersection(self):
        # first sharing under {L, L2}, later only under L: still protected
        d = EraserDetector()
        d.run(
            [
                fork(0, 1),
                acq(0, L), acq(0, L2), wr(0, X), rel(0, L2), rel(0, L),
                acq(1, L), wr(1, X), rel(1, L),
            ]
        )
        assert d.races == []

    def test_exclusive_phase_unreported(self):
        d = EraserDetector()
        d.run([wr(0, X), wr(0, X), rd(0, X)])
        assert d.races == []

    def test_read_shared_not_reported_until_write(self):
        d = EraserDetector()
        d.run([fork(0, 1), wr(0, X), rd(1, X)])
        # SHARED (read-shared) state: Eraser stays quiet until a write
        assert d.races == []
        d.apply(wr(1, X))
        assert len(d.races) == 1

    def test_false_positive_on_fork_join(self):
        """The imprecision that motivates happens-before detection."""
        trace = [wr(0, X), fork(0, 1), wr(1, X), join(0, 1), wr(0, X)]
        eraser = EraserDetector()
        eraser.run(trace)
        generic = GenericDetector()
        generic.run(trace)
        assert generic.races == []  # truly race-free
        assert len(eraser.races) == 1  # Eraser false positive

    def test_false_positive_on_volatile_protocol(self):
        trace = [
            fork(0, 1),
            wr(0, X), vol_wr(0, V),
            vol_rd(1, V), wr(1, X),
        ]
        eraser = EraserDetector()
        eraser.run(trace)
        generic = GenericDetector()
        generic.run(trace)
        assert generic.races == []
        assert len(eraser.races) == 1

    def test_reports_each_variable_once(self):
        d = EraserDetector()
        events = [fork(0, 1)]
        for _ in range(5):
            events += [wr(0, X), wr(1, X)]
        d.run(events)
        assert len(d.races) == 1

    def test_footprint(self):
        d = EraserDetector()
        d.run([fork(0, 1), acq(0, L), wr(0, X), rel(0, L), wr(1, Y)])
        assert d.footprint_words() > 0


class TestDjitPlus:
    def test_same_racy_variables_as_generic(self):
        for seed in range(20):
            trace = random_trace(seed=seed, length=400)
            g = GenericDetector()
            g.run(trace)
            d = DjitPlusDetector()
            d.run(trace)
            assert {r.var for r in g.races} == {r.var for r in d.races}

    def test_skips_same_time_frame_repeats(self):
        d = DjitPlusDetector()
        d.run([rd(0, X), rd(0, X), rd(0, X)])
        assert d.counters.reads_fast_sampling == 2
        assert d.counters.reads_slow_sampling == 1

    def test_write_not_skipped_after_read(self):
        d = DjitPlusDetector()
        d.run([rd(0, X), wr(0, X)])
        assert d.counters.writes_fast_sampling == 0

    def test_read_skipped_after_write(self):
        d = DjitPlusDetector()
        d.run([wr(0, X), rd(0, X)])
        assert d.counters.reads_fast_sampling == 1

    def test_new_time_frame_reanalyzed(self):
        d = DjitPlusDetector()
        d.run([rd(0, X), acq(0, L), rel(0, L), rd(0, X)])
        assert d.counters.reads_slow_sampling == 2

    def test_never_misses_cross_frame_race(self):
        d = DjitPlusDetector()
        d.run([fork(0, 1), rd(0, X), rd(0, X), wr(1, X)])
        assert len(d.races) == 1


class TestNullDetector:
    def test_ignores_everything(self):
        d = NullDetector()
        d.run(random_trace(seed=0, length=200))
        assert d.races == []
        assert d.footprint_words() == 0
