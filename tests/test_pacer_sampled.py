"""PACER inside sampling periods: exactly FASTTRACK (paper §3.3)."""

from helpers import race_sigs

from repro import FastTrackDetector, PacerDetector
from repro.trace.events import acq, fork, join, rd, rel, sbegin, send, vol_rd, vol_wr, wr
from repro.trace.generator import race_free_trace, random_trace

X, Y = 1, 2
L = 100
V = 200


def pacer(events, sampling=True):
    d = PacerDetector(sampling=sampling)
    d.run(events)
    return d


class TestBasicRaces:
    def test_ww_race(self):
        d = pacer([fork(0, 1), wr(0, X, site=1), wr(1, X, site=2)])
        assert [r.kind for r in d.races] == ["ww"]

    def test_wr_race(self):
        d = pacer([fork(0, 1), wr(0, X, site=1), rd(1, X, site=2)])
        assert [r.kind for r in d.races] == ["wr"]

    def test_rw_race(self):
        d = pacer([fork(0, 1), rd(0, X, site=1), wr(1, X, site=2)])
        assert [r.kind for r in d.races] == ["rw"]

    def test_lock_discipline_clean(self):
        d = pacer(
            [
                fork(0, 1),
                acq(0, L), rd(0, X), wr(0, X), rel(0, L),
                acq(1, L), rd(1, X), wr(1, X), rel(1, L),
            ]
        )
        assert d.races == []

    def test_fork_join_clean(self):
        d = pacer([wr(0, X), fork(0, 1), wr(1, X), join(0, 1), wr(0, X)])
        assert d.races == []

    def test_volatile_ordering_clean(self):
        d = pacer([fork(0, 1), wr(0, X), vol_wr(0, V), vol_rd(1, V), wr(1, X)])
        assert d.races == []


class TestFastTrackEquivalence:
    """Always-sampling PACER must report exactly what FASTTRACK reports."""

    def test_exact_equality_on_random_traces(self):
        for seed in range(40):
            trace = random_trace(seed=seed, length=400)
            ft = FastTrackDetector()
            ft.run(trace)
            p = PacerDetector(sampling=True)
            p.run(trace)
            assert race_sigs(ft.races) == race_sigs(p.races), f"seed {seed}"

    def test_exact_equality_with_volatile_heavy_traces(self):
        for seed in range(15):
            trace = random_trace(seed=seed, length=400, sync_fraction=0.4)
            ft = FastTrackDetector()
            ft.run(trace)
            p = PacerDetector(sampling=True)
            p.run(trace)
            assert race_sigs(ft.races) == race_sigs(p.races), f"seed {seed}"

    def test_race_free_traces_clean(self):
        for seed in range(10):
            trace = race_free_trace(seed=seed, length=300)
            assert pacer(trace).races == []

    def test_equality_unaffected_by_version_flags(self):
        for seed in range(10):
            trace = random_trace(seed=seed, length=300)
            baseline = race_sigs(PacerDetector(sampling=True).run(trace))
            no_versions = PacerDetector(sampling=True, use_versions=False)
            no_versions.run(trace)
            assert race_sigs(no_versions.races) == baseline
            no_sharing = PacerDetector(sampling=True, use_sharing=False)
            no_sharing.run(trace)
            assert race_sigs(no_sharing.races) == baseline


class TestSamplingPeriodBoundaries:
    def test_sbegin_increments_all_threads(self):
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1), wr(0, 999)])  # materialize both threads
        clocks_before = {t: m.clock.get(t) for t, m in d._thread.items()}
        d.apply(sbegin())
        for tid, meta in d._thread.items():
            assert meta.clock.get(tid) == clocks_before[tid] + 1

    def test_sbegin_idempotent_within_period(self):
        d = PacerDetector(sampling=True)
        d.run([wr(0, X)])
        before = d._thread[0].clock.get(0)
        d.begin_sampling()  # already sampling: no change
        assert d._thread[0].clock.get(0) == before

    def test_send_stops_time(self):
        d = PacerDetector(sampling=True)
        d.run([wr(0, X), send(), acq(0, L), rel(0, L)])
        # release does not increment outside sampling periods
        assert d._thread[0].clock.get(0) == 1

    def test_fully_sampled_trace_with_markers_matches_ft(self):
        events = [fork(0, 1), sbegin(), wr(0, X, site=1), wr(1, X, site=2), send()]
        ft = FastTrackDetector()
        ft.run(events)
        p = PacerDetector()
        p.run(events)
        assert {(r.first_site, r.second_site) for r in p.races} == {
            (r.first_site, r.second_site) for r in ft.races
        }
