"""The run observer: probe determinism, sampling wave, disabled-path parity."""

import json

import pytest

from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector
from repro.obs import RunObserver, validate_chrome_trace
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.workloads import MICRO, build_program
from repro.trace.events import fork, join, rd, sbegin, send, wr

from helpers import race_sigs


def small_trace():
    """A short trace with one sampling period and one write-write race."""
    return [
        fork(0, 1),
        sbegin(),
        wr(0, 1, site=1),
        wr(1, 1, site=2),  # races with the site-1 write
        rd(0, 2, site=3),
        send(),
        wr(0, 3, site=4),
        join(0, 1),
    ]


def replay(detector, events, batch_size=None):
    if batch_size is None:
        detector.run(events)
    else:
        detector.run_batch(events, batch_size)
    return detector


class TestHooks:
    def test_sampling_square_wave_recorded(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace())
        obs.finalize(det)
        # vt counts applied events, so the sbegin at trace index 1 lands
        # at vt 2 (it is the second event applied)
        assert obs.sampling_marks == [(2, True), (6, False)]
        assert obs.sampling_periods() == [(2, 6)]
        assert obs.registry.counter("sampling_periods").value == 1

    def test_redundant_transitions_deduped(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        det.run([fork(0, 1), sbegin(), sbegin(), wr(0, 1), send(), send()])
        assert len(obs.sampling_marks) == 2

    def test_open_sampling_period_closes_at_final_vt(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        det.run([fork(0, 1), sbegin(), wr(0, 1), wr(1, 2)])
        obs.finalize(det)
        (period,) = obs.sampling_periods()
        assert period == (2, obs.final_vt)

    def test_batch_slices_cover_the_trace(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace(), batch_size=3)
        starts = [vt for vt, _, _ in obs.batch_slices]
        sizes = [n for _, n, _ in obs.batch_slices]
        assert starts == [0, 3, 6]
        assert sum(sizes) == len(small_trace())

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            RunObserver(sample_every=0)

    def test_probe_records_detector_state(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace())
        obs.finalize(det)
        last = obs.timeline[-1]
        for key in ("vt", "sampling", "footprint_words", "live_vars",
                    "races", "threads", "reads_slow", "writes_slow"):
            assert key in last
        assert last["races"] == len(det.races) == 1
        assert last["live_vars"] == det.tracked_variables

    def test_finalize_is_idempotent(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace())
        obs.finalize(det)
        events_once = obs.registry.counter("events").value
        n_probes = len(obs.timeline)
        obs.finalize(det)
        assert obs.registry.counter("events").value == events_once
        assert len(obs.timeline) == n_probes

    def test_finalize_fills_registry_totals(self):
        obs = RunObserver()
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace(), batch_size=4)
        obs.finalize(det)
        snap = obs.registry.snapshot()["counters"]
        assert snap["events"] == len(small_trace())
        assert snap["races"] == 1
        assert snap["distinct_races"] == 1
        assert snap["batches"] == 2
        assert any(k.startswith("ops{op=") for k in snap)


class TestDeterminism:
    def _timeline(self, batch_size=None, sample_every=4):
        obs = RunObserver(sample_every=sample_every)
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace(), batch_size)
        obs.finalize(det)
        return obs

    def test_timeline_jsonl_byte_identical_across_runs(self):
        a = self._timeline()
        b = self._timeline()
        assert a.timeline_jsonl() == b.timeline_jsonl()
        assert a.registry.to_json() == b.registry.to_json()

    def test_timeline_rows_are_compact_sorted_json(self):
        obs = self._timeline()
        lines = obs.timeline_jsonl().splitlines()
        assert lines
        for line in lines:
            rec = json.loads(line)
            assert list(rec) == sorted(rec)
            assert json.dumps(rec, sort_keys=True, separators=(",", ":")) == line

    def test_write_timeline_matches_jsonl(self, tmp_path):
        obs = self._timeline()
        path = tmp_path / "t.jsonl"
        obs.write_timeline(path)
        assert path.read_text() == obs.timeline_jsonl()


class TestDisabledParity:
    """Observation must not change what any detector computes."""

    @pytest.mark.parametrize("batch_size", [None, 3])
    def test_fasttrack_results_identical_with_observer(self, batch_size):
        plain = replay(FastTrackDetector(), small_trace(), batch_size)
        observed = FastTrackDetector()
        RunObserver().attach(observed)
        replay(observed, small_trace(), batch_size)
        assert race_sigs(observed.races) == race_sigs(plain.races)
        assert observed.counters.snapshot() == plain.counters.snapshot()
        assert observed.footprint_words() == plain.footprint_words()

    def test_pacer_live_run_identical_with_observer(self):
        def run(observer):
            import random

            runtime = Runtime(
                build_program(MICRO.scaled(0.5), trial_seed=7),
                PacerDetector(),
                controller=BiasCorrectedController(0.25, rng=random.Random(7)),
                config=RuntimeConfig(track_memory=False),
                seed=7,
                observer=observer,
            )
            runtime.run()
            return runtime

        plain = run(None)
        obs = RunObserver()
        observed = run(obs)
        assert race_sigs(observed.detector.races) == race_sigs(plain.detector.races)
        assert observed.detector.counters.snapshot() == plain.detector.counters.snapshot()
        assert observed.events == plain.events
        assert observed.gc_log == plain.gc_log
        # and the observer actually saw the run
        assert obs.registry.counter("gc_count").value == len(plain.gc_log)
        assert obs.registry.counter("events").value == plain.events
        assert obs.timeline


class TestTraceExport:
    def test_full_run_trace_validates(self, tmp_path):
        obs = RunObserver(sample_every=4)
        det = FastTrackDetector()
        obs.attach(det)
        replay(det, small_trace(), batch_size=3)
        obs.finalize(det)
        path = tmp_path / "p.json"
        obs.write_trace(path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases
        counters = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert len(counters) >= 3
        sampling = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "sampling"
        ]
        assert len(sampling) == 1
