"""Unit tests for the GENERIC O(n) vector-clock detector."""

import pytest

from repro.detectors import GenericDetector
from repro.trace.events import acq, fork, join, rd, rel, vol_rd, vol_wr, wr

X, Y = 1, 2
L, L2 = 100, 101
V = 200


def run(events):
    d = GenericDetector()
    d.run(events)
    return d


class TestRaces:
    def test_ww_race_between_unordered_threads(self):
        d = run([fork(0, 1), wr(0, X, site=1), wr(1, X, site=2)])
        # fork orders t0's earlier ops before t1, but t0's write comes
        # after the fork, so it races with t1's write... trace order:
        # fork first, then both writes are concurrent.
        assert len(d.races) == 1
        race = d.races[0]
        assert race.kind == "ww"
        assert (race.first_site, race.second_site) == (1, 2)

    def test_fork_orders_parent_prefix(self):
        d = run([wr(0, X, site=1), fork(0, 1), wr(1, X, site=2)])
        assert d.races == []

    def test_join_orders_child_suffix(self):
        d = run([fork(0, 1), wr(1, X, site=1), join(0, 1), wr(0, X, site=2)])
        assert d.races == []

    def test_wr_race(self):
        d = run([fork(0, 1), wr(0, X, site=1), rd(1, X, site=2)])
        assert [r.kind for r in d.races] == ["wr"]

    def test_rw_race(self):
        d = run([fork(0, 1), rd(0, X, site=1), wr(1, X, site=2)])
        assert [r.kind for r in d.races] == ["rw"]

    def test_reads_never_race(self):
        d = run([fork(0, 1), rd(0, X), rd(1, X), rd(0, X)])
        assert d.races == []

    def test_lock_orders_accesses(self):
        d = run(
            [
                fork(0, 1),
                acq(0, L), wr(0, X, site=1), rel(0, L),
                acq(1, L), wr(1, X, site=2), rel(1, L),
            ]
        )
        assert d.races == []

    def test_different_locks_do_not_order(self):
        d = run(
            [
                fork(0, 1),
                acq(0, L), wr(0, X, site=1), rel(0, L),
                acq(1, L2), wr(1, X, site=2), rel(1, L2),
            ]
        )
        assert len(d.races) == 1

    def test_transitive_happens_before(self):
        # t0 -> (lock L) -> t1 -> (lock L2) -> t2
        d = run(
            [
                fork(0, 1), fork(0, 2),
                wr(0, X, site=1),
                acq(0, L), rel(0, L),
                acq(1, L), rel(1, L),
                acq(1, L2), rel(1, L2),
                acq(2, L2), rel(2, L2),
                wr(2, X, site=2),
            ]
        )
        assert d.races == []

    def test_volatile_write_read_orders(self):
        d = run(
            [
                fork(0, 1),
                wr(0, X, site=1),
                vol_wr(0, V),
                vol_rd(1, V),
                rd(1, X, site=2),
            ]
        )
        assert d.races == []

    def test_volatile_read_before_write_does_not_order(self):
        d = run(
            [
                fork(0, 1),
                vol_rd(1, V),
                wr(0, X, site=1),
                vol_wr(0, V),
                rd(1, X, site=2),
            ]
        )
        assert len(d.races) == 1

    def test_multiple_concurrent_reads_all_race_with_write(self):
        d = run(
            [
                fork(0, 1), fork(0, 2),
                rd(1, X, site=1), rd(2, X, site=2),
                wr(0, X, site=3),
            ]
        )
        assert sorted((r.first_site, r.second_site) for r in d.races) == [
            (1, 3),
            (2, 3),
        ]

    def test_race_reports_carry_threads_and_indices(self):
        d = run([fork(0, 1), wr(0, X, site=1), wr(1, X, site=2)])
        race = d.races[0]
        assert (race.first_tid, race.second_tid) == (0, 1)
        assert race.first_index == 1
        assert race.index == 2

    def test_distinct_races_dedup(self):
        events = [fork(0, 1)]
        for _ in range(3):
            events += [wr(0, X, site=1), wr(1, X, site=2)]
        d = run(events)
        assert len(d.races) >= 3
        assert len(d.distinct_races) <= 3  # (1,2),(2,1),... site pairs only


class TestAccounting:
    def test_counts_accesses_and_syncs(self):
        d = run([fork(0, 1), acq(0, L), rd(0, X), wr(0, X), rel(0, L), join(0, 1)])
        assert d.counters.reads == 1
        assert d.counters.writes == 1
        assert d.counters.joins_slow >= 2  # acquire + join

    def test_footprint_grows_with_vars(self):
        d1 = run([wr(0, 1)])
        d2 = run([wr(0, 1), wr(0, 2), wr(0, 3)])
        assert d2.footprint_words() > d1.footprint_words()

    def test_n_threads(self):
        d = run([fork(0, 1), fork(1, 2)])
        assert d.n_threads == 3

    def test_unknown_event_kind_rejected(self):
        from repro.trace.events import Event

        d = GenericDetector()
        with pytest.raises(ValueError):
            d.apply(Event("bogus", 0, 0, 0))
