"""PACER's version epochs and clock sharing (paper §3.2, Table 7).

Covers the O(n)-avoidance machinery: version fast paths at joins,
shallow copies at releases, copy-on-write cloning, and the Lemma 7
invariant (a known version implies clock ordering).
"""

from repro import PacerDetector
from repro.core.versioning import VE_BOTTOM, VE_TOP, vepoch_tid, vepoch_version
from repro.trace.events import acq, fork, join, rd, rel, sbegin, send, vol_rd, vol_wr, wr
from repro.trace.generator import random_trace

X = 1
L, L2 = 100, 101
V = 200


class TestSharing:
    def test_release_shares_clock_when_not_sampling(self):
        d = PacerDetector(sampling=False)
        d.run([acq(0, L), rel(0, L)])
        assert d._lock[L].clock is d._thread[0].clock
        assert d._thread[0].clock.shared
        assert d.counters.copies_shallow_nonsampling == 1
        assert d.counters.copies_deep_nonsampling == 0

    def test_release_deep_copies_when_sampling(self):
        d = PacerDetector(sampling=True)
        d.run([acq(0, L), rel(0, L)])
        assert d._lock[L].clock is not d._thread[0].clock
        assert d.counters.copies_deep_sampling == 1

    def test_multiple_locks_share_one_clock(self):
        # Figure 2: both releases share t's vector clock.
        d = PacerDetector(sampling=False)
        d.run([acq(0, L), rel(0, L), acq(0, L2), rel(0, L2)])
        assert d._lock[L].clock is d._lock[L2].clock

    def test_increment_clones_shared_clock(self):
        d = PacerDetector(sampling=False)
        d.run([acq(0, L), rel(0, L)])
        shared_clock = d._thread[0].clock
        d.apply(sbegin())  # increments -> must clone first
        assert d._thread[0].clock is not shared_clock
        assert d.counters.clones >= 1
        # the lock still references the old (shared) value
        assert d._lock[L].clock is shared_clock

    def test_sharing_never_corrupts_lock_clock(self):
        d = PacerDetector(sampling=False)
        d.run([acq(0, L), rel(0, L)])
        lock_value = [d._lock[L].clock.get(i) for i in range(3)]
        d.apply(sbegin())
        d.apply(wr(0, X))
        d.apply(send())
        assert [d._lock[L].clock.get(i) for i in range(3)] == lock_value

    def test_sharing_disabled_by_flag(self):
        d = PacerDetector(sampling=False, use_sharing=False)
        d.run([acq(0, L), rel(0, L)])
        assert d._lock[L].clock is not d._thread[0].clock
        assert d.counters.copies_deep_nonsampling == 1


class TestVersionFastPath:
    def test_fork_version_makes_first_acquire_fast(self):
        # fork hands t1 version 1 of t0's clock; in a timeless period the
        # release re-publishes the same version, so even t1's FIRST
        # acquire skips the join.
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1), acq(0, L), rel(0, L)])
        before = d.counters.joins_slow_nonsampling
        d.apply(acq(1, L))
        assert d.counters.joins_slow_nonsampling == before
        assert d.counters.joins_fast_nonsampling >= 1

    def test_repeat_acquire_skips_join(self):
        # A sampling blip gives t0 a new version t1 has not seen: the
        # first acquire pays one slow join, repeats are all fast.
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1), sbegin(), send(), acq(0, L), rel(0, L)])
        before = d.counters.joins_slow_nonsampling
        d.apply(acq(1, L))
        d.apply(rel(1, L))
        d.apply(acq(1, L))
        d.apply(rel(1, L))
        d.apply(acq(1, L))
        slow_delta = d.counters.joins_slow_nonsampling - before
        assert slow_delta == 1
        assert d.counters.joins_fast_nonsampling >= 1

    def test_version_epoch_set_on_release(self):
        d = PacerDetector(sampling=False)
        d.run([acq(0, L), rel(0, L)])
        ve = d._lock[L].vepoch
        assert ve not in (VE_BOTTOM, VE_TOP)
        assert vepoch_tid(ve) == 0

    def test_acquire_unreleased_lock_is_fast(self):
        d = PacerDetector(sampling=False)
        d.run([acq(0, L)])
        assert d.counters.joins_fast_nonsampling == 1
        assert d.counters.joins_slow_nonsampling == 0

    def test_version_vector_learns_from_joins(self):
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1), acq(0, L), rel(0, L), acq(1, L)])
        ve = d._lock[L].vepoch
        assert d._thread[1].ver.get(vepoch_tid(ve)) >= vepoch_version(ve)

    def test_versions_disabled_forces_slow_joins(self):
        trace = [fork(0, 1)] + [
            e
            for i in range(5)
            for e in (acq(0, L), rel(0, L), acq(1, L), rel(1, L))
        ]
        with_v = PacerDetector(sampling=False)
        with_v.run(trace)
        without_v = PacerDetector(sampling=False, use_versions=False)
        without_v.run(trace)
        assert (
            without_v.counters.joins_slow_nonsampling
            > with_v.counters.joins_slow_nonsampling
        )

    def test_lemma7_versions_imply_clock_ordering(self):
        """Ver(o) ⪯ C_t.ver  ==>  S_o.vc ⊑ C_t.vc, at every step."""
        for seed in range(8):
            trace = random_trace(
                seed=seed, length=300, sampling_period_prob=0.08
            )
            d = PacerDetector()
            for event in trace:
                d.apply(event)
                for tid, tmeta in d._thread.items():
                    for sync in list(d._lock.values()) + list(d._vol.values()):
                        ve = sync.vepoch
                        if ve in (VE_BOTTOM, VE_TOP):
                            continue
                        if tmeta.ver.get(vepoch_tid(ve)) >= vepoch_version(ve):
                            assert sync.clock.leq(tmeta.clock)


class TestTimelessness:
    def test_no_increments_outside_sampling(self):
        d = PacerDetector(sampling=False)
        d.run(
            [
                fork(0, 1),
                acq(0, L), rel(0, L),
                vol_wr(0, V),
                acq(1, L), rel(1, L),
            ]
        )
        assert d.counters.increments == 0

    def test_increments_inside_sampling(self):
        d = PacerDetector(sampling=True)
        d.run([acq(0, L), rel(0, L)])
        assert d.counters.increments == 1

    def test_join_operation_join_thread(self):
        d = PacerDetector(sampling=False)
        d.run([fork(0, 1), wr(1, X), join(0, 1)])
        # after join(0,1), t1's history is ordered before t0
        assert d._thread[1].clock.leq(d._thread[0].clock)
        assert not d._thread[1].alive


class TestVolatileVersions:
    def test_totally_ordered_volatile_keeps_version_epoch(self):
        d = PacerDetector(sampling=False)
        d.run([vol_wr(0, V), vol_rd(0, V), vol_wr(0, V)])
        assert d._vol[V].vepoch != VE_TOP
        assert d._vol[V].vepoch != VE_BOTTOM

    def test_concurrent_volatile_writes_top_out(self):
        d = PacerDetector(sampling=True)
        d.run([fork(0, 1), vol_wr(0, V), vol_wr(1, V)])
        assert d._vol[V].vepoch == VE_TOP

    def test_top_ve_forces_full_comparison_on_read(self):
        d = PacerDetector(sampling=True)
        d.run([fork(0, 1), fork(0, 2), vol_wr(0, V), vol_wr(1, V)])
        before = d.counters.joins_slow_sampling
        d.apply(vol_rd(2, V))
        assert d.counters.joins_slow_sampling == before + 1

    def test_volatile_hb_preserved_after_top(self):
        # even with a TOP_VE version epoch, happens-before must hold
        d = PacerDetector()
        d.run(
            [
                fork(0, 1), fork(0, 2),
                sbegin(),
                vol_wr(0, V), vol_wr(1, V),
                wr(0, X, site=1),
                vol_wr(0, V),
                send(),
                vol_rd(2, V),
                rd(2, X, site=2),
            ]
        )
        assert d.races == []

    def test_subsumed_volatile_write_shallow_copies(self):
        d = PacerDetector(sampling=False)
        d.run([vol_wr(0, V), vol_wr(0, V)])
        assert d._vol[V].clock is d._thread[0].clock
        assert d.counters.copies_shallow_nonsampling >= 1
