"""Unit tests for the vector clock substrate."""

import pytest

from repro.core.clocks import Epoch, MIN_EPOCH, VectorClock, epoch_leq_vc


class TestVectorClockBasics:
    def test_new_clock_is_bottom(self):
        clock = VectorClock()
        assert clock.get(0) == 0
        assert clock.get(17) == 0
        assert len(clock) == 0

    def test_set_and_get(self):
        clock = VectorClock()
        clock.set(3, 7)
        assert clock.get(3) == 7
        assert clock.get(2) == 0
        assert clock.get(4) == 0

    def test_setitem_getitem_aliases(self):
        clock = VectorClock()
        clock[2] = 5
        assert clock[2] == 5

    def test_grows_on_demand(self):
        clock = VectorClock()
        clock.set(10, 1)
        assert len(clock) == 11
        assert clock.get(9) == 0

    def test_increment(self):
        clock = VectorClock()
        clock.increment(1)
        clock.increment(1)
        assert clock.get(1) == 2
        assert clock.get(0) == 0

    def test_items_skips_zeros(self):
        clock = VectorClock([0, 3, 0, 5])
        assert list(clock.items()) == [(1, 3), (3, 5)]

    def test_copy_is_independent(self):
        clock = VectorClock([1, 2])
        other = clock.copy()
        other.increment(0)
        assert clock.get(0) == 1
        assert other.get(0) == 2

    def test_constructor_copies_input_list(self):
        values = [1, 2, 3]
        clock = VectorClock(values)
        values[0] = 99
        assert clock.get(0) == 1

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorClock())


class TestVectorClockLattice:
    def test_join_pointwise_max(self):
        a = VectorClock([1, 5, 0])
        b = VectorClock([3, 2, 4])
        a.join(b)
        assert [a.get(i) for i in range(3)] == [3, 5, 4]

    def test_join_grows_shorter_clock(self):
        a = VectorClock([1])
        b = VectorClock([0, 0, 7])
        a.join(b)
        assert a.get(2) == 7
        assert a.get(0) == 1

    def test_join_with_bottom_is_identity(self):
        a = VectorClock([2, 3])
        a.join(VectorClock())
        assert [a.get(i) for i in range(2)] == [2, 3]

    def test_leq_reflexive(self):
        a = VectorClock([1, 2, 3])
        assert a.leq(a)

    def test_leq_bottom_below_everything(self):
        assert VectorClock().leq(VectorClock([5, 5]))

    def test_leq_strict(self):
        a = VectorClock([1, 2])
        b = VectorClock([2, 2])
        assert a.leq(b)
        assert not b.leq(a)

    def test_leq_incomparable(self):
        a = VectorClock([2, 0])
        b = VectorClock([0, 2])
        assert not a.leq(b)
        assert not b.leq(a)

    def test_leq_handles_length_difference(self):
        a = VectorClock([0, 0, 1])
        b = VectorClock([5])
        assert not a.leq(b)
        assert b.leq(VectorClock([5, 0, 1]))

    def test_join_upper_bound(self):
        a = VectorClock([1, 4])
        b = VectorClock([3, 2])
        joined = a.copy()
        joined.join(b)
        assert a.leq(joined)
        assert b.leq(joined)

    def test_equality_ignores_trailing_zeros(self):
        assert VectorClock([1, 2]) == VectorClock([1, 2, 0, 0])
        assert VectorClock([1, 2]) != VectorClock([1, 3])

    def test_equality_notimplemented_for_other_types(self):
        assert VectorClock([1]) != 17


class TestEpochs:
    def test_epoch_of(self):
        clock = VectorClock([0, 9])
        assert clock.epoch_of(1) == Epoch(9, 1)

    def test_min_epoch_is_minimal(self):
        assert MIN_EPOCH.is_minimal
        assert Epoch(0, 5).is_minimal
        assert not Epoch(1, 5).is_minimal

    def test_epoch_leq_vc(self):
        clock = VectorClock([0, 3])
        assert epoch_leq_vc(Epoch(3, 1), clock)
        assert not epoch_leq_vc(Epoch(4, 1), clock)
        assert not epoch_leq_vc(Epoch(1, 2), clock)

    def test_epoch_leq_vc_none_and_minimal(self):
        clock = VectorClock()
        assert epoch_leq_vc(None, clock)
        assert epoch_leq_vc(Epoch(0, 99), clock)

    def test_epoch_str(self):
        assert str(Epoch(4, 2)) == "4@2"
