"""Telemetry wire protocol: fuzzing and server conformance.

Two layers of guarantees, each pinned property-based where it counts:

* **Codec totality** — for *any* byte stream (bit-flipped frames,
  truncations, oversized length prefixes, raw garbage, garbage spliced
  between valid frames) the decoder either yields well-formed frames or
  raises a *named* :class:`~repro.net.protocol.ProtocolError` subclass
  carrying a stable ``code``.  Never a hang, never ``KeyError`` /
  ``struct.error`` / silence.  Same for ``decode_message`` over
  arbitrary frame payloads, and round-trips are lossless for every
  message type.

* **Server conformance** — a live server maps every client-side
  protocol violation (bad schema, events before hello, duplicate
  session, sequence gap, server-only frames, malformed bytes) to an
  ERROR frame naming the same stable code, and answers the benign
  control frames (heartbeat echo, query, clean close) exactly as
  documented in docs/TELEMETRY.md.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    FRAME_ERROR,
    FRAME_EVENTS,
    FRAME_HEARTBEAT,
    FRAME_HELLO,
    PROTOCOL_SCHEMA,
    Close,
    CloseAck,
    Credit,
    ErrorMessage,
    EventsChunk,
    Frame,
    FrameCorrupt,
    FrameDecoder,
    FrameTooLarge,
    FrameTruncated,
    HandshakeError,
    Heartbeat,
    Hello,
    HelloAck,
    PayloadError,
    ProtocolError,
    Query,
    Report,
    SessionStateError,
    Sites,
    Spans,
    UnknownFrameType,
    chunk_events,
    decode_all,
    decode_message,
    encode_frame,
    encode_message,
    error_for_code,
)
from repro.net.server import ServerConfig, TelemetryServer
from repro.trace.events import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    SBEGIN,
    SEND,
    VOL_READ,
    VOL_WRITE,
    WRITE,
    Event,
)
from repro.util.faults import flip_byte, truncate_bytes

# -- strategies ---------------------------------------------------------------

OPERAND_KINDS = [READ, WRITE, ACQUIRE, RELEASE, FORK, JOIN, VOL_READ, VOL_WRITE]

operand_events = st.builds(
    Event,
    kind=st.sampled_from(OPERAND_KINDS),
    tid=st.integers(min_value=-1, max_value=2**20),
    target=st.integers(min_value=0, max_value=2**48),
    site=st.integers(min_value=0, max_value=2**32),
)
marker_events = st.sampled_from([Event(SBEGIN, -1, 0), Event(SEND, -1, 0)])
event_lists = st.lists(st.one_of(operand_events, marker_events), max_size=40)

session_names = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")),
    min_size=1,
    max_size=20,
)

messages = st.one_of(
    st.builds(
        Hello,
        session=session_names,
        detector=st.sampled_from(["fasttrack", "pacer", "eraser"]),
        backend=st.sampled_from([None, "object", "packed"]),
        resume=st.booleans(),
    ),
    st.builds(
        HelloAck,
        session=session_names,
        resume_seq=st.integers(min_value=0, max_value=2**32),
        credits=st.integers(min_value=1, max_value=64),
    ),
    st.builds(
        EventsChunk,
        seq=st.integers(min_value=1, max_value=2**40),
        events=event_lists.map(tuple),
    ),
    st.builds(
        Credit,
        ack=st.integers(min_value=0, max_value=2**40),
        credits=st.integers(min_value=1, max_value=64),
    ),
    st.builds(Heartbeat, nonce=st.integers(min_value=0, max_value=2**31)),
    st.builds(Close, seq=st.integers(min_value=0, max_value=2**40)),
    st.builds(
        CloseAck,
        summary=st.dictionaries(
            st.sampled_from(["events", "races", "chunks"]),
            st.integers(min_value=0, max_value=2**31),
        ),
    ),
    st.builds(
        ErrorMessage,
        error_code=st.sampled_from(
            ["protocol", "frame-corrupt", "handshake", "session-state"]
        ),
        detail=st.text(max_size=60),
    ),
    st.builds(Query),
    st.builds(Report, doc=st.dictionaries(st.text(max_size=8), st.integers())),
    st.builds(
        Sites,
        sites=st.dictionaries(
            st.integers(min_value=0, max_value=2**31),
            st.text(max_size=30),
            max_size=10,
        ),
    ),
    st.builds(
        Spans,
        pid=st.integers(min_value=0, max_value=2**16),
        name=session_names,
        events=st.lists(
            st.fixed_dictionaries(
                {
                    "name": st.text(max_size=12),
                    "ph": st.sampled_from(["X", "i", "M"]),
                    "ts": st.integers(min_value=0, max_value=2**48),
                }
            ),
            max_size=8,
        ).map(tuple),
        dropped=st.integers(min_value=0, max_value=2**20),
    ),
)


def assert_named(exc: ProtocolError) -> None:
    """Every protocol error carries a stable, registered code."""
    assert isinstance(exc, ProtocolError)
    assert isinstance(exc.code, str) and exc.code
    rebuilt = error_for_code(exc.code, str(exc))
    assert isinstance(rebuilt, ProtocolError)


# -- round trips --------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(messages)
def test_message_round_trip(msg):
    data = encode_message(msg)
    frames = decode_all(data)
    assert len(frames) == 1
    decoded = decode_message(frames[0])
    assert type(decoded) is type(msg)
    if isinstance(msg, EventsChunk):
        assert decoded.seq == msg.seq
        assert list(decoded.events) == list(msg.events)
    else:
        assert decoded == msg


@settings(max_examples=60, deadline=None)
@given(st.lists(messages, min_size=1, max_size=6), st.integers(1, 7))
def test_stream_reassembly_any_split(msgs, step):
    """Frames survive arbitrary recv boundaries (1..7-byte drip feed)."""
    blob = b"".join(encode_message(m) for m in msgs)
    decoder = FrameDecoder()
    frames = []
    for i in range(0, len(blob), step):
        frames.extend(decoder.feed(blob[i : i + step]))
    decoder.close()  # no partial leftovers
    assert len(frames) == len(msgs)
    for frame, msg in zip(frames, msgs):
        assert type(decode_message(frame)) is type(msg)


@settings(max_examples=60, deadline=None)
@given(event_lists, st.integers(min_value=1, max_value=9))
def test_chunk_events_partition(events, chunk_size):
    chunks = list(chunk_events(events, chunk_size))
    rebuilt = [ev for chunk in chunks for ev in chunk.events]
    assert rebuilt == events
    assert [c.seq for c in chunks] == list(range(1, len(chunks) + 1))
    assert all(len(c.events) <= chunk_size for c in chunks)


# -- malformed input never escapes the named-error taxonomy -------------------


def feed_expecting_named_errors(data: bytes) -> None:
    """Decode arbitrary bytes; anything but frames must be a named error."""
    decoder = FrameDecoder()
    try:
        for frame in decoder.feed(data):
            try:
                decode_message(frame)
            except ProtocolError as exc:
                assert_named(exc)
        decoder.close()
    except ProtocolError as exc:
        assert_named(exc)


@settings(max_examples=120, deadline=None)
@given(messages, st.data())
def test_flip_any_byte_is_named(msg, data):
    blob = encode_message(msg)
    offset = data.draw(st.integers(0, len(blob) - 1))
    mask = data.draw(st.integers(1, 255))
    feed_expecting_named_errors(flip_byte(blob, offset, mask))


@settings(max_examples=120, deadline=None)
@given(messages, st.data())
def test_truncation_is_named_or_incomplete(msg, data):
    blob = encode_message(msg)
    drop = data.draw(st.integers(1, len(blob) - 1))
    truncated = truncate_bytes(blob, drop)
    decoder = FrameDecoder()
    assert decoder.feed(truncated) == []  # never a frame from a partial
    with pytest.raises(FrameTruncated) as exc_info:
        decoder.close()
    assert_named(exc_info.value)


@settings(max_examples=120, deadline=None)
@given(st.binary(min_size=1, max_size=200))
def test_garbage_is_named(data):
    feed_expecting_named_errors(data)


@settings(max_examples=60, deadline=None)
@given(messages, st.binary(min_size=1, max_size=50))
def test_garbage_after_valid_frame_is_named(msg, garbage):
    """A valid frame decodes even when garbage follows it on the wire."""
    blob = encode_message(msg)
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(blob + garbage)
        decoder.close()
    except ProtocolError as exc:
        assert_named(exc)
        return
    assert frames  # at minimum, the valid leading frame came through
    assert type(decode_message(frames[0])) is type(msg)


def test_oversized_length_rejected_before_buffering():
    huge = (50 * 1024 * 1024).to_bytes(4, "little")
    decoder = FrameDecoder()
    with pytest.raises(FrameTooLarge) as exc_info:
        decoder.feed(huge)
    assert exc_info.value.code == "frame-too-large"
    assert decoder.buffer_high < 1024  # the 50 MiB never landed in memory


def test_undersized_length_rejected():
    with pytest.raises(FrameCorrupt):
        decode_all((2).to_bytes(4, "little") + b"xx")


def test_unknown_frame_type_rejected():
    blob = encode_frame(FRAME_HEARTBEAT, b"{}")
    # splice an unregistered type id in, with a recomputed CRC
    import zlib

    payload = b"{}"
    body = bytes([199]) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    raw = len(body + b"0000").to_bytes(4, "little") + body + crc.to_bytes(4, "little")
    with pytest.raises(UnknownFrameType) as exc_info:
        decode_all(raw)
    assert exc_info.value.code == "unknown-frame-type"
    assert decode_all(blob)  # the well-formed control frame still decodes


def test_corrupt_crc_names_the_frame():
    blob = encode_message(Heartbeat(nonce=7))
    with pytest.raises(FrameCorrupt) as exc_info:
        decode_all(flip_byte(blob, len(blob) - 1))
    assert exc_info.value.code == "frame-corrupt"


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=120))
def test_events_payload_fuzz_is_named(payload):
    frame = Frame(FRAME_EVENTS, payload)
    try:
        msg = decode_message(frame)
    except ProtocolError as exc:
        assert_named(exc)
    else:
        assert isinstance(msg, EventsChunk)


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=120))
def test_hello_payload_fuzz_is_named(payload):
    frame = Frame(FRAME_HELLO, payload)
    try:
        msg = decode_message(frame)
    except ProtocolError as exc:
        assert_named(exc)
    else:
        assert isinstance(msg, Hello)


def test_hello_rejects_wrong_schema():
    payload = json.dumps(
        {"session": "s", "detector": "fasttrack", "backend": None,
         "resume": False, "schema": "repro/telemetry/v999"}
    ).encode()
    with pytest.raises(HandshakeError):
        decode_message(decode_all(encode_frame(FRAME_HELLO, payload))[0])


def test_error_message_maps_back_to_exception():
    msg = ErrorMessage(error_code="frame-corrupt", detail="boom")
    exc = msg.to_exception()
    assert isinstance(exc, FrameCorrupt)
    assert "boom" in str(exc)
    # unknown codes degrade to the base class, still named
    base = ErrorMessage(error_code="not-a-real-code", detail="x").to_exception()
    assert type(base) is ProtocolError


# -- server conformance -------------------------------------------------------


class RawConn:
    """A hand-driven connection for speaking malformed protocol."""

    def __init__(self, address: str):
        from repro.net.client import parse_address

        kind, target = parse_address(address)
        assert kind == "tcp"
        self.sock = socket.create_connection(target, timeout=10.0)
        self.decoder = FrameDecoder()
        self.frames = []

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def send(self, msg) -> None:
        self.sock.sendall(encode_message(msg))

    def recv_msg(self):
        while not self.frames:
            data = self.sock.recv(65536)
            assert data, "server closed without a reply"
            self.frames.extend(self.decoder.feed(data))
        return decode_message(self.frames.pop(0))

    def expect_error(self, code: str) -> ErrorMessage:
        msg = self.recv_msg()
        assert isinstance(msg, ErrorMessage), f"expected ERROR, got {msg}"
        assert msg.error_code == code, f"{msg.error_code}: {msg.detail}"
        return msg

    def close(self) -> None:
        self.sock.close()


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(n_shards=2, shard_mode="inline")
    with TelemetryServer(config) as srv:
        yield srv


def _hello(conn: RawConn, name: str) -> HelloAck:
    conn.send(Hello(session=name))
    ack = conn.recv_msg()
    assert isinstance(ack, HelloAck)
    return ack


def test_server_handshake_and_heartbeat(server):
    conn = RawConn(server.address)
    ack = _hello(conn, "conf-hello")
    assert ack.session == "conf-hello"
    assert ack.resume_seq == 0
    assert ack.credits >= 1
    conn.send(Heartbeat(nonce=1234))
    echo = conn.recv_msg()
    assert isinstance(echo, Heartbeat) and echo.nonce == 1234
    conn.close()


def test_server_rejects_bad_schema(server):
    conn = RawConn(server.address)
    payload = json.dumps(
        {"session": "x", "detector": "fasttrack", "backend": None,
         "resume": False, "schema": "repro/telemetry/v999"}
    ).encode()
    conn.send_raw(encode_frame(FRAME_HELLO, payload))
    conn.expect_error("handshake")
    conn.close()


def test_server_rejects_unknown_detector(server):
    conn = RawConn(server.address)
    conn.send(Hello(session="bad-detector", detector="does-not-exist"))
    err = conn.expect_error("handshake")
    assert "detector" in err.detail
    conn.close()


def test_server_rejects_unknown_backend(server):
    from repro.core.backend import BACKENDS

    conn = RawConn(server.address)
    conn.send(Hello(session="bad-backend", backend="packed-nope"))
    err = conn.expect_error("handshake")
    assert "state backend" in err.detail
    # the refusal names every backend this server can actually build
    for backend in BACKENDS:
        assert backend in err.detail
    conn.close()


def test_server_rejects_events_before_hello(server):
    conn = RawConn(server.address)
    conn.send(EventsChunk(seq=1, events=(Event(READ, 0, 1, 0),)))
    conn.expect_error("session-state")
    conn.close()


def test_server_rejects_duplicate_session(server):
    conn1 = RawConn(server.address)
    _hello(conn1, "conf-dup")
    conn2 = RawConn(server.address)
    conn2.send(Hello(session="conf-dup"))
    err = conn2.expect_error("handshake")
    assert "resume" in err.detail
    conn2.close()
    conn1.close()


def test_server_rejects_resume_of_unknown_session(server):
    conn = RawConn(server.address)
    conn.send(Hello(session="conf-never-existed", resume=True))
    conn.expect_error("handshake")
    conn.close()


def test_server_rejects_sequence_gap(server):
    conn = RawConn(server.address)
    _hello(conn, "conf-gap")
    conn.send(EventsChunk(seq=5, events=(Event(READ, 0, 1, 0),)))
    err = conn.expect_error("session-state")
    assert "gap" in err.detail or "expected" in err.detail
    conn.close()


def test_server_rejects_server_only_frames(server):
    for msg in (
        HelloAck(session="x", resume_seq=0, credits=1),
        Credit(ack=1, credits=1),
        CloseAck(summary={}),
        ErrorMessage(error_code="protocol", detail="x"),
    ):
        conn = RawConn(server.address)
        conn.send(msg)
        conn.expect_error("session-state")
        conn.close()


def test_server_rejects_second_hello(server):
    conn = RawConn(server.address)
    _hello(conn, "conf-twice")
    conn.send(Hello(session="conf-twice-b"))
    conn.expect_error("session-state")
    conn.close()


def test_server_names_corrupt_frames(server):
    conn = RawConn(server.address)
    blob = encode_message(Heartbeat(nonce=3))
    conn.send_raw(flip_byte(blob, len(blob) - 2))
    conn.expect_error("frame-corrupt")
    conn.close()


def test_server_names_oversized_frames(server):
    conn = RawConn(server.address)
    conn.send_raw((200 * 1024 * 1024).to_bytes(4, "little"))
    conn.expect_error("frame-too-large")
    conn.close()


def test_server_names_unknown_frame_types(server):
    import zlib

    conn = RawConn(server.address)
    body = bytes([250]) + b"{}"
    crc = zlib.crc32(body) & 0xFFFFFFFF
    conn.send_raw(
        len(body + b"0000").to_bytes(4, "little")
        + body
        + crc.to_bytes(4, "little")
    )
    conn.expect_error("unknown-frame-type")
    conn.close()


def test_server_clean_close_summary(server):
    conn = RawConn(server.address)
    _hello(conn, "conf-close")
    events = (
        Event(WRITE, 0, 7, 1),
        Event(WRITE, 1, 7, 2),
    )
    conn.send(EventsChunk(seq=1, events=events))
    credit = conn.recv_msg()
    assert isinstance(credit, Credit) and credit.ack == 1
    conn.send(Close(seq=1))
    ack = conn.recv_msg()
    assert isinstance(ack, CloseAck)
    assert ack.summary["session"] == "conf-close"
    assert ack.summary["events"] == 2
    assert ack.summary["chunks"] == 1
    conn.close()


def test_server_rejects_close_at_wrong_seq(server):
    conn = RawConn(server.address)
    _hello(conn, "conf-badclose")
    conn.send(Close(seq=99))
    conn.expect_error("session-state")
    conn.close()


def test_server_rejects_events_after_close(server):
    conn = RawConn(server.address)
    _hello(conn, "conf-afterclose")
    conn.send(Close(seq=0))
    ack = conn.recv_msg()
    assert isinstance(ack, CloseAck)
    conn.send(EventsChunk(seq=1, events=(Event(READ, 0, 1, 0),)))
    conn.expect_error("session-state")
    conn.close()


def test_server_query_needs_no_session(server):
    conn = RawConn(server.address)
    conn.send(Query())
    report = conn.recv_msg()
    assert isinstance(report, Report)
    assert report.doc["schema"].startswith("repro/telemetry-status/")
    assert "sessions" in report.doc and "report" in report.doc
    conn.close()
