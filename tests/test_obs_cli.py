"""Observability through the CLI: profile, --json, and obs output files."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace
from repro.trace.events import fork, wr
from repro.trace.textio import dump_trace


@pytest.fixture
def racy_trace(tmp_path):
    path = tmp_path / "racy.txt"
    dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
    return path


class TestProfile:
    def test_profile_micro_emits_valid_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        timeline = tmp_path / "timeline.jsonl"
        trace = tmp_path / "profile.trace.json"
        assert main(
            [
                "profile", "micro", "--scale", "0.5", "--rate", "50",
                "--metrics-out", str(metrics),
                "--timeline-out", str(timeline),
                "--trace-out", str(trace),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "events" in out and "probes" in out

        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        counters = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert len(counters) >= 3
        assert any(
            e.get("cat") == "sampling"
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        )

        snap = json.loads(metrics.read_text())
        assert snap["counters"]["events"] > 0
        for line in timeline.read_text().splitlines():
            assert "vt" in json.loads(line)

    def test_profile_is_deterministic(self, tmp_path):
        outs = []
        for name in ("a", "b"):
            metrics = tmp_path / f"{name}.json"
            timeline = tmp_path / f"{name}.jsonl"
            assert main(
                [
                    "profile", "micro", "--scale", "0.5", "--seed", "3",
                    "--metrics-out", str(metrics),
                    "--timeline-out", str(timeline),
                    "--trace-out", str(tmp_path / f"{name}.trace.json"),
                ]
            ) == 0
            outs.append((metrics.read_bytes(), timeline.read_bytes()))
        assert outs[0] == outs[1]

    def test_profile_rejects_rate_for_always_on_detectors(self):
        assert main(
            ["profile", "micro", "--detector", "fasttrack", "--rate", "5",
             "--metrics-out", "/dev/null"]
        ) == 2


class TestAnalyzeJson:
    def test_json_document_shape(self, racy_trace, capsys):
        assert main(
            ["analyze", str(racy_trace), "--detector", "fasttrack", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "analyze"
        assert doc["detector"] == "fasttrack"
        assert doc["events"] == 3
        assert len(doc["races"]) == 1
        assert doc["races"][0]["kind"] == "ww"
        assert doc["distinct_races"] == [[1, 2]]
        assert "counters" in doc and "metrics" in doc and "perf" in doc

    def test_json_scalar_and_batch_agree(self, racy_trace, capsys):
        main(["analyze", str(racy_trace), "--json"])
        scalar = json.loads(capsys.readouterr().out)
        main(["analyze", str(racy_trace), "--batch", "--json"])
        batched = json.loads(capsys.readouterr().out)
        assert scalar["races"] == batched["races"]
        assert scalar["events"] == batched["events"]

    def test_obs_outputs_written(self, racy_trace, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace_out = tmp_path / "p.json"
        assert main(
            [
                "analyze", str(racy_trace), "--batch",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace_out),
            ]
        ) == 0
        assert json.loads(metrics.read_text())["counters"]["events"] == 3
        assert validate_chrome_trace(json.loads(trace_out.read_text())) == []


class TestDetectObs:
    def test_detect_writes_obs_outputs(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        timeline = tmp_path / "t.jsonl"
        assert main(
            [
                "detect", "micro", "--detector", "fasttrack", "--scale", "0.5",
                "--metrics-out", str(metrics),
                "--timeline-out", str(timeline),
            ]
        ) == 0
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["events"] > 0
        assert snap["counters"]["gc_count"] > 0
        assert timeline.read_text().strip()


class TestMatrixJson:
    def _run(self, tmp_path, jobs, tag):
        metrics = tmp_path / f"m{tag}.json"
        assert main(
            [
                "matrix", "--workloads", "micro",
                "--detectors", "fasttrack", "pacer",
                "--rates", "10", "--seeds", "2", "--scale", "0.4",
                "--jobs", str(jobs),
                "--metrics-out", str(metrics),
            ]
        ) == 0
        return metrics.read_bytes()

    def test_metrics_out_identical_across_jobs(self, tmp_path, capsys):
        assert self._run(tmp_path, 1, "a") == self._run(tmp_path, 2, "b")

    def test_json_cells(self, tmp_path, capsys):
        assert main(
            [
                "matrix", "--workloads", "micro", "--detectors", "fasttrack",
                "--seeds", "2", "--scale", "0.4", "--json",
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "matrix"
        (cell,) = doc["cells"]
        assert cell["workload"] == "micro"
        assert cell["detector"] == "fasttrack"
        assert cell["rate"] is None
        assert cell["events"] > 0
        assert isinstance(cell["races"], int)
        assert "metrics" in cell and "counters" in cell and "perf" in cell

    def test_matrix_trace_out_validates(self, tmp_path, capsys):
        trace = tmp_path / "matrix.trace.json"
        assert main(
            [
                "matrix", "--workloads", "micro", "--detectors", "fasttrack",
                "--seeds", "2", "--scale", "0.4", "--trace-out", str(trace),
            ]
        ) == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2  # one per trial
