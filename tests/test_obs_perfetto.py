"""Chrome trace-event export: builders, envelope, structural validation."""

import json

from repro.analysis.parallel import TrialTask, run_trial_task
from repro.obs import (
    chrome_trace,
    matrix_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.perfetto import (
    PID_DETECTOR,
    PID_SCHEDULER,
    counter_event,
    instant_event,
    process_metadata,
    span_event,
)


class TestEventBuilders:
    def test_span_has_required_fields(self):
        ev = span_event("work", 10, 5, PID_DETECTOR, 0)
        assert ev["ph"] == "X"
        assert (ev["ts"], ev["dur"]) == (10, 5)

    def test_zero_width_spans_clamped_visible(self):
        assert span_event("blip", 3, 0, PID_DETECTOR, 0)["dur"] == 1

    def test_counter_wraps_value_in_args(self):
        ev = counter_event("races", 100, 7)
        assert ev["ph"] == "C"
        assert ev["args"] == {"value": 7}

    def test_instant_is_thread_scoped(self):
        assert instant_event("gc", 5, PID_DETECTOR)["s"] == "t"

    def test_process_metadata_names_both_processes(self):
        pids = {ev["pid"] for ev in process_metadata()}
        assert pids == {PID_DETECTOR, PID_SCHEDULER}


class TestEnvelope:
    def test_chrome_trace_envelope(self):
        doc = chrome_trace([counter_event("x", 0, 1)])
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_write_chrome_trace_is_deterministic_json(self, tmp_path):
        events = process_metadata() + [span_event("a", 0, 2, PID_DETECTOR, 0)]
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(p1, events)
        write_chrome_trace(p2, events)
        assert p1.read_bytes() == p2.read_bytes()
        assert validate_chrome_trace(json.loads(p1.read_text())) == []


class TestValidation:
    def test_accepts_all_builder_outputs(self):
        events = process_metadata() + [
            span_event("s", 0, 4, PID_DETECTOR, 1),
            counter_event("c", 2, 9),
            instant_event("i", 3, PID_SCHEDULER),
        ]
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_rejects_non_object_document(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"notTraceEvents": []}) != []

    def test_rejects_unknown_phase(self):
        problems = validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        assert any("phase" in p for p in problems)

    def test_rejects_missing_required_fields(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "s"}]}
        )
        assert any("missing" in p for p in problems)

    def test_rejects_negative_timestamps(self):
        ev = span_event("s", 0, 1, PID_DETECTOR, 0)
        ev["ts"] = -5
        problems = validate_chrome_trace({"traceEvents": [ev]})
        assert any("ts" in p for p in problems)

    def test_rejects_non_numeric_counter_values(self):
        ev = counter_event("c", 0, 1)
        ev["args"] = {"value": "NaN-ish"}
        problems = validate_chrome_trace({"traceEvents": [ev]})
        assert any("numeric" in p for p in problems)

    def test_rejects_empty_counter_args(self):
        ev = counter_event("c", 0, 1)
        ev["args"] = {}
        assert validate_chrome_trace({"traceEvents": [ev]}) != []


class TestMatrixTrace:
    def _cells(self):
        tasks = [
            TrialTask("micro", "fasttrack", None, seed, scale=0.5)
            for seed in (0, 1)
        ]
        return [(t, run_trial_task(t)) for t in tasks]

    def test_one_span_per_trial_laid_head_to_tail(self):
        cells = self._cells()
        events = matrix_trace_events(cells)
        spans = [e for e in events if e.get("ph") == "X"]
        assert len(spans) == 2
        # same (workload, detector) -> same track, non-overlapping
        assert spans[0]["tid"] == spans[1]["tid"]
        assert spans[1]["ts"] >= spans[0]["ts"] + spans[0]["dur"]
        assert spans[0]["args"]["seed"] == 0

    def test_matrix_trace_validates(self):
        assert validate_chrome_trace(chrome_trace(matrix_trace_events(self._cells()))) == []
