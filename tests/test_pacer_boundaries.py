"""PACER at sampling-period boundaries and other edge conditions.

These scenarios sit on the seams between the sampled (FASTTRACK) and
non-sampled (discard/fast-path) regimes — historically where the
pseudocode errata live (DESIGN.md errata 6-7) — plus volatile and
workload-scale checks.
"""

from repro import FastTrackDetector, PacerDetector
from repro.analysis import run_trial
from repro.core.sampling import ScriptedController
from repro.sim.runtime import RuntimeConfig
from repro.sim.workloads import PSEUDOJBB, XALAN
from repro.trace.events import (
    acq,
    fork,
    join,
    rd,
    rel,
    sbegin,
    send,
    vol_rd,
    vol_wr,
    wr,
)

X, Y = 1, 2
L, L2 = 100, 101
V, V2 = 200, 201

QUICK = RuntimeConfig(track_memory=False)


class TestPeriodBoundaries:
    def test_race_spanning_many_periods(self):
        events = [fork(0, 1), sbegin(), wr(0, X, site=1), send()]
        for _ in range(10):
            events += [sbegin(), rd(0, Y), send()]
        events += [rd(1, X, site=2)]
        d = PacerDetector()
        d.run(events)
        assert [(r.first_site, r.second_site) for r in d.races] == [(1, 2)]

    def test_second_access_inside_later_period(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(0, X, site=1), send(),
                sbegin(), wr(1, X, site=2), send(),
            ]
        )
        assert [(r.first_site, r.second_site) for r in d.races] == [(1, 2)]

    def test_metadata_created_in_one_period_updated_in_next(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), rd(0, X, site=1), send(),
                sbegin(), rd(1, X, site=2), send(),  # inflates the map
                wr(0, X, site=3),
            ]
        )
        # t1's sampled read races t0's unsampled write; t0's own read does not
        assert {(r.first_site, r.second_site) for r in d.races} == {(2, 3)}

    def test_empty_sampling_period_harmless(self):
        trace = [fork(0, 1), sbegin(), send(), wr(0, X, 1), wr(1, X, 2)]
        d = PacerDetector()
        d.run(trace)
        assert d.races == []  # nothing was sampled
        assert d.tracked_variables == 0

    def test_sampling_to_the_end_of_trace(self):
        d = PacerDetector()
        d.run([fork(0, 1), sbegin(), wr(0, X, 1), wr(1, X, 2)])
        assert len(d.races) == 1

    def test_lock_protected_sampled_accesses_never_reported(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(),
                acq(0, L), wr(0, X, 1), rel(0, L),
                send(),
                acq(1, L), rd(1, X, 2), rel(1, L),
                sbegin(),
                acq(1, L), wr(1, X, 3), rel(1, L),
                send(),
            ]
        )
        assert d.races == []


class TestVolatileBoundaries:
    def test_volatile_edge_across_period_boundary(self):
        # the HB edge through a volatile written while sampling and read
        # while not sampling must still order the accesses
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(0, X, 1), vol_wr(0, V), send(),
                vol_rd(1, V),
                rd(1, X, 2),
            ]
        )
        assert d.races == []

    def test_concurrent_volatile_writers_then_reader(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1), fork(0, 2),
                sbegin(),
                wr(0, X, 1), vol_wr(0, V),
                wr(1, Y, 2), vol_wr(1, V),  # concurrent: vepoch -> TOP
                send(),
                vol_rd(2, V),
                rd(2, X, 3), rd(2, Y, 4),
            ]
        )
        assert d.races == []

    def test_two_volatiles_do_not_alias(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(0, X, 1), vol_wr(0, V), send(),
                vol_rd(1, V2),  # wrong volatile: no edge
                rd(1, X, 2),
            ]
        )
        assert [(r.first_site, r.second_site) for r in d.races] == [(1, 2)]


class TestWorkloadScaleEquivalence:
    def test_pacer_full_equals_fasttrack_on_workload(self):
        # (the runtime feeds PACER one extra sbegin event, so absolute
        # event indices shift by one; compare the index-free signature)
        def sig(races):
            return [
                (r.var, r.kind, r.first_tid, r.first_site, r.second_tid, r.second_site)
                for r in races
            ]

        for name, spec in (("pseudojbb", PSEUDOJBB), ("xalan", XALAN)):
            ft = run_trial(spec.scaled(0.3), FastTrackDetector(), 5, config=QUICK)
            pacer = run_trial(
                spec.scaled(0.3),
                PacerDetector(),
                5,
                controller=ScriptedController([True] * 100_000),
                config=QUICK,
            )
            assert sig(pacer.detector.races) == sig(ft.detector.races)

    def test_pacer_zero_tracks_nothing_on_workload(self):
        result = run_trial(XALAN.scaled(0.3), PacerDetector(), 3, config=QUICK)
        detector = result.detector
        assert detector.races == []
        assert detector.tracked_variables == 0
        assert detector.counters.increments == 0
        assert detector.counters.copies_deep_nonsampling == 0


class TestThreadLifecycleEdges:
    def test_fork_during_sampling(self):
        d = PacerDetector()
        d.run(
            [
                sbegin(),
                wr(0, X, 1),
                fork(0, 1),
                rd(1, X, 2),  # ordered by the fork edge
                send(),
            ]
        )
        assert d.races == []

    def test_fork_outside_sampling_child_races_later(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(1, X, 1), send(),
                fork(0, 2),
                wr(2, X, 2),  # concurrent with t1's sampled write
            ]
        )
        assert ("ww", 1, 2) in {(r.kind, r.first_site, r.second_site) for r in d.races}

    def test_join_then_new_period(self):
        d = PacerDetector()
        d.run(
            [
                fork(0, 1),
                sbegin(), wr(1, X, 1), send(),
                join(0, 1),
                sbegin(), wr(0, X, 2), send(),  # ordered via the join
            ]
        )
        assert d.races == []
