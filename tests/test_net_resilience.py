"""Service resilience end-to-end: chaos, self-healing, overload, drain.

The four resilience layers, each pinned against the differential-parity
invariant (streamed detection ≡ offline analyze, byte-identical):

* **Wire chaos** — a :class:`~repro.net.chaos.ChaosProxy` between a
  :class:`~repro.net.ResilientClient` and the server injects dropped
  connections, corrupted/truncated frames, duplicates, and delays from
  a seeded fault plan; zero chunks may be lost and the merged report
  must equal the uncontended offline run on every state backend.
* **Self-healing client** — reconnect-with-resume is automatic, the
  backoff schedule is seeded (replayable), ``close()``/``drain()`` are
  exception-safe and idempotent on a dead socket.
* **Overload protection** — per-session spool quotas evict (durably —
  progress survives), the aggregate memory watermark throttles credits
  and answers new sessions BUSY, the sweeper sheds slow clients; every
  refusal is a *named* wire error carrying ``retry_after``.
* **Graceful drain/restart** — ``drain()`` stops accepting, flushes
  spools plus a session manifest, flips ``/healthz`` to 503; a server
  restarted on the same spool directory re-adopts every session and a
  resuming client finishes with a byte-identical report.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import DETECTORS
from repro.core.backend import BACKENDS as AVAILABLE_BACKENDS
from repro.net import (
    ChaosProxy,
    ResilientClient,
    ServerConfig,
    TelemetryClient,
    TelemetryServer,
)
from repro.net.chaos import wire_plan
from repro.net.protocol import (
    FrameDecoder,
    Hello,
    HelloAck,
    ProtocolError,
    ServerBusy,
    SessionEvicted,
    decode_message,
    encode_message,
)
from repro.obs import RunObserver, SyncIndex
from repro.obs.provenance import DEFAULT_WINDOW, FlightRecorder
from repro.obs.reports import build_report
from repro.trace.generator import GeneratorConfig, random_trace

BACKENDS = list(AVAILABLE_BACKENDS)

TRACE = random_trace(
    GeneratorConfig(length=600, sampling_period_prob=0.05, seed=0)
)
EVENTS = list(TRACE.events)

#: the CI soak plan: every wire fault kind, seed-selected, bounded so
#: the stream always terminates once the budgets are spent
CHAOS_PLAN = (
    "conn_drop@seed%17=3*3;frame_corrupt@seed%19=5*3;"
    "frame_truncate@seed%23=7*2;dup@seed%13=2*4;delay@seed%11=1*5"
)
CHAOS_SEED = 7


def offline_report(detector_name: str, backend: str):
    """The ``repro analyze --report-out`` pipeline, inline."""
    det = DETECTORS[detector_name](backend=backend)
    obs = RunObserver(recorder=FlightRecorder(window=DEFAULT_WINDOW))
    obs.attach(det)
    det.run(EVENTS)
    obs.finalize(det)
    doc = build_report(
        det.races, source="analyze", detector=det.name,
        backend=det.backend_name, rate=None, events=det.perf.events,
        contexts=obs.race_contexts, sync=SyncIndex.from_trace(TRACE),
        site_name=None,
    )
    return doc, det.counters.snapshot()


def canonical(report_doc: dict) -> str:
    doc = dict(report_doc)
    doc.pop("source")
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def short_unix_address(name: str = "t.sock") -> str:
    """A unix:// address short enough for sockaddr_un."""
    return f"unix://{tempfile.mkdtemp(prefix='repro-net-')}/{name}"


class Conn:
    """A hand-driven protocol connection (TCP or Unix)."""

    def __init__(self, address: str):
        from repro.net.client import parse_address

        kind, target = parse_address(address)
        if kind == "tcp":
            self.sock = socket.create_connection(target, timeout=10.0)
        else:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.settimeout(10.0)
            self.sock.connect(target)
        self.decoder = FrameDecoder()
        self.frames = []

    def send(self, msg) -> None:
        self.sock.sendall(encode_message(msg))

    def recv_msg(self):
        while not self.frames:
            data = self.sock.recv(65536)
            assert data, "server closed without a reply"
            self.frames.extend(self.decoder.feed(data))
        return decode_message(self.frames.pop(0))

    def close(self) -> None:
        self.sock.close()


# -- wire chaos ---------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_chaos_soak_zero_lost_chunks_byte_identical(backend):
    """Sustained wire faults lose nothing and change nothing."""
    off_doc, off_counters = offline_report("fasttrack", backend)
    config = ServerConfig(
        n_shards=2, shard_mode="inline", busy_retry_after=0.01
    )
    with TelemetryServer(config) as server:
        with ChaosProxy(
            "tcp://127.0.0.1:0", server.address,
            plan=CHAOS_PLAN, seed=CHAOS_SEED,
        ) as proxy:
            client = ResilientClient(
                proxy.address, "chaos", detector="fasttrack",
                backend=backend, chunk_size=37, retries=12,
                backoff_base=0.01, backoff_max=0.2,
            )
            client.connect()
            client.send_events(EVENTS)
            summary = client.close()
            # the chaos actually happened, including link-severing kinds
            assert proxy.fired() > 0
            severed = (
                proxy.stats["conn_drop"] + proxy.stats["frame_corrupt"]
                + proxy.stats["frame_truncate"]
            )
            assert severed > 0
            assert client.retry_count > 0
        sdoc = server.session_doc("chaos")
        retries_metric = server.metrics.counter("net_retries_total").value
    assert summary["events"] == len(EVENTS)  # zero lost chunks
    assert canonical(sdoc["report"]) == canonical(off_doc)
    assert sdoc["counters"] == off_counters
    # the server mined the client's reconnect instants into telemetry
    assert retries_metric >= 1


def test_chaos_plan_is_replayable():
    """The fault decision is a pure function of (plan, seed, position).

    Live runs can't pin whole-run stats (how many frames each
    connection carries depends on thread scheduling), but for any given
    frame *position* the decision must be identical on every run — that
    is what makes a CI failure reproducible from its plan + seed alone.
    """
    from repro.net.chaos import _frame_seed

    def schedule():
        proxy = ChaosProxy(
            "tcp://127.0.0.1:0", "tcp://127.0.0.1:1",
            plan=CHAOS_PLAN, seed=CHAOS_SEED,
        )  # never started: _match needs no sockets
        fired = []
        for conn in range(4):
            for frame in range(40):
                rule = proxy._match(
                    frame, _frame_seed(CHAOS_SEED, conn, frame)
                )
                fired.append(rule.kind if rule else None)
        return fired

    first, second = schedule(), schedule()
    assert first == second
    kinds = {kind for kind in first if kind}
    # every wire kind in the plan fires somewhere in this window, and
    # each respects its *times* budget across the whole schedule
    assert kinds == {"conn_drop", "frame_corrupt", "frame_truncate",
                     "dup", "delay"}
    assert first.count("conn_drop") == 3
    assert first.count("frame_truncate") == 2


def test_transparent_proxy_is_invisible():
    """No plan -> the proxy must not perturb parity at all."""
    off_doc, _ = offline_report("fasttrack", "object")
    with TelemetryServer(ServerConfig(n_shards=1, shard_mode="inline")) as server:
        with ChaosProxy("tcp://127.0.0.1:0", server.address) as proxy:
            client = TelemetryClient(
                proxy.address, "clear", backend="object", chunk_size=37
            )
            client.connect()
            client.send_events(EVENTS)
            summary = client.close()
            assert proxy.fired() == 0
            assert proxy.stats["frames"] > 0
        sdoc = server.session_doc("clear")
    assert summary["events"] == len(EVENTS)
    assert canonical(sdoc["report"]) == canonical(off_doc)


# -- self-healing client ------------------------------------------------------


def test_backoff_is_seeded_and_replayable(monkeypatch):
    delays = []
    monkeypatch.setattr(time, "sleep", lambda s: delays.append(s))
    schedules = []
    for _ in range(2):
        delays.clear()
        rc = ResilientClient("tcp://127.0.0.1:1", "sess", seed=1234)
        for attempt in range(5):
            rc._backoff(attempt, None)
        schedules.append(list(delays))
        assert rc.backoff_seconds == pytest.approx(sum(delays))
    assert schedules[0] == schedules[1]
    # exponential shape: later attempts never back off less than half
    # the cap would allow at attempt 0
    assert schedules[0][4] > schedules[0][0]


def test_backoff_honors_server_retry_after(monkeypatch):
    delays = []
    monkeypatch.setattr(time, "sleep", lambda s: delays.append(s))
    rc = ResilientClient("tcp://127.0.0.1:1", "sess", seed=1)
    exc = ServerBusy("busy")
    exc.retry_after = 7.5
    rc._backoff(0, exc)
    assert delays == [7.5]  # the advised quiet floors the tiny base delay


def test_close_and_drain_are_exception_safe_on_dead_socket():
    """Satellite regression: a dead socket never raises out of close()."""
    config = ServerConfig(n_shards=1, shard_mode="inline")
    with TelemetryServer(config) as server:
        client = TelemetryClient(server.address, "deadsock", chunk_size=37)
        client.connect()
        client.send_events(EVENTS[:200])
        assert client.unacked  # chunks sent, credits not yet pumped
        # the transport dies under the client without its knowledge
        client._sock.close()
        summary = client.close()  # must not raise
        assert summary == {}
        assert isinstance(client.close_error, (OSError, ProtocolError))
        # idempotent: a second close is a quiet no-op
        assert client.close() == {}
        # drain() with unacked chunks and no socket names the remedy
        client2 = TelemetryClient(server.address, "deadsock2", chunk_size=37)
        client2.connect()
        client2.send_events(EVENTS[:200])
        assert client2.unacked
        client2.abort()
        with pytest.raises(ProtocolError, match="resume"):
            client2.drain()
        # ...and the remedy works: resume, drain, close, full summary
        client2.reconnect()
        client2.drain()
        assert not client2.unacked
        client2.send_events(EVENTS[200:])
        summary2 = client2.close()
        assert summary2["events"] == len(EVENTS)


def test_resilient_close_completes_handshake_after_wire_death():
    """The resilient close() re-resumes until the summary arrives."""
    config = ServerConfig(n_shards=1, shard_mode="inline")
    with TelemetryServer(config) as server:
        rc = ResilientClient(
            server.address, "healclose", chunk_size=37,
            backoff_base=0.001, backoff_max=0.01,
        )
        rc.connect()
        rc.send_events(EVENTS)
        rc.client._sock.close()  # wire dies right before CLOSE
        summary = rc.close()
        assert summary["events"] == len(EVENTS)
        assert rc.retry_count >= 1
        assert rc.close() == summary  # idempotent


def test_monitor_defaults_to_resilient_client():
    from repro.net.client import TelemetryMonitor

    config = ServerConfig(n_shards=1, shard_mode="inline")
    with TelemetryServer(config) as server:
        tm = TelemetryMonitor(server.address, "mon-resilient")
        assert isinstance(tm.client, ResilientClient)
        counter = tm.shared("counter", 0)
        t = tm.thread(lambda: counter.set(counter.get() + 1))
        t.start()
        t.join()
        summary = tm.close()
        assert summary["events"] > 0


# -- overload protection ------------------------------------------------------


def test_spool_quota_evicts_with_named_error_and_retry_after():
    config = ServerConfig(
        n_shards=1, shard_mode="inline",
        spool_quota_bytes=1, busy_retry_after=0.25,
    )
    with TelemetryServer(config) as server:
        client = TelemetryClient(server.address, "piggy", chunk_size=37)
        client.connect()
        with pytest.raises(SessionEvicted) as excinfo:
            # chunk 1 is applied+acked then trips the quota; chunk 2 is
            # still unacked, so drain() must pump into the ERROR frame
            client.send_events(EVENTS[:74])
            client.drain()
        assert excinfo.value.retry_after == 0.25
        assert excinfo.value.code == "evicted"
        # shed, not lost: the applied chunk was acked before eviction
        # and the session resumes exactly past it
        ack = client.reconnect()
        assert ack.resume_seq >= 1
        assert server.metrics.counter("net_shed_sessions").value >= 1


def test_resilient_client_completes_despite_quota_evictions():
    """Evict-per-chunk is the worst case: one chunk of progress per
    connection — the self-healing client still finishes, losslessly."""
    off_doc, off_counters = offline_report("fasttrack", "object")
    config = ServerConfig(
        n_shards=1, shard_mode="inline",
        spool_quota_bytes=1, busy_retry_after=0.01,
    )
    with TelemetryServer(config) as server:
        rc = ResilientClient(
            server.address, "evicted-often", backend="object",
            chunk_size=37, retries=6, backoff_base=0.005, backoff_max=0.05,
        )
        rc.connect()
        rc.send_events(EVENTS)
        summary = rc.close()
        assert rc.retry_count > 0
        sdoc = server.session_doc("evicted-often")
    assert summary["events"] == len(EVENTS)
    assert canonical(sdoc["report"]) == canonical(off_doc)
    assert sdoc["counters"] == off_counters


def test_memory_watermark_throttles_credits_and_sheds_new_sessions():
    config = ServerConfig(
        n_shards=1, shard_mode="inline",
        memory_watermark_bytes=1, throttle_delay=0.001,
        busy_retry_after=0.05,
    )
    with TelemetryServer(config) as server:
        client = TelemetryClient(server.address, "heavy", chunk_size=37)
        client.connect()
        client.send_events(EVENTS)
        summary = client.close()
        assert summary["events"] == len(EVENTS)  # existing sessions finish
        assert server.metrics.counter("net_throttled_credits").value > 0
        # ...but new sessions are refused with BUSY + retry advice
        late = TelemetryClient(server.address, "latecomer")
        with pytest.raises(ServerBusy) as excinfo:
            late.connect()
        assert excinfo.value.retry_after == 0.05
        # the resilient client treats BUSY as transient and spends its
        # budget before surfacing the same named error
        rc = ResilientClient(
            server.address, "patient", retries=2,
            backoff_base=0.001, backoff_max=0.01,
        )
        with pytest.raises(ServerBusy):
            rc.connect()
        assert rc.retry_count == 2
        doc = server.query_doc()
        assert doc["server"]["resilience"]["shed_sessions"] >= 3
        assert doc["server"]["resilience"]["throttled_credits"] > 0


def test_slow_client_sweeper_evicts_idle_connection():
    config = ServerConfig(
        n_shards=1, shard_mode="inline",
        slow_client_timeout=0.3, busy_retry_after=0.1,
    )
    with TelemetryServer(config) as server:
        conn = Conn(server.address)
        conn.send(Hello(session="sloth"))
        ack = conn.recv_msg()
        assert isinstance(ack, HelloAck)
        # go quiet: the sweeper (accept-loop idle tick) sheds the socket
        err = conn.recv_msg()
        assert err.error_code == "evicted"
        assert err.retry_after == 0.1
        assert "slow-client" in err.detail
        conn.close()
        # the session survives eviction: a resume is welcomed
        conn2 = Conn(server.address)
        conn2.send(Hello(session="sloth", resume=True))
        ack2 = conn2.recv_msg()
        assert isinstance(ack2, HelloAck)
        conn2.close()


# -- graceful drain / restart -------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_drain_restart_resume_byte_identical(backend):
    """The acceptance pin: drain -> restart -> resume ≡ uninterrupted."""
    off_doc, off_counters = offline_report("fasttrack", backend)
    workdir = tempfile.mkdtemp(prefix="repro-net-")
    spool = os.path.join(workdir, "spool")
    address = f"unix://{workdir}/t.sock"

    def config():
        return ServerConfig(
            address=address, n_shards=2, shard_mode="inline",
            spool_dir=spool, drain_timeout=2.0,
        )

    server = TelemetryServer(config()).start()
    client = TelemetryClient(
        address, "drainy", detector="fasttrack", backend=backend,
        chunk_size=37,
    )
    client.connect()
    half = len(EVENTS) // 2
    client.send_events(EVENTS[:half])
    client.abort()  # dirty disconnect, unacked chunks kept client-side
    drained = server.drain()
    assert drained["lifecycle"] == "drained"
    assert drained["drained"] == 1
    assert server.lifecycle == "drained"
    assert os.path.exists(os.path.join(spool, "sessions.json"))
    server.stop()

    server2 = TelemetryServer(config()).start()
    assert server2.adopted_sessions == 1
    ack = client.reconnect()  # same address: the restarted instance
    assert ack.resume_seq >= 1
    client.send_events(EVENTS[half:])
    summary = client.close()
    sdoc = server2.session_doc("drainy")
    resilience = server2.query_doc()["server"]["resilience"]
    server2.stop()

    assert summary["events"] == len(EVENTS)  # nothing lost across restart
    assert canonical(sdoc["report"]) == canonical(off_doc)
    assert sdoc["counters"] == off_counters
    assert resilience["adopted_sessions"] == 1


def test_drain_is_idempotent_and_observable():
    config = ServerConfig(
        n_shards=1, shard_mode="inline", http="127.0.0.1:0",
    )
    with TelemetryServer(config) as server:
        url = f"http://{server.http_address}"
        assert urllib.request.urlopen(url + "/healthz").read() == b"ok\n"
        status = json.loads(urllib.request.urlopen(url + "/status").read())
        assert status["server"]["lifecycle"] == "serving"
        first = server.drain(timeout=0.5)
        assert first["lifecycle"] == "drained"
        assert server.metrics.gauge("net_drain_seconds").value > 0
        again = server.drain()
        assert again == {"lifecycle": "drained", "drained": 0, "evicted": 0}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url + "/healthz")
        assert excinfo.value.code == 503
        assert excinfo.value.read() == b"drained\n"
        status = json.loads(urllib.request.urlopen(url + "/status").read())
        assert status["server"]["lifecycle"] == "drained"


def test_healthz_answers_503_while_draining():
    config = ServerConfig(
        n_shards=1, shard_mode="inline", http="127.0.0.1:0",
        drain_timeout=5.0,
    )
    with TelemetryServer(config) as server:
        url = f"http://{server.http_address}"
        client = TelemetryClient(server.address, "lingerer", chunk_size=37)
        client.connect()
        client.send_events(EVENTS[:100])
        result = {}
        drainer = threading.Thread(
            target=lambda: result.update(server.drain(timeout=5.0))
        )
        drainer.start()
        deadline = time.monotonic() + 5.0
        while server.lifecycle != "draining":
            assert time.monotonic() < deadline, "drain never started"
            time.sleep(0.01)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url + "/healthz")
        assert excinfo.value.code == 503
        assert excinfo.value.read() == b"draining\n"
        # the attached session finishes cleanly inside the window
        summary = client.close()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive()
        assert result["evicted"] == 0
        assert summary["events"] == 100


def test_drain_evicts_stragglers_with_named_error():
    config = ServerConfig(
        n_shards=1, shard_mode="inline", busy_retry_after=0.25,
    )
    with TelemetryServer(config) as server:
        conn = Conn(server.address)
        conn.send(Hello(session="straggler"))
        ack = conn.recv_msg()
        assert isinstance(ack, HelloAck)
        drained = server.drain(timeout=0.2)
        assert drained["evicted"] == 1
        err = conn.recv_msg()
        assert err.error_code == "evicted"
        assert err.retry_after == 0.25
        assert "draining" in err.detail
        conn.close()
