"""Pytest configuration: make tests/ importable for shared helpers."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
