"""Structured race reports: schema, merging, rendering, flow events."""

import json

import pytest

from repro.detectors.base import Race
from repro.detectors.fasttrack import FastTrackDetector
from repro.obs.perfetto import (
    PID_RACES,
    chrome_trace,
    race_flow_events,
    validate_chrome_trace,
)
from repro.obs.provenance import FlightRecorder, SyncIndex
from repro.obs.reports import (
    REPORT_SCHEMA,
    build_report,
    merge_reports,
    render_report_markdown,
    render_report_table,
    report_from_sigs,
    validate_report,
    write_report,
)
from repro.trace.events import fork, wr


def make_race(**kw):
    defaults = dict(
        var=7,
        kind="ww",
        first_tid=0,
        first_clock=1,
        first_site=11,
        second_tid=1,
        second_site=22,
        index=5,
        first_index=2,
    )
    defaults.update(kw)
    return Race(**defaults)


def sample_races():
    return [
        make_race(index=5, first_index=2),
        make_race(index=9, first_index=2, kind="wr", second_tid=2),
        make_race(first_site=1, second_site=2, var=8, index=3, first_index=1),
    ]


class TestBuildReport:
    def test_groups_by_site_pair(self):
        doc = build_report(sample_races(), source="test", detector="ft", events=100)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["dynamic_races"] == 3
        assert doc["distinct_races"] == 2
        # groups sorted by site pair: (1, 2) before (11, 22)
        assert [(g["first_site"], g["second_site"]) for g in doc["races"]] == [
            (1, 2),
            (11, 22),
        ]
        g = doc["races"][1]
        assert g["count"] == 2
        assert g["kinds"] == ["ww", "wr"] or g["kinds"] == sorted(["ww", "wr"])
        assert g["first_vt"] == 5 and g["last_vt"] == 9
        assert g["second_tids"] == [1, 2]

    def test_string_sites_sort_after_ints(self):
        races = [
            make_race(first_site="z.py:1", second_site="a.py:2"),
            make_race(first_site=50, second_site=60),
        ]
        doc = build_report(races, source="test")
        assert doc["races"][0]["first_site"] == 50
        assert doc["races"][1]["first_site"] == "z.py:1"

    def test_site_names_resolved(self):
        doc = build_report(
            sample_races(), source="test", site_name=lambda s: f"name<{s}>"
        )
        assert doc["races"][0]["first_site_name"] == "name<1>"

    def test_witness_and_context_attached_to_representative(self):
        trace = [fork(0, 1), wr(0, 5, 11), wr(1, 5, 22)]
        detector = FastTrackDetector()
        recorder = FlightRecorder()
        for index, event in enumerate(trace):
            recorder.record(index, event.kind, event.tid, event.target, event.site)
        detector.run(trace)
        contexts = [recorder.capture(r) for r in detector.races]
        doc = build_report(
            detector.races,
            source="test",
            sync=SyncIndex.from_trace(trace),
            contexts=contexts,
        )
        g = doc["races"][0]
        assert g["witness"]["verdict"] == "no-release"
        assert g["context"]["second"]["events"]
        assert validate_report(doc) == []

    def test_empty_report_is_valid(self):
        doc = build_report([], source="test")
        assert doc["dynamic_races"] == 0 and doc["races"] == []
        assert validate_report(doc) == []


class TestValidateReport:
    def good(self):
        return build_report(sample_races(), source="test", detector="ft", events=9)

    def test_good_report_has_no_problems(self):
        assert validate_report(self.good()) == []

    def test_wrong_schema_flagged(self):
        doc = self.good()
        doc["schema"] = "nope/v0"
        assert any("schema" in p for p in validate_report(doc))

    def test_count_mismatch_flagged(self):
        doc = self.good()
        doc["races"][0]["count"] += 1
        assert any("dynamic_races" in p for p in validate_report(doc))

    def test_bad_kind_flagged(self):
        doc = self.good()
        doc["races"][0]["kinds"] = ["zz"]
        assert any("kinds" in p for p in validate_report(doc))

    def test_bad_witness_verdict_flagged(self):
        doc = self.good()
        doc["races"][0]["witness"] = {"verdict": "maybe", "summary": "?"}
        assert any("verdict" in p for p in validate_report(doc))

    def test_non_dict_rejected(self):
        assert validate_report([]) != []


class TestReportFromSigs:
    def test_matches_build_report(self):
        races = sample_races()
        sigs = [
            (r.index, r.first_index, r.var, r.kind, r.first_tid, r.first_site,
             r.second_tid, r.second_site)
            for r in races
        ]
        via_sigs = report_from_sigs(sigs, source="t", detector="ft", events=4)
        direct = build_report(races, source="t", detector="ft", events=4)
        assert json.dumps(via_sigs, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )


class TestMergeReports:
    def test_counts_sum_and_bounds_stretch(self):
        a = build_report(
            [make_race(index=5)], source="t", detector="ft", backend="object", events=10
        )
        b = build_report(
            [make_race(index=50), make_race(index=2, first_index=0)],
            source="t",
            detector="ft",
            backend="object",
            events=20,
        )
        merged = merge_reports([a, b])
        assert merged["events"] == 30
        assert merged["dynamic_races"] == 3
        assert merged["distinct_races"] == 1
        g = merged["races"][0]
        assert g["count"] == 3
        assert g["first_vt"] == 2 and g["last_vt"] == 50
        assert merged["detector"] == "ft"
        assert merged["backend"] == "object"
        assert validate_report(merged) == []

    def test_conflicting_labels_collapse_to_star(self):
        a = build_report([], source="t", backend="object")
        b = build_report([], source="t", backend="packed")
        assert merge_reports([a, b])["backend"] == "*"

    def test_merge_of_nothing(self):
        doc = merge_reports([])
        assert doc["dynamic_races"] == 0
        assert validate_report(doc) == []


class TestRendering:
    def test_table_lists_sites_and_verdicts(self):
        trace = [fork(0, 1), wr(0, 5, 11), wr(1, 5, 22)]
        detector = FastTrackDetector()
        detector.run(trace)
        doc = build_report(
            detector.races,
            source="test",
            detector="fasttrack",
            sync=SyncIndex.from_trace(trace),
            site_name=lambda s: f"src.py:{s}",
        )
        text = render_report_table(doc)
        assert "src.py:11" in text and "src.py:22" in text
        assert "no-release" in text
        assert "1 dynamic race reports" in text

    def test_table_without_races(self):
        assert "(no races reported)" in render_report_table(
            build_report([], source="t")
        )

    def test_markdown_sections(self):
        doc = build_report(
            sample_races(),
            source="test",
            detector="fasttrack",
            discarded=[
                {
                    "kind": "ww",
                    "var": 3,
                    "first_vt": 1,
                    "second_vt": 2,
                    "reason": "first access fell outside every sampling period",
                }
            ],
        )
        text = render_report_markdown(doc)
        assert text.startswith("# Race report")
        assert "## Race 1:" in text
        assert "Discarded shortest races" in text
        assert "outside every sampling period" in text

    def test_write_report_deterministic_json(self, tmp_path):
        doc = build_report(sample_races(), source="test")
        path = tmp_path / "r.json"
        write_report(path, doc)
        raw = path.read_text()
        assert raw.endswith("\n")
        loaded = json.loads(raw)
        assert loaded["schema"] == REPORT_SCHEMA
        # sorted keys => round-trip dump is identical
        assert raw == json.dumps(loaded, indent=2, sort_keys=True) + "\n"

    def test_write_report_rejects_invalid(self, tmp_path):
        doc = build_report(sample_races(), source="test")
        doc["races"][0]["count"] = 0
        with pytest.raises(ValueError):
            write_report(tmp_path / "bad.json", doc)


class TestRaceFlowEvents:
    def test_flow_pairs_link_the_accesses(self):
        races = [make_race(index=50, first_index=20)]
        events = race_flow_events(races)
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(finishes) == 1
        s, f = starts[0], finishes[0]
        assert s["id"] == f["id"]
        assert (s["ts"], s["tid"]) == (20, 0)
        assert (f["ts"], f["tid"]) == (50, 1)
        assert f["bp"] == "e"
        assert all(e["pid"] == PID_RACES for e in (s, f))
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_unknown_first_index_skipped(self):
        events = race_flow_events([make_race(index=5, first_index=-1)])
        assert [e for e in events if e.get("ph") in ("s", "f")] == []

    def test_limit_bounds_output(self):
        races = [make_race(index=10 + i, first_index=i) for i in range(20)]
        events = race_flow_events(races, limit=3)
        assert len([e for e in events if e.get("ph") == "s"]) == 3

    def test_site_names_in_span_names(self):
        events = race_flow_events(
            [make_race()], site_name=lambda s: f"loc{s}"
        )
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans and all("loc11" in e["name"] for e in spans)
