"""Trace container and Appendix A feasibility validation."""

import pytest

from repro.trace.events import Event, acq, fork, join, rd, rel, sbegin, send, vol_wr, wr
from repro.trace.trace import Trace, TraceError


class TestTraceBasics:
    def test_len_iter_getitem(self):
        t = Trace([wr(0, 1), rd(0, 1)])
        assert len(t) == 2
        assert list(t)[0].kind == "wr"
        assert t[1].kind == "rd"

    def test_summary_sets(self):
        t = Trace(
            [fork(0, 1), acq(1, 9), wr(1, 5), rel(1, 9), vol_wr(0, 77), join(0, 1)]
        )
        assert t.threads == {0, 1}
        assert t.variables == {5}
        assert t.locks == {9}
        assert t.volatiles == {77}
        assert t.n_sync_ops == 5
        assert t.n_accesses == 1

    def test_count(self):
        t = Trace([wr(0, 1), wr(0, 2), rd(0, 1)])
        assert t.count("wr") == 2

    def test_of_constructor_validates(self):
        with pytest.raises(TraceError):
            Trace.of(rel(0, 5))


class TestLockRules:
    def test_acquire_held_lock_rejected(self):
        with pytest.raises(TraceError, match="already held"):
            Trace([fork(0, 1), acq(0, 5), acq(1, 5)]).validate()

    def test_release_unheld_lock_rejected(self):
        with pytest.raises(TraceError, match="does not hold"):
            Trace([rel(0, 5)]).validate()

    def test_release_other_threads_lock_rejected(self):
        with pytest.raises(TraceError):
            Trace([fork(0, 1), acq(0, 5), rel(1, 5)]).validate()

    def test_reentrant_locking_allowed(self):
        Trace([acq(0, 5), acq(0, 5), rel(0, 5), rel(0, 5)]).validate()

    def test_reacquire_after_release_allowed(self):
        Trace([fork(0, 1), acq(0, 5), rel(0, 5), acq(1, 5), rel(1, 5)]).validate()


class TestForkJoinRules:
    def test_fork_self_rejected(self):
        with pytest.raises(TraceError):
            Trace([fork(0, 0)]).validate()

    def test_double_fork_rejected(self):
        with pytest.raises(TraceError, match="forked twice"):
            Trace([fork(0, 1), fork(0, 1)]).validate()

    def test_act_before_fork_rejected(self):
        with pytest.raises(TraceError, match="acted before"):
            Trace([wr(1, 5), fork(0, 1)]).validate()

    def test_act_after_join_rejected(self):
        with pytest.raises(TraceError, match="after being joined"):
            Trace([fork(0, 1), join(0, 1), wr(1, 5)]).validate()

    def test_join_twice_rejected(self):
        with pytest.raises(TraceError, match="joined twice"):
            Trace([fork(0, 1), join(0, 1), join(0, 1)]).validate()

    def test_join_self_rejected(self):
        with pytest.raises(TraceError):
            Trace([join(0, 0)]).validate()

    def test_root_threads_may_act_freely(self):
        Trace([wr(0, 1), wr(3, 1)]).validate()  # roots never forked


class TestSamplingMarkers:
    def test_alternation_ok(self):
        Trace([sbegin(), wr(0, 1), send(), sbegin(), send()]).validate()

    def test_nested_sbegin_rejected(self):
        with pytest.raises(TraceError):
            Trace([sbegin(), sbegin()]).validate()

    def test_dangling_send_rejected(self):
        with pytest.raises(TraceError):
            Trace([send()]).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError):
            Trace([Event("zap", 0, 0, 0)]).validate()

    def test_negative_tid_rejected_for_thread_actions(self):
        with pytest.raises(TraceError):
            Trace([Event("wr", -1, 0, 0)]).validate()

    def test_error_carries_index(self):
        try:
            Trace([wr(0, 1), rel(0, 5)]).validate()
        except TraceError as e:
            assert e.index == 1
        else:  # pragma: no cover
            pytest.fail("expected TraceError")


class TestConstructors:
    def test_from_iterable(self):
        from repro.trace.trace import Trace

        trace = Trace.from_iterable(iter([wr(0, 1), rd(0, 1)]))
        assert len(trace) == 2

    def test_from_iterable_validates(self):
        from repro.trace.trace import Trace

        with pytest.raises(TraceError):
            Trace.from_iterable([rel(0, 5)])
        # validation can be skipped for intentionally infeasible traces
        assert len(Trace.from_iterable([rel(0, 5)], validate=False)) == 1
