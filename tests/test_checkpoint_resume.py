"""Checkpoint journal + deterministic resume.

The core claim: an interrupted matrix campaign, resumed from its
journal, produces merged metrics and a merged race report *byte
identical* to a single uninterrupted run — on either state backend.
Plus the journal's own integrity story: per-record CRCs, torn-tail
tolerance, and fingerprint binding to the exact task matrix.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatch,
    matrix_fingerprint,
    stats_from_doc,
    stats_to_doc,
)
from repro.analysis.parallel import (
    expand_matrix,
    matrix_report,
    merge_matrix,
    run_trial_task,
)
from repro.analysis.supervisor import SupervisorConfig, run_supervised
from repro.cli import _write_matrix_metrics
from repro.obs.reports import write_report

SCALE = 0.25


def _tasks(backend=None):
    return expand_matrix(
        workloads=["micro"],
        detectors=["fasttrack", "pacer"],
        rates=[0.05],
        seeds=range(2),
        scale=SCALE,
        backend=backend,
    )


TASKS = _tasks()


@pytest.fixture(scope="module")
def clean_results():
    return [run_trial_task(task) for task in TASKS]


class TestStatsRoundTrip:
    def test_json_round_trip_is_exact(self, clean_results):
        for stats in clean_results:
            doc = json.loads(json.dumps(stats_to_doc(stats)))
            again = stats_from_doc(doc)
            assert again == stats
            assert again.race_sigs == stats.race_sigs
            assert again.distinct_keys == stats.distinct_keys
            assert again.counters == stats.counters
            assert again.metrics == stats.metrics
            assert again.effective_rate == stats.effective_rate

    def test_string_sites_survive(self, clean_results):
        """Live-monitor sites are file:line strings; tuples restore."""
        from dataclasses import replace

        stats = replace(
            clean_results[0],
            race_sigs=((5, 1, "obj.x", "ww", 0, "a.py:3", 1, "b.py:9"),),
            distinct_keys=(("a.py:3", "b.py:9"),),
        )
        again = stats_from_doc(json.loads(json.dumps(stats_to_doc(stats))))
        assert again.race_sigs == stats.race_sigs
        assert again.distinct_keys == stats.distinct_keys


class TestFingerprint:
    def test_sensitive_to_every_axis(self):
        base = matrix_fingerprint(TASKS)
        assert base == matrix_fingerprint(_tasks())
        assert base != matrix_fingerprint(TASKS[:-1])
        assert base != matrix_fingerprint(_tasks(backend="object"))
        other = expand_matrix(["micro"], ["fasttrack", "pacer"], [0.06],
                              range(2), scale=SCALE)
        assert base != matrix_fingerprint(other)


class TestJournal:
    def test_create_record_resume(self, tmp_path, clean_results):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, TASKS)
        journal.record(0, clean_results[0])
        journal.record(2, clean_results[2])
        assert journal.remaining == len(TASKS) - 2

        again = CheckpointJournal.resume(path, TASKS)
        assert set(again.completed) == {0, 2}
        assert again.completed[0] == clean_results[0]
        assert again.completed[2] == clean_results[2]

    def test_header_schema_and_crc_on_every_line(self, tmp_path, clean_results):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, TASKS)
        journal.record(1, clean_results[1])
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["tasks"] == len(TASKS)
        for line in lines:
            assert isinstance(json.loads(line)["crc"], int)

    def test_duplicate_record_is_idempotent(self, tmp_path, clean_results):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, TASKS)
        journal.record(0, clean_results[0])
        journal.record(0, clean_results[0])
        assert len(path.read_text().splitlines()) == 2  # header + one record

    def test_torn_tail_tolerated(self, tmp_path, clean_results):
        """A half-written final line is the interrupted append; that
        trial simply reruns."""
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, TASKS)
        journal.record(0, clean_results[0])
        journal.record(1, clean_results[1])
        text = path.read_text()
        path.write_text(text[: len(text) // 2 * 2 - 40])  # shear the tail
        again = CheckpointJournal.resume(path, TASKS)
        assert set(again.completed) == {0}

    def test_mid_journal_corruption_rejected(self, tmp_path, clean_results):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, TASKS)
        journal.record(0, clean_results[0])
        journal.record(1, clean_results[1])
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["stats"]["events"] += 1  # damage without updating the CRC
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="CRC"):
            CheckpointJournal.resume(path, TASKS)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointJournal.create(path, TASKS)
        other = expand_matrix(["micro"], ["fasttrack", "pacer"], [0.07],
                              range(2), scale=SCALE)
        with pytest.raises(CheckpointMismatch, match="different task matrix"):
            CheckpointJournal.resume(path, other)

    def test_out_of_range_index_rejected(self, tmp_path, clean_results):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, TASKS)
        journal.record(0, clean_results[0])
        # a journal for the full matrix cannot resume a shrunken one:
        # the fingerprint covers every task, so it fails the match
        with pytest.raises(CheckpointMismatch, match="different task matrix"):
            CheckpointJournal.resume(path, TASKS[:1])

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            CheckpointJournal.resume(tmp_path / "nope.jsonl", TASKS)


@pytest.mark.parametrize("backend", ["object", "packed"])
class TestDeterministicResume:
    """Interrupt at the halfway mark, resume, compare bytes."""

    def test_resumed_equals_uninterrupted(self, tmp_path, backend):
        tasks = _tasks(backend=backend)
        uninterrupted = [run_trial_task(task) for task in tasks]

        # "interrupted run": the journal holds the first half only —
        # exactly the on-disk state after a mid-campaign kill
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.create(path, tasks)
        half = len(tasks) // 2
        for index in range(half):
            journal.record(index, uninterrupted[index])

        resumed_journal = CheckpointJournal.resume(path, tasks)
        assert len(resumed_journal.completed) == half
        outcome = run_supervised(
            tasks,
            SupervisorConfig(jobs=2, task_timeout=30.0, backoff_base=0.0),
            completed=dict(resumed_journal.completed),
            on_result=resumed_journal.record,
        )
        assert outcome.results == uninterrupted
        # the journal now covers the full campaign and replays exactly
        assert set(CheckpointJournal.resume(path, tasks).completed) \
            == set(range(len(tasks)))

        # merged metrics: byte-for-byte
        merged_a = merge_matrix(tasks, uninterrupted)
        merged_b = merge_matrix(tasks, outcome.results)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _write_matrix_metrics(a, merged_a)
        _write_matrix_metrics(b, merged_b)
        assert a.read_bytes() == b.read_bytes()

        # merged race report: byte-for-byte
        ra, rb = tmp_path / "a.report.json", tmp_path / "b.report.json"
        write_report(ra, matrix_report(tasks, uninterrupted))
        write_report(rb, matrix_report(tasks, outcome.results))
        assert ra.read_bytes() == rb.read_bytes()
