"""Race reports are byte-identical across execution strategies.

The report document is part of the deterministic result core: the same
trace must produce the same bytes whether dispatch is scalar or batched,
whether detector state lives in the object or the packed backend, and —
for matrix runs — however many worker processes fan the trials out.  The
single intentional exception is the top-level ``backend`` label, which
truthfully names the backend that ran; the backend axis normalizes that
one field and nothing else.
"""

import json

import pytest

from repro.analysis.parallel import expand_matrix, matrix_report, run_matrix
from repro.cli import main

#: (workload, seed, scale) cells; three seeded workloads per the issue
WORKLOADS = [
    ("micro", 3, 1.0),
    ("pseudojbb", 0, 0.15),
    ("xalan", 1, 0.1),
]


@pytest.fixture(scope="module", params=WORKLOADS, ids=lambda w: w[0])
def recorded(request, tmp_path_factory):
    workload, seed, scale = request.param
    path = tmp_path_factory.mktemp("traces") / f"{workload}.txt"
    assert main(
        ["record", workload, str(path), "--seed", str(seed), "--scale", str(scale)]
    ) == 0
    return path


def analyze_report(trace, out, *extra):
    assert main(
        ["analyze", str(trace), "--report-out", str(out), *extra]
    ) == 0
    return out.read_bytes()


class TestDispatchAxis:
    def test_scalar_vs_batched_byte_equal(self, recorded, tmp_path):
        scalar = analyze_report(recorded, tmp_path / "scalar.json")
        batched = analyze_report(recorded, tmp_path / "batched.json", "--batch")
        assert scalar == batched
        assert json.loads(scalar)["dynamic_races"] > 0


class TestBackendAxis:
    def test_object_vs_packed_byte_equal_modulo_label(self, recorded, tmp_path):
        obj = analyze_report(
            recorded, tmp_path / "object.json", "--state-backend", "object"
        )
        packed = analyze_report(
            recorded, tmp_path / "packed.json", "--state-backend", "packed"
        )
        obj_doc = json.loads(obj)
        packed_doc = json.loads(packed)
        assert obj_doc.pop("backend") == "object"
        assert packed_doc.pop("backend") == "packed"
        # with the label popped, every remaining byte must agree
        assert json.dumps(obj_doc, sort_keys=True) == json.dumps(
            packed_doc, sort_keys=True
        )


class TestJobsAxis:
    def test_matrix_report_independent_of_jobs(self):
        tasks = expand_matrix(
            workloads=[w for w, _, _ in WORKLOADS],
            detectors=["fasttrack"],
            rates=[None],
            seeds=range(2),
            scale=0.1,
        )
        serial = matrix_report(tasks, run_matrix(tasks, jobs=1))
        fanned = matrix_report(tasks, run_matrix(tasks, jobs=4))
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            fanned, sort_keys=True
        )
        assert serial["dynamic_races"] > 0
