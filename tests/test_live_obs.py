"""Live monitor wired into the observability stack."""

import random

from repro.core.pacer import PacerDetector
from repro.live import RaceMonitor, SamplingDriver
from repro.obs import FlightRecorder, MetricsRegistry, RunObserver
from repro.obs.reports import validate_report


def observed_monitor(window=32, detector=None):
    registry = MetricsRegistry()
    obs = RunObserver(registry=registry, recorder=FlightRecorder(window=window))
    mon = RaceMonitor(detector=detector, observer=obs)
    return mon, obs, registry


def run_racy(mon, n_threads=2, rounds=5):
    flag = mon.shared("flag", False)

    def poke():
        for _ in range(rounds):
            flag.set(True)

    threads = [mon.thread(poke) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestLiveObserverWiring:
    def test_finalize_emits_offline_style_metrics(self):
        mon, _obs, registry = observed_monitor()
        run_racy(mon)
        mon.finalize()
        counters = registry.snapshot()["counters"]
        run_keys = [k for k in counters if k.startswith("detector_runs")]
        assert run_keys and counters[run_keys[0]] == 1
        assert counters["races"] == len(mon.detector.races) > 0
        assert counters["events"] == mon.detector._events_seen > 0

    def test_finalize_without_observer_is_noop(self):
        mon = RaceMonitor()
        run_racy(mon)
        mon.finalize()  # must not raise

    def test_races_carry_real_indices_and_string_sites(self):
        mon, _obs, _registry = observed_monitor()
        run_racy(mon)
        race = mon.detector.races[0]
        assert race.index >= 0
        assert isinstance(race.first_site, str) and "test_live_obs.py" in race.first_site
        assert isinstance(race.second_site, str)

    def test_on_race_captures_flight_recorder_context(self):
        mon, obs, _registry = observed_monitor()
        run_racy(mon)
        assert len(obs.race_contexts) == len(mon.detector.races) > 0
        ctx = obs.race_contexts[0]
        assert ctx["second"]["events"]
        assert any(
            "test_live_obs.py" in str(ev["site"]) for ev in ctx["second"]["events"]
        )


class TestLiveRaceReport:
    def test_report_validates_and_names_source_lines(self):
        mon, _obs, _registry = observed_monitor()
        run_racy(mon)
        mon.finalize()
        doc = mon.race_report()
        assert validate_report(doc) == []
        assert doc["source"] == "live"
        assert doc["detector"] == mon.detector.name
        assert doc["dynamic_races"] == len(mon.detector.races)
        g = doc["races"][0]
        assert "test_live_obs.py" in g["first_site_name"]
        witness = g["witness"]
        assert witness is not None
        assert witness["source"] == "flight-recorder"
        assert witness["complete"] is False
        assert witness["verdict"] in ("no-release", "sync-gap")

    def test_describe_races_renders_report_table(self):
        mon, _obs, _registry = observed_monitor()
        run_racy(mon)
        text = mon.describe_races()
        assert "test_live_obs.py" in text
        assert "witness" in text

    def test_report_without_observer_still_builds(self):
        mon = RaceMonitor()
        run_racy(mon)
        doc = mon.race_report()
        assert validate_report(doc) == []
        assert doc["races"][0]["witness"] is None
        assert "test_live_obs.py" in doc["races"][0]["first_site_name"]


class TestLiveSamplingAttribution:
    def test_driver_mirrors_marks_into_recorder(self):
        mon, obs, _registry = observed_monitor(detector=PacerDetector())
        driver = SamplingDriver(
            mon, rate=1.0, period_s=0.5, rng=random.Random(0)
        )
        with driver:
            run_racy(mon, rounds=20)
        marks = obs.recorder.sampling_marks
        assert marks and marks[0][1] is True
        assert marks[-1][1] is False
        mon.finalize()
        doc = mon.race_report()
        assert validate_report(doc) == []
        witnesses = [g["witness"] for g in doc["races"] if g["witness"]]
        assert witnesses
        # always-sampling: every caught race attributes to period 0
        for witness in witnesses:
            assert witness["sampling"] is not None
            assert witness["sampling"]["second_period"] == 0
