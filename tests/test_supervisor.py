"""Crash-isolated supervisor: chaos runs must not change results.

The acceptance bar from the robustness issue: under an injected fault
plan with at least one crash, one hang, and one poison task, a
supervised matrix run completes, quarantines *only* the poison task,
and every surviving ``CoreStats`` is identical to the failure-free
run's.  These tests drive exactly that, entirely through the public
fault-injection plan — no monkeypatching of worker internals.
"""

from __future__ import annotations

import pytest

from repro.analysis.parallel import (
    expand_matrix,
    require_complete,
    run_matrix,
    run_trial_task,
)
from repro.analysis.supervisor import (
    MatrixIncompleteError,
    QUARANTINE_SCHEMA,
    SupervisorConfig,
    backoff_delay,
    run_supervised,
)
from repro.util.faults import FaultPlan

SCALE = 0.25

TASKS = expand_matrix(
    workloads=["micro"],
    detectors=["fasttrack", "pacer"],
    rates=[0.05],
    seeds=range(3),
    scale=SCALE,
)  # 6 trials: fasttrack seeds 0-2 at indices 0-2, pacer at 3-5


def _config(**overrides) -> SupervisorConfig:
    base = dict(
        jobs=4,
        task_timeout=5.0,
        max_attempts=3,
        backoff_base=0.0,  # retries are immediate in tests
    )
    base.update(overrides)
    return SupervisorConfig(**base)


@pytest.fixture(scope="module")
def clean_results():
    return [run_trial_task(task) for task in TASKS]


class TestFaultFree:
    def test_matches_sequential_run(self, clean_results):
        outcome = run_supervised(TASKS, _config())
        assert outcome.results == clean_results
        assert outcome.quarantine == []
        counters = outcome.registry.snapshot()["counters"]
        assert counters["supervisor_tasks_completed_total"] == len(TASKS)
        assert "supervisor_retries_total" not in counters

    def test_empty_matrix(self):
        outcome = run_supervised([], _config())
        assert outcome.results == []
        assert outcome.quarantine == []


class TestChaos:
    def test_crash_hang_poison_chaos_run(self, clean_results):
        """>=1 crash, >=1 hang, >=1 poison: the acceptance scenario."""
        plan = FaultPlan.parse("crash@1;hang@2;raise@4*inf")
        outcome = run_supervised(
            TASKS, _config(task_timeout=3.0, fault_plan=plan)
        )
        # only the poison task is quarantined...
        assert [q.index for q in outcome.quarantine] == [4]
        assert outcome.results[4] is None
        # ...and every surviving result is identical to the clean run's
        for index, (clean, survived) in enumerate(zip(clean_results, outcome.results)):
            if index == 4:
                continue
            assert survived == clean, f"task {index} diverged after retries"
            assert survived.race_sigs == clean.race_sigs
            assert survived.counters == clean.counters
            assert survived.metrics == clean.metrics
        counters = outcome.registry.snapshot()["counters"]
        assert counters["supervisor_failures_total{kind=crash}"] == 1
        assert counters["supervisor_failures_total{kind=timeout}"] == 1
        assert counters["supervisor_failures_total{kind=raise}"] == 3
        assert counters["supervisor_timeouts_total"] == 1
        assert counters["supervisor_quarantined_total"] == 1

    def test_corrupt_result_detected_and_retried(self, clean_results):
        """A corrupted result must be rejected by the identity check and
        recomputed — never merged."""
        plan = FaultPlan.parse("corrupt@0;corrupt@3")
        outcome = run_supervised(TASKS, _config(fault_plan=plan))
        assert outcome.quarantine == []
        assert outcome.results == clean_results
        counters = outcome.registry.snapshot()["counters"]
        assert counters["supervisor_failures_total{kind=corrupt-result}"] == 2
        assert counters["supervisor_retries_total"] == 2

    def test_transient_faults_leave_no_gaps(self, clean_results):
        """Crashes below the retry budget are invisible in the output."""
        plan = FaultPlan.parse("crash@0*2;raise@5*2")
        outcome = run_supervised(TASKS, _config(fault_plan=plan))
        assert outcome.quarantine == []
        assert outcome.results == clean_results

    def test_seed_mod_selector_reaches_workers(self, clean_results):
        """The position-independent selector fires in worker processes."""
        from repro.analysis.parallel import task_seed

        seed = task_seed(TASKS[2])
        plan = FaultPlan.parse(f"raise@seed%{10**9}={seed % 10**9}*inf")
        outcome = run_supervised(TASKS, _config(fault_plan=plan))
        assert [q.index for q in outcome.quarantine] == [2]

    def test_quarantine_doc_schema(self):
        plan = FaultPlan.parse("raise@1*inf")
        outcome = run_supervised(TASKS, _config(fault_plan=plan))
        doc = outcome.quarantine_doc()
        assert doc["schema"] == QUARANTINE_SCHEMA
        assert doc["total_tasks"] == len(TASKS)
        assert doc["completed"] == len(TASKS) - 1
        (entry,) = doc["quarantined"]
        task = TASKS[1]
        assert (entry["workload"], entry["detector"], entry["rate"], entry["seed"]) \
            == (task.workload, task.detector, task.rate, task.seed)
        assert entry["attempts"] == 3
        assert [f["kind"] for f in entry["failures"]] == ["raise"] * 3
        assert all(f["attempt"] == i + 1 for i, f in enumerate(entry["failures"]))

    def test_crash_failure_records_exit_code(self):
        from repro.util.faults import CRASH_EXIT_CODE

        plan = FaultPlan.parse("crash@0*inf")
        outcome = run_supervised(TASKS[:1], _config(jobs=1, fault_plan=plan))
        (record,) = outcome.quarantine
        assert {f.exitcode for f in record.failures} == {CRASH_EXIT_CODE}
        assert all(f.kind == "crash" for f in record.failures)


class TestStrictMode:
    def test_dropped_tasks_named_not_just_indexed(self):
        """The old guard said "indices [4]"; the new one must name the
        trial so a 3-hour campaign failure is actionable."""
        plan = FaultPlan.parse("raise@4*inf")
        with pytest.raises(MatrixIncompleteError) as err:
            run_supervised(
                TASKS, _config(fault_plan=plan, quarantine=False)
            )
        message = str(err.value)
        task = TASKS[4]
        assert task.workload in message
        assert task.detector in message
        assert f"seed={task.seed}" in message
        assert err.value.records[0].index == 4

    def test_run_matrix_routes_through_strict_supervision(self):
        plan = FaultPlan.parse("crash@2*inf")
        import repro.analysis.supervisor as supervisor_mod

        # run_matrix builds its own config; drive the fault through a
        # wrapped run_supervised so the public entry point is what fails
        original = supervisor_mod.run_supervised

        def with_faults(tasks, config, **kwargs):
            return original(
                tasks,
                SupervisorConfig(
                    jobs=config.jobs,
                    task_timeout=config.task_timeout,
                    max_attempts=2,
                    backoff_base=0.0,
                    quarantine=config.quarantine,
                    fault_plan=plan,
                ),
                **kwargs,
            )

        supervisor_mod.run_supervised = with_faults
        try:
            with pytest.raises(MatrixIncompleteError, match="detector="):
                run_matrix(TASKS, jobs=2)
        finally:
            supervisor_mod.run_supervised = original

    def test_require_complete_names_tasks(self):
        results = [run_trial_task(TASKS[0]), None, None]
        with pytest.raises(RuntimeError) as err:
            require_complete(TASKS[:3], results)
        message = str(err.value)
        assert "2 task(s)" in message
        assert f"seed={TASKS[1].seed}" in message
        assert TASKS[2].detector in message
        # quarantined indices are allowed to be missing
        require_complete(TASKS[:3], results, allowed_missing={1, 2})


class TestBackoff:
    def test_schedule_is_deterministic_and_bounded(self):
        delays = [backoff_delay(a, base=0.05, cap=2.0) for a in range(1, 10)]
        assert delays == [backoff_delay(a, 0.05, 2.0) for a in range(1, 10)]
        assert delays[0] == 0.05
        assert delays[1] == 0.10
        assert all(d <= 2.0 for d in delays)
        assert delays == sorted(delays)

    def test_zero_base_disables_backoff(self):
        assert backoff_delay(5, base=0.0, cap=2.0) == 0.0


class TestResumeHook:
    def test_completed_tasks_are_never_rescheduled(self, clean_results):
        """Pre-filled results (the checkpoint path) skip execution: a
        poison plan on a completed index can never fire."""
        plan = FaultPlan.parse("raise@0*inf")
        seen = []
        outcome = run_supervised(
            TASKS,
            _config(fault_plan=plan),
            completed={0: clean_results[0]},
            on_result=lambda index, stats: seen.append(index),
        )
        assert outcome.quarantine == []
        assert outcome.results == clean_results
        # on_result fires only for newly computed trials
        assert sorted(seen) == [1, 2, 3, 4, 5]

    def test_completed_index_out_of_range_rejected(self, clean_results):
        with pytest.raises(ValueError, match="outside matrix"):
            run_supervised(
                TASKS, _config(), completed={99: clean_results[0]}
            )
