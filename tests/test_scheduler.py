"""The preemptive scheduler: semantics, determinism, blocking."""

import pytest

from repro.sim.program import (
    Acquire,
    Alloc,
    Enter,
    Exit,
    Fork,
    Join,
    Program,
    Read,
    Release,
    VolWrite,
    Work,
    Write,
)
from repro.sim.scheduler import DeadlockError, Scheduler, run_program
from repro.sim.workloads import counter_race, fork_join_tree, lock_ping_pong


class TestBasics:
    def test_single_thread_program(self):
        def main(tid):
            yield Write(1, site=5)
            yield Read(1, site=6)

        trace = run_program(Program(main))
        assert [e.kind for e in trace] == ["wr", "rd"]
        assert trace[0].site == 5

    def test_deterministic_for_seed(self):
        t1 = run_program(counter_race(3, 30), seed=9)
        t2 = run_program(counter_race(3, 30), seed=9)
        assert t1.events == t2.events

    def test_different_seeds_interleave_differently(self):
        t1 = run_program(counter_race(3, 30), seed=1)
        t2 = run_program(counter_race(3, 30), seed=2)
        assert t1.events != t2.events

    def test_traces_are_feasible(self):
        for seed in range(5):
            run_program(lock_ping_pong(50, 2), seed=seed).validate()
            run_program(fork_join_tree(3), seed=seed).validate()

    def test_fork_sends_child_tid(self):
        seen = {}

        def child(tid):
            yield Write(1)

        def main(tid):
            c = yield Fork(child)
            seen["child"] = c
            yield Join(c)

        run_program(Program(main))
        assert seen["child"] == 1

    def test_thread_counters(self):
        program = counter_race(4, 10)
        events = []
        s = Scheduler(program, seed=0, sink=events.append)
        s.run()
        assert s.threads_started == 5
        assert s.max_live <= 5


class TestLockSemantics:
    def test_mutual_exclusion_in_trace(self):
        trace = run_program(lock_ping_pong(100, 1), seed=3)
        held = None
        for e in trace:
            if e.kind == "acq":
                assert held is None
                held = e.tid
            elif e.kind == "rel":
                assert held == e.tid
                held = None

    def test_reentrant_lock_emits_outermost_only(self):
        def main(tid):
            yield Acquire(5)
            yield Acquire(5)
            yield Write(1)
            yield Release(5)
            yield Release(5)

        trace = run_program(Program(main))
        assert trace.count("acq") == 1
        assert trace.count("rel") == 1

    def test_release_unheld_lock_raises(self):
        def main(tid):
            yield Release(5)

        with pytest.raises(RuntimeError, match="does not hold"):
            run_program(Program(main))

    def test_deadlock_detected(self):
        def t_a(tid):
            yield Acquire(1)
            yield Acquire(2)
            yield Release(2)
            yield Release(1)

        def t_b(tid):
            yield Acquire(2)
            yield Acquire(1)
            yield Release(1)
            yield Release(2)

        # some seeds interleave into deadlock; scan a few
        saw_deadlock = False
        for seed in range(40):
            program = Program(t_a, [t_b])
            try:
                run_program(program, seed=seed, stickiness=0.0)
            except DeadlockError:
                saw_deadlock = True
                break
        assert saw_deadlock

    def test_blocked_thread_eventually_runs(self):
        trace = run_program(lock_ping_pong(40, 1), seed=5)
        # both workers performed all their accesses
        per_thread = {}
        for e in trace:
            if e.kind in ("rd", "wr"):
                per_thread[e.tid] = per_thread.get(e.tid, 0) + 1
        assert per_thread.get(1) == 80
        assert per_thread.get(2) == 80


class TestJoinSemantics:
    def test_join_waits_for_child(self):
        trace = run_program(fork_join_tree(2, work=5), seed=7)
        finished = set()
        for e in trace:
            if e.kind == "join":
                finished.add(e.target)
            # no event by a joined thread may appear after its join
            assert e.tid not in finished or e.kind == "join"

    def test_join_unknown_thread_raises(self):
        def main(tid):
            yield Join(99)

        with pytest.raises(RuntimeError, match="unknown thread"):
            run_program(Program(main))


class TestAuxiliaryOps:
    def test_method_and_alloc_events(self):
        def main(tid):
            yield Enter(7)
            yield Alloc(128, 2)
            yield Exit(7)

        trace = run_program(Program(main))
        kinds = [e.kind for e in trace]
        assert kinds == ["m_enter", "alloc", "m_exit"]
        assert trace[1].target == 128
        assert trace[1].site == 2  # live delta rides in the site field

    def test_work_invokes_hook_but_emits_nothing(self):
        def main(tid):
            yield Work(5)
            yield Work(3)

        units = []
        s = Scheduler(Program(main), sink=lambda e: pytest.fail("no events"),
                      work_hook=units.append)
        s.run()
        assert units == [5, 3]

    def test_step_limit(self):
        def main(tid):
            while True:
                yield Work(1)

        s = Scheduler(Program(main), max_steps=100)
        with pytest.raises(RuntimeError, match="max_steps"):
            s.run()

    def test_volatile_events(self):
        def main(tid):
            yield VolWrite(9)

        trace = run_program(Program(main))
        assert trace[0].kind == "vol_wr"
