"""Monitor wait/notify semantics in the simulator."""

import pytest

from repro.detectors import FastTrackDetector
from repro.sim.program import (
    Acquire,
    Fork,
    Join,
    Notify,
    NotifyAll,
    Program,
    Read,
    Release,
    Wait,
    Write,
)
from repro.sim.scheduler import DeadlockError, run_program
from repro.sim.workloads import producer_consumer
from repro.trace.oracle import HBOracle

L, DATA = 100, 1


def guarded_pair(use_notify_all=False):
    """Producer/consumer with the standard condition-loop guard."""
    ready = {"set": False}

    def consumer(tid):
        yield Acquire(L)
        while not ready["set"]:
            yield Wait(L)
        yield Read(DATA, site=20)
        yield Release(L)

    def main(tid):
        child = yield Fork(consumer)
        yield Acquire(L)
        yield Write(DATA, site=10)
        ready["set"] = True
        yield (NotifyAll(L) if use_notify_all else Notify(L))
        yield Release(L)
        yield Join(child)

    return Program(main)


class TestSemantics:
    @pytest.mark.parametrize("seed", range(10))
    def test_guarded_handoff_race_free(self, seed):
        trace = run_program(guarded_pair(), seed=seed)
        trace.validate()
        ft = FastTrackDetector()
        ft.run(trace)
        assert ft.races == []

    def test_wait_emits_release_and_reacquire(self):
        trace = run_program(guarded_pair(), seed=3)
        # consumer may wait multiple times (spurious-like wakeup ordering
        # is possible); every wait pairs a release with a later acquire
        by_thread = {}
        for e in trace:
            if e.kind in ("acq", "rel"):
                by_thread.setdefault(e.tid, []).append(e.kind)
        for tid, kinds in by_thread.items():
            assert kinds.count("acq") == kinds.count("rel")

    def test_wait_without_lock_raises(self):
        def main(tid):
            yield Wait(L)

        with pytest.raises(RuntimeError, match="does not hold"):
            run_program(Program(main))

    def test_notify_without_lock_raises(self):
        def main(tid):
            yield Notify(L)

        with pytest.raises(RuntimeError, match="does not hold"):
            run_program(Program(main))

    def test_lost_wakeup_deadlocks(self):
        """wait() with no guard loop after the notify has passed blocks
        forever — exactly Java's behaviour — and is reported as deadlock."""

        def consumer(tid):
            yield Acquire(L)
            yield Wait(L)  # unguarded: misses an early notify
            yield Release(L)

        def main(tid):
            yield Acquire(L)
            yield Notify(L)  # nobody waiting yet: no-op
            yield Release(L)
            child = yield Fork(consumer)
            yield Join(child)

        with pytest.raises(DeadlockError):
            run_program(Program(main), seed=0)

    def test_notify_all_wakes_everyone(self):
        done = {"flag": False}

        def waiter(tid):
            yield Acquire(L)
            while not done["flag"]:
                yield Wait(L)
            yield Release(L)

        def main(tid):
            children = []
            for _ in range(4):
                children.append((yield Fork(waiter)))
            yield Acquire(L)
            done["flag"] = True
            yield NotifyAll(L)
            yield Release(L)
            for child in children:
                yield Join(child)

        for seed in range(8):
            run_program(Program(main), seed=seed).validate()

    def test_wait_restores_reentrant_depth(self):
        ready = {"set": False}

        def consumer(tid):
            yield Acquire(L)
            yield Acquire(L)  # depth 2
            while not ready["set"]:
                yield Wait(L)  # releases fully, restores depth 2
            yield Read(DATA, site=20)
            yield Release(L)
            yield Release(L)

        def main(tid):
            child = yield Fork(consumer)
            yield Acquire(L)
            yield Write(DATA, site=10)
            ready["set"] = True
            yield Notify(L)
            yield Release(L)
            yield Join(child)

        for seed in range(8):
            trace = run_program(Program(main), seed=seed)
            trace.validate()  # balanced outer acq/rel events
            ft = FastTrackDetector()
            ft.run(trace)
            assert ft.races == []


class TestProducerConsumerMicro:
    @pytest.mark.parametrize("seed", range(8))
    def test_race_free_any_schedule(self, seed):
        trace = run_program(producer_consumer(12, 3), seed=seed)
        trace.validate()
        assert HBOracle(trace).is_race_free()

    def test_all_items_consumed(self):
        trace = run_program(producer_consumer(10, 2), seed=1)
        reads = sum(1 for e in trace if e.kind == "rd" and e.target == 90)
        assert reads == 10
