"""Monitor wait/notify semantics in the simulator."""

import pytest

from repro.detectors import FastTrackDetector
from repro.sim.program import (
    Acquire,
    Fork,
    Join,
    Notify,
    NotifyAll,
    Program,
    Read,
    Release,
    Wait,
    Work,
    Write,
)
from repro.sim.scheduler import DeadlockError, run_program
from repro.sim.workloads import producer_consumer
from repro.trace.oracle import HBOracle

L, DATA = 100, 1


def guarded_pair(use_notify_all=False):
    """Producer/consumer with the standard condition-loop guard."""
    ready = {"set": False}

    def consumer(tid):
        yield Acquire(L)
        while not ready["set"]:
            yield Wait(L)
        yield Read(DATA, site=20)
        yield Release(L)

    def main(tid):
        child = yield Fork(consumer)
        yield Acquire(L)
        yield Write(DATA, site=10)
        ready["set"] = True
        yield (NotifyAll(L) if use_notify_all else Notify(L))
        yield Release(L)
        yield Join(child)

    return Program(main)


class TestSemantics:
    @pytest.mark.parametrize("seed", range(10))
    def test_guarded_handoff_race_free(self, seed):
        trace = run_program(guarded_pair(), seed=seed)
        trace.validate()
        ft = FastTrackDetector()
        ft.run(trace)
        assert ft.races == []

    def test_wait_emits_release_and_reacquire(self):
        trace = run_program(guarded_pair(), seed=3)
        # consumer may wait multiple times (spurious-like wakeup ordering
        # is possible); every wait pairs a release with a later acquire
        by_thread = {}
        for e in trace:
            if e.kind in ("acq", "rel"):
                by_thread.setdefault(e.tid, []).append(e.kind)
        for tid, kinds in by_thread.items():
            assert kinds.count("acq") == kinds.count("rel")

    def test_wait_without_lock_raises(self):
        def main(tid):
            yield Wait(L)

        with pytest.raises(RuntimeError, match="does not hold"):
            run_program(Program(main))

    def test_notify_without_lock_raises(self):
        def main(tid):
            yield Notify(L)

        with pytest.raises(RuntimeError, match="does not hold"):
            run_program(Program(main))

    def test_lost_wakeup_deadlocks(self):
        """wait() with no guard loop after the notify has passed blocks
        forever — exactly Java's behaviour — and is reported as deadlock."""

        def consumer(tid):
            yield Acquire(L)
            yield Wait(L)  # unguarded: misses an early notify
            yield Release(L)

        def main(tid):
            yield Acquire(L)
            yield Notify(L)  # nobody waiting yet: no-op
            yield Release(L)
            child = yield Fork(consumer)
            yield Join(child)

        with pytest.raises(DeadlockError):
            run_program(Program(main), seed=0)

    def test_notify_all_wakes_everyone(self):
        done = {"flag": False}

        def waiter(tid):
            yield Acquire(L)
            while not done["flag"]:
                yield Wait(L)
            yield Release(L)

        def main(tid):
            children = []
            for _ in range(4):
                children.append((yield Fork(waiter)))
            yield Acquire(L)
            done["flag"] = True
            yield NotifyAll(L)
            yield Release(L)
            for child in children:
                yield Join(child)

        for seed in range(8):
            run_program(Program(main), seed=seed).validate()

    def test_wait_restores_reentrant_depth(self):
        ready = {"set": False}

        def consumer(tid):
            yield Acquire(L)
            yield Acquire(L)  # depth 2
            while not ready["set"]:
                yield Wait(L)  # releases fully, restores depth 2
            yield Read(DATA, site=20)
            yield Release(L)
            yield Release(L)

        def main(tid):
            child = yield Fork(consumer)
            yield Acquire(L)
            yield Write(DATA, site=10)
            ready["set"] = True
            yield Notify(L)
            yield Release(L)
            yield Join(child)

        for seed in range(8):
            trace = run_program(Program(main), seed=seed)
            trace.validate()  # balanced outer acq/rel events
            ft = FastTrackDetector()
            ft.run(trace)
            assert ft.races == []


class TestTimedWait:
    """wait(timeout) semantics: the notify-vs-timeout race must neither
    lose wakeups nor report spurious deadlocks."""

    def test_timed_wait_expires_without_notify(self):
        """A timed waiter with no notifier in sight wakes up on its own;
        before the expiry path existed this was a spurious DeadlockError
        (the waiter sat in the wait set forever with the lock free)."""

        def consumer(tid):
            yield Acquire(L)
            yield Wait(L, timeout=25)  # nobody will ever notify
            yield Read(DATA, site=20)
            yield Release(L)

        def main(tid):
            child = yield Fork(consumer)
            yield Join(child)

        for seed in range(10):
            trace = run_program(Program(main), seed=seed)
            trace.validate()
            assert sum(1 for e in trace if e.kind == "rd") == 1

    def test_timed_wait_expires_while_lock_held(self):
        """Expiry with the monitor occupied queues the waiter on the
        lock; it resumes at the next release, not never."""

        def consumer(tid):
            yield Acquire(L)
            yield Wait(L, timeout=2)
            yield Read(DATA, site=20)
            yield Release(L)

        def holder(tid):
            yield Acquire(L)
            for _ in range(40):  # hold the monitor across the deadline
                yield Read(DATA + 1, site=30)
            yield Release(L)

        def main(tid):
            a = yield Fork(consumer)
            b = yield Fork(holder)
            yield Join(a)
            yield Join(b)

        for seed in range(10):
            run_program(Program(main), seed=seed).validate()

    def test_notify_not_lost_on_timed_out_waiter(self):
        """Two waiters: one timed (expires before the notify), one
        untimed.  The single notify must reach the *live* waiter — if
        the expired thread still occupied its wait-set slot the notify
        would be consumed by a dead entry and the untimed waiter would
        deadlock."""
        ready = {"set": False}

        def timed(tid):
            yield Acquire(L)
            if not ready["set"]:
                yield Wait(L, timeout=1)  # gives up almost immediately
            yield Release(L)

        def untimed(tid):
            yield Acquire(L)
            while not ready["set"]:
                yield Wait(L)
            yield Read(DATA, site=20)
            yield Release(L)

        def main(tid):
            a = yield Fork(timed)
            b = yield Fork(untimed)
            for _ in range(200):  # let the timed wait expire first
                yield Work()
            yield Acquire(L)
            yield Write(DATA, site=10)
            ready["set"] = True
            yield Notify(L)  # exactly one notify for the one live waiter
            yield Release(L)
            yield Join(a)
            yield Join(b)

        for seed in range(10):
            trace = run_program(Program(main), seed=seed)
            trace.validate()

    def test_notified_waiter_does_not_double_wake(self):
        """A waiter that is notified before its timeout must consume the
        notify normally and never re-enter the entry queue when the stale
        deadline passes."""
        ready = {"set": False}

        def consumer(tid):
            yield Acquire(L)
            while not ready["set"]:
                yield Wait(L, timeout=10_000)  # notify always wins
            yield Read(DATA, site=20)
            yield Release(L)

        def main(tid):
            child = yield Fork(consumer)
            yield Acquire(L)
            yield Write(DATA, site=10)
            ready["set"] = True
            yield Notify(L)
            yield Release(L)
            yield Join(child)
            for _ in range(50):  # run past the stale deadline
                yield Work()

        for seed in range(10):
            trace = run_program(Program(main), seed=seed)
            trace.validate()
            ft = FastTrackDetector()
            ft.run(trace)
            assert ft.races == []

    def test_all_blocked_on_timed_wait_fast_forwards(self):
        """When every live thread is in a timed wait the scheduler jumps
        to the earliest deadline instead of raising DeadlockError."""

        def sleeper(tid):
            yield Acquire(L)
            yield Wait(L, timeout=1_000)
            yield Release(L)

        def main(tid):
            child = yield Fork(sleeper)
            yield Acquire(L + 1)
            yield Wait(L + 1, timeout=2_000)
            yield Release(L + 1)
            yield Join(child)

        for seed in range(5):
            run_program(Program(main), seed=seed).validate()

    def test_timed_wait_is_deterministic(self):
        def consumer(tid):
            yield Acquire(L)
            yield Wait(L, timeout=7)
            yield Read(DATA, site=20)
            yield Release(L)

        def main(tid):
            child = yield Fork(consumer)
            yield Join(child)

        first = list(run_program(Program(main), seed=4))
        second = list(run_program(Program(main), seed=4))
        assert first == second


class TestProducerConsumerMicro:
    @pytest.mark.parametrize("seed", range(8))
    def test_race_free_any_schedule(self, seed):
        trace = run_program(producer_consumer(12, 3), seed=seed)
        trace.validate()
        assert HBOracle(trace).is_race_free()

    def test_all_items_consumed(self):
        trace = run_program(producer_consumer(10, 2), seed=1)
        reads = sum(1 for e in trace if e.kind == "rd" and e.target == 90)
        assert reads == 10
