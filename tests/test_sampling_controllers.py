"""Unit tests for the sampling-period controllers (paper §4)."""

import random

import pytest

from repro.core.sampling import (
    BiasCorrectedController,
    FixedRateController,
    ScriptedController,
)


class TestFixedRate:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FixedRateController(-0.1)
        with pytest.raises(ValueError):
            FixedRateController(1.5)

    def test_rate_one_always_samples(self):
        c = FixedRateController(1.0, rng=random.Random(0))
        assert all(c.decide() for _ in range(50))

    def test_rate_zero_never_samples(self):
        c = FixedRateController(0.0, rng=random.Random(0))
        assert not any(c.decide() for _ in range(50))

    def test_long_run_frequency(self):
        c = FixedRateController(0.25, rng=random.Random(42))
        hits = sum(c.decide() for _ in range(20_000))
        assert abs(hits / 20_000 - 0.25) < 0.02

    def test_effective_rate_tracks_work(self):
        c = FixedRateController(0.5)
        c.on_work(30, sampling=True)
        c.on_work(70, sampling=False)
        assert c.effective_rate == pytest.approx(0.3)

    def test_effective_rate_empty(self):
        assert FixedRateController(0.5).effective_rate == 0.0


class TestBiasCorrection:
    def _simulate(self, controller, periods, bias, rng):
        """Periods do `100` work units normally but `100*bias` when
        sampling (metadata allocation shortens sampled periods)."""
        sampling = False
        for _ in range(periods):
            work = int(100 * bias) if sampling else 100
            controller.on_work(work, sampling)
            sampling = controller.decide()
        return controller.effective_rate

    def test_fixed_rate_underachieves_with_bias(self):
        fixed = FixedRateController(0.2, rng=random.Random(1))
        eff = self._simulate(fixed, 4000, bias=0.4, rng=None)
        assert eff < 0.15  # visibly below the specified 20%

    def test_corrected_rate_converges(self):
        corrected = BiasCorrectedController(0.2, rng=random.Random(1))
        eff = self._simulate(corrected, 4000, bias=0.4, rng=None)
        assert abs(eff - 0.2) < 0.03

    def test_corrected_beats_fixed(self):
        fixed = FixedRateController(0.1, rng=random.Random(3))
        corrected = BiasCorrectedController(0.1, rng=random.Random(3))
        eff_fixed = self._simulate(fixed, 3000, bias=0.3, rng=None)
        eff_corr = self._simulate(corrected, 3000, bias=0.3, rng=None)
        assert abs(eff_corr - 0.1) < abs(eff_fixed - 0.1)

    def test_no_bias_still_accurate(self):
        corrected = BiasCorrectedController(0.3, rng=random.Random(9))
        eff = self._simulate(corrected, 4000, bias=1.0, rng=None)
        assert abs(eff - 0.3) < 0.03

    def test_extreme_rates(self):
        assert not any(
            BiasCorrectedController(0.0).decide() for _ in range(20)
        )
        c = BiasCorrectedController(1.0)
        assert all(c.decide() for _ in range(20))


class TestScripted:
    def test_replays_schedule(self):
        c = ScriptedController([True, False, True])
        assert [c.decide() for _ in range(5)] == [True, False, True, False, False]

    def test_tracks_work_like_others(self):
        c = ScriptedController([True])
        c.on_work(10, True)
        c.on_work(30, False)
        assert c.effective_rate == pytest.approx(0.25)
