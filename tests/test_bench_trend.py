"""``scripts/bench_trend.py`` exit-code contract.

A CI step that expects a trend must fail loudly when there is nothing
to render: missing or empty history is exit 2 with a one-line stderr
explanation — never a traceback, never a green no-op.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_trend.py"


def run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv], capture_output=True, text=True
    )


def test_missing_history_exits_nonzero_with_message(tmp_path):
    out = run(str(tmp_path / "nope.jsonl"))
    assert out.returncode == 2
    assert "no benchmark history" in out.stderr
    assert "repro bench --record" in out.stderr
    assert "Traceback" not in out.stderr


def test_empty_history_exits_nonzero_with_message(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    path.write_text("")
    out = run(str(path))
    assert out.returncode == 2
    assert "no gate samples" in out.stderr
    assert "Traceback" not in out.stderr


def test_unmatched_metric_filter_exits_nonzero(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    record = {
        "recorded_at": "2026-01-01T00:00:00",
        "gates": [{"metric": "packed vs object backend speedup",
                   "speedup": 1.5, "target": 1.2}],
    }
    path.write_text(json.dumps(record) + "\n")
    out = run(str(path), "--metric", "does-not-exist")
    assert out.returncode == 2
    assert "--metric" in out.stderr


def test_valid_history_renders_and_exits_zero(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    records = [
        {
            "recorded_at": f"2026-01-0{i}T00:00:00",
            "gates": [{"metric": "packed vs object backend speedup",
                       "speedup": 1.4 + i / 10, "target": 1.2}],
        }
        for i in (1, 2)
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    out = run(str(path))
    assert out.returncode == 0
    assert "speedup trend" in out.stdout
    as_json = run(str(path), "--json")
    assert as_json.returncode == 0
    assert "packed vs object" in json.loads(as_json.stdout) or json.loads(
        as_json.stdout
    )
