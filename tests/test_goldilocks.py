"""The Goldilocks lockset-transfer detector (paper §6.2)."""

from repro.detectors import FastTrackDetector, GenericDetector, GoldilocksDetector
from repro.trace.events import acq, fork, join, rd, rel, vol_rd, vol_wr, wr
from repro.trace.generator import race_free_trace, random_trace
from repro.trace.oracle import HBOracle

X, Y = 1, 2
L, L2 = 100, 101
V = 200


def run(events):
    d = GoldilocksDetector()
    d.run(events)
    return d


class TestTransferRules:
    def test_lock_transfer_chain(self):
        # rel(t0,m) puts m in the set; acq(t1,m) puts t1 in the set
        d = run(
            [
                fork(0, 1),
                wr(0, X, site=1),
                acq(0, L), rel(0, L),
                acq(1, L),
                wr(1, X, site=2),
            ]
        )
        assert d.races == []

    def test_no_chain_no_hb(self):
        d = run([fork(0, 1), wr(0, X, site=1), wr(1, X, site=2)])
        assert [r.kind for r in d.races] == ["ww"]

    def test_fork_transfer(self):
        d = run([wr(0, X), fork(0, 1), rd(1, X)])
        assert d.races == []

    def test_join_transfer(self):
        d = run([fork(0, 1), wr(1, X), join(0, 1), wr(0, X)])
        assert d.races == []

    def test_volatile_transfer(self):
        d = run([fork(0, 1), wr(0, X), vol_wr(0, V), vol_rd(1, V), rd(1, X)])
        assert d.races == []

    def test_volatile_read_before_write_no_edge(self):
        d = run([fork(0, 1), vol_rd(1, V), wr(0, X), vol_wr(0, V), rd(1, X)])
        assert len(d.races) == 1

    def test_wrong_lock_no_edge(self):
        d = run(
            [
                fork(0, 1),
                wr(0, X, site=1), acq(0, L), rel(0, L),
                acq(1, L2), wr(1, X, site=2), rel(1, L2),
            ]
        )
        assert len(d.races) == 1

    def test_transitive_chain_through_thread(self):
        d = run(
            [
                fork(0, 1), fork(0, 2),
                wr(0, X),
                acq(0, L), rel(0, L),
                acq(1, L), rel(1, L),
                acq(1, L2), rel(1, L2),
                acq(2, L2),
                rd(2, X),
            ]
        )
        assert d.races == []

    def test_transfer_counter_moves(self):
        d = run([fork(0, 1), wr(0, X), acq(0, L), rel(0, L), acq(1, L)])
        assert d.transfers > 0


class TestMetadataLifecycle:
    def test_write_resets_readers(self):
        d = GoldilocksDetector()
        d.run([fork(0, 1), rd(0, X), rd(1, X), wr(0, X)])
        state = d._vars[X]
        assert state.readers == {}
        assert state.write is not None and state.write.tid == 0

    def test_same_thread_read_superseded(self):
        d = GoldilocksDetector()
        d.run([rd(0, X, site=1), rd(0, X, site=2)])
        assert d._vars[X].readers[0].site == 2
        assert len(d._vars[X].readers) == 1

    def test_index_cleaned_on_reset(self):
        d = GoldilocksDetector()
        d.run([fork(0, 1)] + [wr(0, X)] * 5 + [wr(0, Y)] * 5)
        # only the two live write locksets remain indexed under thread 0
        assert len(d._index[("t", 0)]) == 2

    def test_footprint_tracks_sets(self):
        small = run([wr(0, X)])
        big = run(
            [fork(0, 1), wr(0, X), acq(0, L), rel(0, L), acq(1, L), rd(1, X)]
        )
        assert big.footprint_words() > small.footprint_words()


class TestEquivalences:
    def _truth(self, trace):
        oracle = HBOracle(trace)
        pairs = set()
        for accesses in oracle._by_var.values():
            for j, b in enumerate(accesses):
                for a in accesses[:j]:
                    if a.conflicts_with(b) and not a.happens_before(b):
                        pairs.add((a.index, b.index))
        return pairs

    def test_precision_on_random_traces(self):
        for seed in range(20):
            trace = random_trace(seed=seed, length=350)
            truth = self._truth(trace)
            d = run(trace)
            for race in d.races:
                assert (race.first_index, race.index) in truth

    def test_race_free_traces_clean(self):
        for seed in range(10):
            assert run(race_free_trace(seed=seed, length=250)).races == []

    def test_same_racy_variables_as_fasttrack(self):
        for seed in range(20):
            trace = random_trace(seed=seed, length=350)
            ft = FastTrackDetector()
            ft.run(trace)
            gl = run(trace)
            assert {r.var for r in gl.races} == {r.var for r in ft.races}

    def test_covers_fasttrack_shortest_races(self):
        """Every FASTTRACK race with no intervening conflicting access
        (a shortest race) is also reported by Goldilocks, identically."""
        key = lambda r: (  # noqa: E731
            r.var, r.kind, r.first_tid, r.first_site,
            r.second_tid, r.second_site, r.index,
        )
        for seed in range(25):
            trace = random_trace(seed=seed, length=350)
            ft = FastTrackDetector()
            ft.run(trace)
            gl = run(trace)
            gl_keys = {key(r) for r in gl.races}
            accesses = {}
            for i, e in enumerate(trace):
                if e.kind in ("rd", "wr"):
                    accesses.setdefault(e.target, []).append(i)
            for r in ft.races:
                intervening = any(
                    r.first_index < i < r.index for i in accesses.get(r.var, [])
                )
                if not intervening:
                    assert key(r) in gl_keys, (seed, r)
