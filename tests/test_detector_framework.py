"""The shared detector framework: dispatch, reports, event helpers."""

import pytest

from repro.detectors import FastTrackDetector, NullDetector
from repro.detectors.base import Race, distinct_races
from repro.trace import events as ev
from repro.trace.events import Event, access_events


class TestEventModule:
    def test_constructors_set_fields(self):
        e = ev.wr(3, 7, 9)
        assert (e.kind, e.tid, e.target, e.site) == ("wr", 3, 7, 9)
        assert ev.acq(1, 2).kind == "acq"
        assert ev.fork(0, 1).target == 1
        assert ev.vol_wr(2, 5).kind == "vol_wr"

    def test_global_markers_have_no_thread(self):
        assert ev.sbegin().tid == -1
        assert ev.send().tid == -1

    def test_kind_sets_consistent(self):
        assert ev.SYNC_KINDS <= ev.KINDS
        assert ev.ACCESS_KINDS <= ev.KINDS
        assert not (ev.SYNC_KINDS & ev.ACCESS_KINDS)

    def test_access_events_filter(self):
        trace = [ev.fork(0, 1), ev.wr(0, 1), ev.acq(0, 2), ev.rd(1, 1)]
        assert [e.kind for e in access_events(trace)] == ["wr", "rd"]

    def test_str_forms(self):
        assert str(ev.sbegin()) == "sbegin"
        assert "t0" in str(ev.wr(0, 1, 2))


class TestRaceRecord:
    def test_distinct_key(self):
        r = Race(1, "ww", 0, 1, 10, 1, 20)
        assert r.distinct_key == (10, 20)

    def test_distinct_races_helper(self):
        races = [
            Race(1, "ww", 0, 1, 10, 1, 20),
            Race(1, "ww", 0, 2, 10, 1, 20),  # same sites, later instance
            Race(2, "wr", 0, 1, 11, 1, 21),
        ]
        assert distinct_races(races) == {(10, 20), (11, 21)}

    def test_str(self):
        text = str(Race(1, "rw", 0, 1, 10, 1, 20))
        assert "rw" in text and "site10" in text


class TestDispatch:
    def test_run_returns_race_list(self):
        d = FastTrackDetector()
        result = d.run([ev.fork(0, 1), ev.wr(0, 1, 1), ev.wr(1, 1, 2)])
        assert result is d.races
        assert len(result) == 1

    def test_now_tracks_event_index(self):
        d = FastTrackDetector()
        d.run([ev.fork(0, 1), ev.wr(0, 1), ev.wr(1, 1)])
        assert d.races[0].index == 2
        assert d.races[0].first_index == 1

    def test_method_events_ignored_by_default(self):
        d = FastTrackDetector()
        d.run(
            [
                Event("m_enter", 0, 5, 0),
                ev.wr(0, 1),
                Event("m_exit", 0, 5, 0),
                Event("alloc", 0, 64, 1),
            ]
        )
        assert d.counters.writes == 1

    def test_n_threads_counts_forked(self):
        d = NullDetector()
        d.run([ev.fork(0, 1), ev.fork(1, 2)])
        assert d.n_threads == 3

    def test_n_threads_minimum_one(self):
        assert NullDetector().n_threads == 1

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            NullDetector().apply(Event("??", 0, 0, 0))

    def test_abstract_detector_rejects_accesses(self):
        from repro.detectors.base import Detector

        with pytest.raises(NotImplementedError):
            Detector().read(0, 1)
