"""End-to-end integration: workloads -> runtime -> detectors -> analysis."""

import random

import pytest

from repro import FastTrackDetector, PacerDetector
from repro.analysis import DetectionExperiment, run_trial
from repro.core.sampling import BiasCorrectedController, ScriptedController
from repro.detectors import EraserDetector, LiteRaceDetector, NullDetector
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.scheduler import run_program
from repro.sim.workloads import ECLIPSE, PSEUDOJBB, build_program, volatile_flag

QUICK = RuntimeConfig(track_memory=False)


class TestProportionalityEndToEnd:
    def test_detection_scales_with_rate(self):
        """The headline claim, in miniature: detection rate ~ sampling rate."""
        spec = PSEUDOJBB.scaled(0.6)
        exp = DetectionExperiment(spec, full_trials=6, config=QUICK)
        exp.run_baseline()
        low = exp.run_rate(0.05, trials=12, seed_base=100)
        high = exp.run_rate(0.5, trials=12, seed_base=200)
        d_low = low.dynamic_detection_rate(exp.baseline_dynamic)
        d_high = high.dynamic_detection_rate(exp.baseline_dynamic)
        assert d_high > d_low
        assert d_high > 0.2
        assert d_low < 0.25

    def test_dynamic_rate_tracks_effective_rate(self):
        spec = PSEUDOJBB.scaled(0.6)
        exp = DetectionExperiment(spec, full_trials=6, config=QUICK)
        exp.run_baseline()
        acc = exp.run_rate(0.3, trials=15, seed_base=300)
        dyn = acc.dynamic_detection_rate(exp.baseline_dynamic)
        eff = acc.mean_effective_rate
        assert abs(dyn - eff) < 0.15


class TestOverheadOrdering:
    def test_work_ordering_across_configs(self):
        """fast-path-only < pacer r~50% < always-on FASTTRACK (slow ops)."""
        trace_events = []
        program = build_program(PSEUDOJBB.scaled(0.5), trial_seed=0)
        from repro.sim.scheduler import Scheduler

        s = Scheduler(program, seed=0, sink=trace_events.append)
        s.run()

        def slow_ops(detector, controller=None):
            rt_program = build_program(PSEUDOJBB.scaled(0.5), trial_seed=0)
            rt = Runtime(rt_program, detector, controller=controller, config=QUICK)
            rt.run()
            c = detector.counters
            return (
                c.reads_slow_sampling
                + c.reads_slow_nonsampling
                + c.writes_slow_sampling
                + c.writes_slow_nonsampling
            )

        zero = slow_ops(PacerDetector())
        half = slow_ops(
            PacerDetector(), ScriptedController([True, False] * 10_000)
        )
        full = slow_ops(FastTrackDetector())
        assert zero < half < full

    def test_pacer_space_below_fasttrack(self):
        config = RuntimeConfig(track_memory=True, full_gc_every=2)
        ft_rt = Runtime(
            build_program(PSEUDOJBB.scaled(0.5), 0), FastTrackDetector(), config=config
        )
        ft_rt.run()
        pacer_rt = Runtime(
            build_program(PSEUDOJBB.scaled(0.5), 0),
            PacerDetector(),
            controller=BiasCorrectedController(0.05, rng=random.Random(1)),
            config=config,
        )
        pacer_rt.run()
        ft_meta = ft_rt.snapshots[-1].metadata_words
        pacer_meta = pacer_rt.snapshots[-1].metadata_words
        assert pacer_meta < ft_meta / 2


class TestDetectorZoo:
    def test_all_detectors_run_a_workload(self):
        trace = run_program(build_program(PSEUDOJBB.scaled(0.3), 0), seed=0)
        for det in (
            NullDetector(),
            FastTrackDetector(),
            PacerDetector(sampling=True),
            LiteRaceDetector(seed=0),
            EraserDetector(),
        ):
            det.run(trace)  # must not raise

    def test_volatile_flag_micro(self):
        trace = run_program(volatile_flag(30), seed=2)
        ft = FastTrackDetector()
        ft.run(trace)
        # the deliberate slip (var 2) always races; the data variable may
        # race only under run-ahead schedules
        assert 2 in {r.var for r in ft.races}
        assert {r.var for r in ft.races} <= {1, 2}

    def test_eclipse_trial_pipeline(self):
        result = run_trial(
            ECLIPSE.scaled(0.4), FastTrackDetector(), trial_seed=0, config=QUICK
        )
        assert result.events > 5_000
        assert result.threads_started == ECLIPSE.threads_total
        assert len(result.detected_ids) > 5
