"""Determinism regressions for the sharded parallel experiment runner.

The §5 accuracy methodology only makes sense if a trial is a pure
function of its :class:`TrialTask`: fanning the matrix across processes
must not change a single result.  These tests pin that from three
angles — recorded traces are byte-identical across runs of the same
seed, ``run_matrix`` output is invariant in the number of jobs and in
shard ordering, and per-trial seeding never goes through Python's
randomized builtin ``hash``.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.parallel import (
    TrialTask,
    default_jobs,
    expand_matrix,
    merge_matrix,
    run_matrix,
    run_trial_task,
    task_seed,
)
from repro.sim.scheduler import run_program
from repro.sim.workloads import WORKLOADS, build_program
from repro.trace.binio import dumps_binary

SCALE = 0.12  # keep trials small; determinism is scale-independent

TASKS = expand_matrix(
    workloads=["pseudojbb", "xalan"],
    detectors=["fasttrack", "pacer"],
    rates=[0.05, 0.25],
    seeds=range(3),
    scale=SCALE,
)


def _record_bytes(workload: str, seed: int) -> bytes:
    spec = WORKLOADS[workload].scaled(SCALE)
    trace = run_program(build_program(spec, trial_seed=seed), seed=seed)
    return dumps_binary(trace)


@pytest.mark.parametrize("workload", ["pseudojbb", "hsqldb"])
def test_same_seed_records_byte_identical_traces(workload):
    first = _record_bytes(workload, seed=5)
    second = _record_bytes(workload, seed=5)
    assert first == second
    assert first != _record_bytes(workload, seed=6)


def test_task_seed_is_stable_and_hash_free():
    """Seeds are CRC-derived: stable values, not PYTHONHASHSEED-dependent."""
    task = TrialTask("pseudojbb", "pacer", 0.05, 3, 0.5)
    assert task_seed(task) == task_seed(TrialTask("pseudojbb", "pacer", 0.05, 3, 0.5))
    # distinct cells get distinct seeds (the controller RNGs must differ)
    seeds = {task_seed(t) for t in TASKS}
    assert len(seeds) == len(TASKS)


def test_trial_task_is_pure():
    task = TrialTask("xalan", "pacer", 0.25, 1, SCALE)
    a = run_trial_task(task)
    random.seed(1234)  # global RNG state must be irrelevant
    b = run_trial_task(task)
    assert a == b
    assert a.race_sigs == b.race_sigs
    assert a.counters == b.counters


def test_run_matrix_output_independent_of_jobs():
    sequential = run_matrix(TASKS, jobs=1)
    fanned = run_matrix(TASKS, jobs=3)
    assert sequential == fanned
    # wall-clock perf differs between runs but is excluded from equality
    assert [s.race_sigs for s in sequential] == [s.race_sigs for s in fanned]
    assert [s.counters for s in sequential] == [s.counters for s in fanned]


def test_run_matrix_output_independent_of_shard_count():
    one_big_shard = run_matrix(TASKS, jobs=2, shards_per_job=1)
    many_shards = run_matrix(TASKS, jobs=2, shards_per_job=6)
    assert one_big_shard == many_shards


def test_run_matrix_output_independent_of_task_order():
    forward = run_matrix(TASKS, jobs=2)
    shuffled = list(TASKS)
    random.Random(7).shuffle(shuffled)
    backward = run_matrix(shuffled, jobs=2)
    by_task_fwd = dict(zip(TASKS, forward))
    by_task_bwd = dict(zip(shuffled, backward))
    assert by_task_fwd == by_task_bwd


def test_merge_matrix_folds_seeds():
    results = run_matrix(TASKS, jobs=1)
    merged = merge_matrix(TASKS, results)
    keys = set(merged)
    assert ("pseudojbb", "fasttrack", None) in keys
    assert ("xalan", "pacer", 0.25) in keys
    cell = merged[("pseudojbb", "pacer", 0.05)]
    parts = [
        s for t, s in zip(TASKS, results)
        if (t.workload, t.detector, t.rate) == ("pseudojbb", "pacer", 0.05)
    ]
    assert cell.events == sum(p.events for p in parts)
    assert cell.races == sum(p.races for p in parts)
    assert cell.race_sigs == tuple(
        sig for p in parts for sig in p.race_sigs
    )
    assert cell.distinct_keys == tuple(
        sorted({k for p in parts for k in p.distinct_keys})
    )


def test_rate_rejected_for_non_pacer():
    with pytest.raises(ValueError):
        run_trial_task(TrialTask("xalan", "fasttrack", 0.5, 0, SCALE))


class TestDefaultJobs:
    def test_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_unset_means_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_nonpositive_clamped_silently(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert default_jobs() == 1
        assert capsys.readouterr().err == ""

    def test_unparsable_value_warns_on_stderr(self, monkeypatch, capsys):
        """A typo'd REPRO_JOBS=8x must not silently serialise a campaign."""
        monkeypatch.setenv("REPRO_JOBS", "8x")
        assert default_jobs() == 1
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err
        assert "'8x'" in err
        assert "1 job" in err
