"""The ``repro explain`` command: structured reports end to end."""

import json

import pytest

from repro.cli import main
from repro.obs.reports import REPORT_SCHEMA, validate_report
from repro.obs.perfetto import PID_RACES, validate_chrome_trace
from repro.sim.workloads import describe_site
from repro.sim.workloads.base import LOCK_BASE, RACY_SITE_BASE


@pytest.fixture(scope="module")
def explain_outputs(tmp_path_factory):
    """One ``repro explain micro`` run with every sink enabled."""
    out = tmp_path_factory.mktemp("explain")
    report = out / "races.report.json"
    markdown = out / "races.md"
    trace = out / "explain.trace.json"
    code = main(
        [
            "explain",
            "micro",
            "--seed",
            "3",
            "--report-out",
            str(report),
            "--markdown-out",
            str(markdown),
            "--trace-out",
            str(trace),
        ]
    )
    assert code == 0
    return {
        "report": json.loads(report.read_text()),
        "markdown": markdown.read_text(),
        "trace": json.loads(trace.read_text()),
    }


class TestExplainReport:
    def test_report_is_schema_valid(self, explain_outputs):
        doc = explain_outputs["report"]
        assert doc["schema"] == REPORT_SCHEMA
        assert validate_report(doc) == []
        assert doc["source"] == "explain"
        assert doc["detector"] == "fasttrack"
        assert doc["dynamic_races"] >= 1

    def test_witness_names_the_injected_site_pair(self, explain_outputs):
        """Acceptance: the witness belongs to the correct racy site pair."""
        doc = explain_outputs["report"]
        injected = [
            g
            for g in doc["races"]
            if isinstance(g["first_site"], int)
            and RACY_SITE_BASE <= g["first_site"] < LOCK_BASE
        ]
        assert injected, "micro's injected races must be reported"
        for g in injected:
            assert RACY_SITE_BASE <= g["second_site"] < LOCK_BASE
            assert g["first_site_name"] == describe_site(g["first_site"])
            assert g["first_site_name"].startswith("race#")
            witness = g["witness"]
            assert witness is not None
            # precise detector, exact sync index: a real race shows either
            # no release at all or a sync gap — never an ordering edge
            assert witness["verdict"] in ("no-release", "sync-gap")
            assert witness["source"] == "trace"
            assert witness["complete"] is True

    def test_sync_gap_witness_explains_the_gap(self, explain_outputs):
        doc = explain_outputs["report"]
        verdicts = {g["witness"]["verdict"] for g in doc["races"] if g["witness"]}
        for g in doc["races"]:
            witness = g["witness"]
            if witness and witness["verdict"] == "sync-gap":
                assert "no common object connects" in witness["summary"]
                assert witness["releases_after_first"]
        assert verdicts <= {"no-release", "sync-gap"}

    def test_context_captured_for_racing_accesses(self, explain_outputs):
        doc = explain_outputs["report"]
        with_context = [g for g in doc["races"] if g.get("context")]
        assert with_context
        ctx = with_context[0]["context"]
        assert ctx["second"]["events"]
        assert ctx["second"]["complete"] is True

    def test_markdown_rendering(self, explain_outputs):
        text = explain_outputs["markdown"]
        assert text.startswith("# Race report")
        assert "## Race 1:" in text
        assert "witness" in text


class TestExplainFlowArrows:
    def test_trace_has_race_flow_pairs(self, explain_outputs):
        """Acceptance: each reported race appears as a Perfetto flow arrow."""
        doc = explain_outputs["trace"]
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        starts = {e["id"]: e for e in events if e.get("ph") == "s"}
        finishes = {e["id"]: e for e in events if e.get("ph") == "f"}
        assert starts, "expected at least one flow arrow"
        assert set(starts) == set(finishes)
        report = explain_outputs["report"]
        assert len(starts) == min(report["dynamic_races"], 256)
        for fid, s in starts.items():
            f = finishes[fid]
            assert s["pid"] == f["pid"] == PID_RACES
            assert f["bp"] == "e"
            assert s["ts"] <= f["ts"]


class TestExplainModes:
    def test_explain_recorded_trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        assert main(["record", "micro", str(path), "--seed", "1"]) == 0
        capsys.readouterr()
        assert main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dynamic race reports" in out
        assert "race 1:" in out

    def test_json_output(self, capsys):
        assert main(["explain", "micro", "--seed", "3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == REPORT_SCHEMA
        assert validate_report(doc) == []

    def test_pacer_discard_attribution(self, capsys):
        assert main(["explain", "micro", "--seed", "1", "--detector", "pacer",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_report(doc) == []
        # replayed without a sampling controller: PACER samples nothing,
        # reports nothing, and every shortest race gets an attribution
        assert doc["dynamic_races"] == 0
        assert doc["discarded"]
        for entry in doc["discarded"]:
            assert "sampling period" in entry["reason"]
            assert entry["kind"] in ("ww", "wr", "rw")

    def test_unknown_trace_or_workload_rejected(self, capsys):
        assert main(["explain", "no-such-thing"]) == 2
        assert "neither a trace file nor a workload" in capsys.readouterr().err

    def test_window_flag_accepted(self, tmp_path):
        report = tmp_path / "r.json"
        assert main(
            ["explain", "micro", "--seed", "3", "--window", "16",
             "--report-out", str(report)]
        ) == 0
        doc = json.loads(report.read_text())
        contexts = [g["context"] for g in doc["races"] if g.get("context")]
        assert contexts and contexts[0]["window"] == 16
