"""The real-threads frontend (repro.live)."""

from repro import PacerDetector
from repro.live import RaceMonitor


def spawn_and_join(mon, target, n):
    threads = [mon.thread(target) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return threads


class TestRacyPrograms:
    def test_unsynchronized_counter_reported(self):
        mon = RaceMonitor()
        counter = mon.shared("counter", 0)

        def bump():
            for _ in range(30):
                counter.set(counter.get() + 1)

        spawn_and_join(mon, bump, 3)
        assert len(mon.detector.races) > 0

    def test_report_names_real_source_lines(self):
        mon = RaceMonitor()
        flag = mon.shared("flag", False)

        def poke():
            flag.set(True)

        spawn_and_join(mon, poke, 2)
        assert mon.detector.races
        text = mon.describe_races()
        assert "test_live.py" in text


class TestCleanPrograms:
    def test_locked_counter_clean(self):
        mon = RaceMonitor()
        counter = mon.shared("counter", 0)
        lock = mon.lock("guard")

        def bump():
            for _ in range(30):
                with lock:
                    counter.set(counter.get() + 1)

        spawn_and_join(mon, bump, 3)
        assert mon.detector.races == []
        assert counter.get() == 90

    def test_fork_join_publication_clean(self):
        mon = RaceMonitor()
        box = mon.shared("box", None)

        def child():
            box.set("written-by-child")

        box.set("init")
        t = mon.thread(child)
        t.start()
        t.join()
        assert box.get() == "written-by-child"
        assert mon.detector.races == []

    def test_volatile_publication_clean(self):
        mon = RaceMonitor()
        data = mon.shared("data", 0)
        ready = mon.volatile("ready", False)

        def producer():
            data.set(42)
            ready.set(True)

        t = mon.thread(producer)
        t.start()
        t.join()  # join also orders, but the volatile edge alone suffices
        assert ready.get() is True
        assert data.get() == 42
        assert mon.detector.races == []


class TestMonitorMachinery:
    def test_custom_detector_accepted(self):
        mon = RaceMonitor(detector=PacerDetector(sampling=True))
        v = mon.shared("v", 0)

        def touch():
            v.set(1)

        spawn_and_join(mon, touch, 2)
        assert len(mon.detector.races) > 0

    def test_variable_names_interned(self):
        mon = RaceMonitor()
        a1 = mon.shared("same", 0)
        a2 = mon.shared("same", 0)
        assert a1._var == a2._var
        assert mon.shared("other", 0)._var != a1._var

    def test_reentrant_tracked_lock(self):
        mon = RaceMonitor()
        lock = mon.lock("re")
        with lock:
            with lock:
                pass  # no deadlock, no error

    def test_site_names_resolvable(self):
        mon = RaceMonitor()
        v = mon.shared("v", 0)
        v.set(1)
        site = next(iter(mon._site_names))
        assert ":" in mon.site_name(site)
        assert mon.site_name(99_999).startswith("site#")


class TestSamplingDriver:
    def _racy_run(self, rate, seed=0):
        import random

        from repro.core.pacer import PacerDetector
        from repro.live import SamplingDriver

        mon = RaceMonitor(detector=PacerDetector())
        v = mon.shared("v", 0)

        def churn():
            for _ in range(300):
                v.set(v.get() + 1)

        driver = SamplingDriver(
            mon, rate=rate, period_s=0.001, rng=random.Random(seed)
        )
        with driver:
            spawn_and_join(mon, churn, 3)
        return mon, driver

    def test_always_sampling_detects(self):
        mon, driver = self._racy_run(rate=1.0)
        assert driver.sampled_periods == driver.periods
        assert len(mon.detector.races) > 0

    def test_never_sampling_detects_nothing(self):
        mon, driver = self._racy_run(rate=0.0)
        assert driver.sampled_periods == 0
        assert mon.detector.races == []
        assert mon.detector.tracked_variables == 0

    def test_stop_leaves_sampling_off(self):
        mon, driver = self._racy_run(rate=1.0)
        assert mon.detector.sampling is False

    def test_rate_validated(self):
        from repro.live import SamplingDriver

        mon = RaceMonitor()
        import pytest

        with pytest.raises(ValueError):
            SamplingDriver(mon, rate=1.5)


class TestFinalizeSemantics:
    """Regression: finalize must be idempotent *and* re-entrant.

    The telemetry server finalizes a session's observer at every
    disconnect and query, then again after a resume delivers more
    events.  Historically the totals were written with ``inc()``, so a
    second finalize double-counted every metric; now they are absolute
    assignments guarded by a state snapshot.
    """

    def _observed_racy_run(self):
        from repro.obs import RunObserver

        obs = RunObserver()
        mon = RaceMonitor(observer=obs)
        counter = mon.shared("counter", 0)

        def bump():
            for _ in range(10):
                counter.set(counter.get() + 1)

        spawn_and_join(mon, bump, 2)
        return mon, obs

    def test_double_finalize_is_a_noop(self):
        mon, obs = self._observed_racy_run()
        mon.finalize()
        first = obs.registry.snapshot()
        first_timeline = len(obs.timeline)
        mon.finalize()
        mon.finalize()
        assert obs.registry.snapshot() == first
        # a repeat with identical detector state emits no extra probe
        assert len(obs.timeline) == first_timeline

    def test_refinalize_after_more_events_refreshes(self):
        mon, obs = self._observed_racy_run()
        mon.finalize()
        events_before = obs.registry.counter("events").value
        races_before = obs.registry.counter("races").value

        counter = mon.shared("counter2", 0)

        def bump():
            for _ in range(10):
                counter.set(counter.get() + 1)

        spawn_and_join(mon, bump, 2)
        mon.finalize()
        reg = obs.registry
        # absolute totals: refreshed to the new state, never doubled
        assert reg.counter("events").value == mon.detector._events_seen
        assert reg.counter("events").value > events_before
        assert reg.counter("races").value == len(mon.detector.races)
        assert reg.counter("races").value >= races_before
        assert reg.counter("distinct_races").value == len(
            mon.detector.distinct_races
        )

    def test_finalize_after_disconnect_matches_offline(self):
        """Server-style finalize(disconnect) + finalize(close) equals a
        single offline finalize over the same events."""
        from repro.cli import DETECTORS
        from repro.obs import RunObserver
        from repro.trace.generator import random_trace

        events = list(random_trace(length=300, seed=3).events)
        half = len(events) // 2

        # offline baseline: one run, one finalize
        base = DETECTORS["fasttrack"]()
        base_obs = RunObserver()
        base_obs.attach(base)
        base.run(events)
        base_obs.finalize(base)

        # streamed shape: finalize mid-stream (disconnect), then resume
        det = DETECTORS["fasttrack"]()
        obs = RunObserver()
        obs.attach(det)
        det.run(events[:half])
        obs.finalize(det)  # disconnect folds progress
        det.run(events[half:])
        obs.finalize(det)  # clean close
        assert obs.registry.snapshot() == base_obs.registry.snapshot()
