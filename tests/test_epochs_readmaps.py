"""Unit tests for read maps (epoch/shared representations)."""

import pytest

from repro.core.clocks import Epoch, ReadMap, VectorClock


class TestReadMapEpochMode:
    def test_starts_as_epoch(self):
        r = ReadMap(2, 5, site=9)
        assert r.is_epoch
        assert len(r) == 1
        assert r.epoch == Epoch(5, 2)
        assert r.site == 9

    def test_get(self):
        r = ReadMap(2, 5)
        assert r.get(2) == 5
        assert r.get(3) == 0

    def test_entries(self):
        r = ReadMap(2, 5, site=9, index=42)
        assert list(r.entries()) == [(2, 5, 9, 42)]

    def test_set_epoch_overwrites(self):
        r = ReadMap(2, 5)
        r.set_epoch(3, 7, site=1, index=10)
        assert r.is_epoch
        assert r.epoch == Epoch(7, 3)
        assert r.get(2) == 0

    def test_record_same_thread_stays_epoch(self):
        r = ReadMap(2, 5)
        r.record(2, 6, site=4)
        assert r.is_epoch
        assert r.epoch == Epoch(6, 2)


class TestReadMapSharedMode:
    def test_record_other_thread_inflates(self):
        r = ReadMap(2, 5, site=9)
        r.record(3, 7, site=8)
        assert not r.is_epoch
        assert len(r) == 2
        assert r.get(2) == 5
        assert r.get(3) == 7

    def test_epoch_accessors_raise_when_shared(self):
        r = ReadMap(2, 5)
        r.record(3, 7)
        with pytest.raises(ValueError):
            _ = r.epoch
        with pytest.raises(ValueError):
            _ = r.site

    def test_record_updates_existing_entry(self):
        r = ReadMap(2, 5)
        r.record(3, 7)
        r.record(3, 9)
        assert r.get(3) == 9
        assert len(r) == 2

    def test_discard_epoch_owner(self):
        r = ReadMap(2, 5)
        assert r.discard(2) is True

    def test_discard_epoch_non_owner(self):
        r = ReadMap(2, 5)
        assert r.discard(3) is False
        assert r.get(2) == 5

    def test_discard_from_map(self):
        r = ReadMap(2, 5)
        r.record(3, 7)
        assert r.discard(2) is False
        assert r.get(3) == 7
        assert r.get(2) == 0

    def test_discard_does_not_deflate_to_epoch(self):
        # A deflated map would later be treated as an "exclusive" epoch
        # and discarded wholesale by PACER's Rule 2, losing a sampled read.
        r = ReadMap(2, 5)
        r.record(3, 7)
        r.discard(2)
        assert not r.is_epoch
        assert len(r) == 1

    def test_discard_until_empty(self):
        r = ReadMap(2, 5)
        r.record(3, 7)
        assert r.discard(2) is False
        assert r.discard(3) is True

    def test_discard_absent_from_map(self):
        r = ReadMap(2, 5)
        r.record(3, 7)
        assert r.discard(9) is False
        assert len(r) == 2


class TestReadMapComparisons:
    def test_leq_vc_epoch(self):
        r = ReadMap(1, 3)
        assert r.leq_vc(VectorClock([0, 3]))
        assert not r.leq_vc(VectorClock([0, 2]))

    def test_leq_vc_map(self):
        r = ReadMap(0, 2)
        r.record(1, 4)
        assert r.leq_vc(VectorClock([2, 4]))
        assert not r.leq_vc(VectorClock([2, 3]))
        assert not r.leq_vc(VectorClock([1, 4]))

    def test_racing_entries_epoch(self):
        r = ReadMap(1, 3, site=7, index=20)
        assert r.racing_entries(VectorClock([0, 2])) == [(1, 3, 7, 20)]
        assert r.racing_entries(VectorClock([0, 3])) == []

    def test_racing_entries_map(self):
        r = ReadMap(0, 2, site=5)
        r.record(1, 4, site=6)
        racing = r.racing_entries(VectorClock([2, 3]))
        assert [(t, c, s) for t, c, s, _ in racing] == [(1, 4, 6)]

    def test_words_grows_with_entries(self):
        r = ReadMap(0, 1)
        epoch_words = r.words()
        r.record(1, 1)
        r.record(2, 1)
        assert r.words() > epoch_words
