"""Unit tests for version epochs and sharable clocks."""

import pytest

from repro.core.metadata import SyncMeta, ThreadMeta
from repro.core.versioning import (
    BOTTOM_VE,
    SharableClock,
    TOP_VE,
    VE_BOTTOM,
    VE_TOP,
    VersionEpoch,
    pack_vepoch,
    unpack_vepoch,
)


class TestVersionEpochs:
    def test_sentinels_are_distinct(self):
        assert BOTTOM_VE is not TOP_VE
        assert BOTTOM_VE != TOP_VE

    def test_sentinels_differ_from_real_epochs(self):
        real = VersionEpoch(3, 1)
        assert real not in (BOTTOM_VE, TOP_VE)

    def test_version_epoch_fields(self):
        ve = VersionEpoch(7, 4)
        assert ve.version == 7 and ve.tid == 4

    def test_str(self):
        assert str(VersionEpoch(2, 3)) == "v2@3"

    def test_packed_sentinels_distinct_from_real(self):
        assert VE_BOTTOM != VE_TOP
        real = pack_vepoch(1, 0)
        assert real not in (VE_BOTTOM, VE_TOP)

    def test_pack_unpack_round_trip(self):
        assert unpack_vepoch(pack_vepoch(7, 4)) == VersionEpoch(7, 4)
        assert unpack_vepoch(VE_BOTTOM) is BOTTOM_VE
        assert unpack_vepoch(VE_TOP) is TOP_VE

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_vepoch(0, 0)  # version 0 is reserved for the sentinel
        with pytest.raises(ValueError):
            pack_vepoch(1, -1)


class TestSharableClock:
    def test_starts_unshared(self):
        clock = SharableClock()
        assert clock.shared is False

    def test_clone_is_deep_and_unshared(self):
        clock = SharableClock([1, 2])
        clock.shared = True
        clone = clock.clone()
        assert clone.shared is False
        clone.increment(0)
        assert clock.get(0) == 1
        assert clone.get(0) == 2

    def test_copy_aliases_clone(self):
        clock = SharableClock([5])
        clock.shared = True
        assert clock.copy().shared is False

    def test_inherits_vector_clock_ops(self):
        a = SharableClock([1, 0])
        b = SharableClock([0, 2])
        a.join(b)
        assert a.get(1) == 2

    def test_clone_after_sharing_never_aliases_components(self):
        # Regression: a clone taken after shared=True must own its own
        # component list — otherwise a later increment on the clone would
        # silently corrupt every sync object referencing the original.
        clock = SharableClock([4, 7])
        clock.shared = True
        for fresh in (clock.clone(), clock.copy()):
            assert fresh._c is not clock._c
            fresh.increment(1)
            assert clock.get(1) == 7


class TestMetadataInitialState:
    def test_thread_meta_equation7(self):
        # sigma_0: C_t = inc_t(bottom), ver_t = inc_t(bottom)
        meta = ThreadMeta(3)
        assert meta.clock.get(3) == 1
        assert meta.clock.get(0) == 0
        assert meta.ver.get(3) == 1
        assert meta.alive

    def test_thread_vepoch(self):
        meta = ThreadMeta(2)
        assert meta.vepoch(2) == pack_vepoch(1, 2)
        meta.ver.increment(2)
        assert meta.vepoch(2) == pack_vepoch(2, 2)

    def test_sync_meta_initial(self):
        sync = SyncMeta()
        assert sync.vepoch == VE_BOTTOM
        assert len(sync.clock) == 0


class TestFootprintReference:
    def test_reference_footprint_tracks_detector_footprint(self):
        """metadata.footprint_words is the reference accounting; the
        detector's own accounting must agree within representation slack
        and move in the same direction as metadata grows."""
        from repro.core.metadata import footprint_words
        from repro.core.pacer import PacerDetector
        from repro.trace.generator import random_trace

        def reference(d):
            return footprint_words(
                sum(state.words() for state in d._vars.values()),
                [m.clock for m in d._thread.values()]
                + [s.clock for s in list(d._lock.values()) + list(d._vol.values())],
                versions=[m.ver for m in d._thread.values()],
            )

        small = PacerDetector(sampling=True, backend="object")
        small.run(random_trace(seed=1, length=50))
        big = PacerDetector(sampling=True, backend="object")
        big.run(random_trace(seed=1, length=800, n_vars=30))
        for d in (small, big):
            ref, own = reference(d), d.footprint_words()
            assert ref > 0 and own > 0
            assert 0.3 < own / ref < 3.0
        assert reference(big) > reference(small)

    def test_reference_counts_shared_clocks_once(self):
        from repro.core.metadata import footprint_words
        from repro.core.versioning import SharableClock
        from repro.core.clocks import VectorClock

        clock = SharableClock([1, 2, 3])
        shared = footprint_words(clocks=[clock, clock, clock])
        separate = footprint_words(
            clocks=[SharableClock([1, 2, 3]) for _ in range(3)]
        )
        assert shared < separate
