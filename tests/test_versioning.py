"""Unit tests for version epochs and sharable clocks."""

from repro.core.metadata import SyncMeta, ThreadMeta
from repro.core.versioning import BOTTOM_VE, SharableClock, TOP_VE, VersionEpoch


class TestVersionEpochs:
    def test_sentinels_are_distinct(self):
        assert BOTTOM_VE is not TOP_VE
        assert BOTTOM_VE != TOP_VE

    def test_sentinels_differ_from_real_epochs(self):
        real = VersionEpoch(3, 1)
        assert real not in (BOTTOM_VE, TOP_VE)

    def test_version_epoch_fields(self):
        ve = VersionEpoch(7, 4)
        assert ve.version == 7 and ve.tid == 4

    def test_str(self):
        assert str(VersionEpoch(2, 3)) == "v2@3"


class TestSharableClock:
    def test_starts_unshared(self):
        clock = SharableClock()
        assert clock.shared is False

    def test_clone_is_deep_and_unshared(self):
        clock = SharableClock([1, 2])
        clock.shared = True
        clone = clock.clone()
        assert clone.shared is False
        clone.increment(0)
        assert clock.get(0) == 1
        assert clone.get(0) == 2

    def test_copy_aliases_clone(self):
        clock = SharableClock([5])
        clock.shared = True
        assert clock.copy().shared is False

    def test_inherits_vector_clock_ops(self):
        a = SharableClock([1, 0])
        b = SharableClock([0, 2])
        a.join(b)
        assert a.get(1) == 2


class TestMetadataInitialState:
    def test_thread_meta_equation7(self):
        # sigma_0: C_t = inc_t(bottom), ver_t = inc_t(bottom)
        meta = ThreadMeta(3)
        assert meta.clock.get(3) == 1
        assert meta.clock.get(0) == 0
        assert meta.ver.get(3) == 1
        assert meta.alive

    def test_thread_vepoch(self):
        meta = ThreadMeta(2)
        assert meta.vepoch(2) == VersionEpoch(1, 2)
        meta.ver.increment(2)
        assert meta.vepoch(2) == VersionEpoch(2, 2)

    def test_sync_meta_initial(self):
        sync = SyncMeta()
        assert sync.vepoch is BOTTOM_VE
        assert len(sync.clock) == 0


class TestFootprintReference:
    def test_reference_footprint_tracks_detector_footprint(self):
        """metadata.footprint_words is the reference accounting; the
        detector's own accounting must agree within representation slack
        and move in the same direction as metadata grows."""
        from repro.core.metadata import footprint_words
        from repro.core.pacer import PacerDetector
        from repro.trace.generator import random_trace

        def reference(d):
            return footprint_words(
                d._vars,
                {t: m.clock for t, m in d._thread.items()},
                {t: m.ver for t, m in d._thread.items()},
                {
                    key: s.clock
                    for key, s in list(d._lock.items()) + list(d._vol.items())
                },
            )

        small = PacerDetector(sampling=True)
        small.run(random_trace(seed=1, length=50))
        big = PacerDetector(sampling=True)
        big.run(random_trace(seed=1, length=800, n_vars=30))
        for d in (small, big):
            ref, own = reference(d), d.footprint_words()
            assert ref > 0 and own > 0
            assert 0.3 < own / ref < 3.0
        assert reference(big) > reference(small)

    def test_reference_counts_shared_clocks_once(self):
        from repro.core.metadata import footprint_words
        from repro.core.versioning import SharableClock
        from repro.core.clocks import VectorClock

        clock = SharableClock([1, 2, 3])
        shared = footprint_words({}, {0: clock, 1: clock}, {}, {2: clock})
        separate = footprint_words(
            {}, {0: SharableClock([1, 2, 3]), 1: SharableClock([1, 2, 3])},
            {}, {2: SharableClock([1, 2, 3])},
        )
        assert shared < separate
