"""The analysis layer: trial driver, detection experiment, tables."""

import pytest

from repro import FastTrackDetector, PacerDetector
from repro.analysis import (
    DetectionExperiment,
    race_id_of,
    render_series,
    render_table,
    run_trial,
)
from repro.analysis.tables import fmt, mean, stdev
from repro.core.sampling import ScriptedController
from repro.detectors.base import Race
from repro.sim.runtime import RuntimeConfig
from repro.sim.workloads import PSEUDOJBB
from repro.util.config import num_trials_for_rate, scaled_trials


def make_race(var, first_site=1, second_site=2):
    return Race(var, "ww", 0, 1, first_site, 1, second_site)


class TestRaceIds:
    def test_injected_race_mapped(self):
        assert race_id_of(make_race(5_000)) == 0
        assert race_id_of(make_race(5_042)) == 42

    def test_background_var_unmapped(self):
        assert race_id_of(make_race(17)) is None


class TestTrialsFormula:
    def test_paper_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert num_trials_for_rate(0.01) == 500
        assert num_trials_for_rate(0.03) == 334
        assert num_trials_for_rate(1.0) == 50

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert num_trials_for_rate(1.0) == 5
        assert scaled_trials(50) == 5

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            num_trials_for_rate(0)


class TestRunTrial:
    def test_full_sampling_finds_frequent_races(self):
        result = run_trial(
            PSEUDOJBB,
            FastTrackDetector(),
            trial_seed=0,
            config=RuntimeConfig(track_memory=False),
        )
        assert len(result.detected_ids) >= 8
        assert result.threads_started == PSEUDOJBB.threads_total

    def test_pacer_zero_rate_finds_nothing(self):
        result = run_trial(
            PSEUDOJBB,
            PacerDetector(),
            trial_seed=0,
            config=RuntimeConfig(track_memory=False),
        )
        assert result.dynamic_counts == {}
        assert result.effective_rate == 0.0

    def test_pacer_full_rate_matches_fasttrack(self):
        ft = run_trial(
            PSEUDOJBB, FastTrackDetector(), 3, config=RuntimeConfig(track_memory=False)
        )
        pacer = run_trial(
            PSEUDOJBB,
            PacerDetector(),
            3,
            controller=ScriptedController([True] * 100_000),
            config=RuntimeConfig(track_memory=False),
        )
        assert pacer.detected_ids == ft.detected_ids
        assert pacer.effective_rate == 1.0


class TestDetectionExperiment:
    @pytest.fixture(scope="class")
    def experiment(self):
        exp = DetectionExperiment(
            PSEUDOJBB.scaled(0.6),
            full_trials=6,
            config=RuntimeConfig(track_memory=False),
        )
        exp.run_baseline()
        return exp

    def test_baseline_selects_frequent_races(self, experiment):
        assert len(experiment.evaluation_races) >= 8
        assert all(
            experiment.baseline_distinct[rid] >= 0.5
            for rid in experiment.evaluation_races
        )

    def test_occurrence_counts(self, experiment):
        counts = experiment.occurrence_counts()
        assert max(counts.values()) <= experiment.full_trials

    def test_rate_accuracy_roughly_proportional(self, experiment):
        acc = experiment.run_rate(0.25, trials=16)
        dyn = acc.dynamic_detection_rate(experiment.baseline_dynamic)
        assert 0.03 < dyn < 0.7  # proportional-ish at 25%
        assert acc.trials == 16

    def test_run_rate_requires_baseline(self):
        exp = DetectionExperiment(PSEUDOJBB, full_trials=2)
        with pytest.raises(RuntimeError):
            exp.run_rate(0.5, trials=1)

    def test_per_race_rates_vector(self, experiment):
        acc = experiment.run_rate(1.0, trials=3)
        rates = acc.per_race_rates(experiment.evaluation_races)
        assert len(rates) == len(experiment.evaluation_races)
        assert all(0.0 <= r <= 1.0 for r in rates)


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bee"], [[1, 2.5], [10, None]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "bee" in lines[1]
        assert "-" in lines[2]
        assert lines[3].strip().startswith("1")
        assert "-" in lines[4]  # None rendered as '-'

    def test_render_series(self):
        out = render_series("s", [1, 2], [0.5, 0.25])
        assert "s" in out and "->" in out

    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(1.234, 1) == "1.2"
        assert fmt("x") == "x"

    def test_mean_stdev(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert stdev([2, 2, 2]) == 0.0
        assert stdev([5]) == 0.0
        assert stdev([0, 2]) == 1.0
