"""The deterministic fault-injection plan and corruption helpers."""

from __future__ import annotations

import pytest

from repro.util.faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    INFINITE,
    execute_fault,
    flip_byte,
    truncate_bytes,
)


class TestGrammar:
    def test_index_selector(self):
        plan = FaultPlan.parse("crash@3")
        assert plan.rules == (FaultRule("crash", index=3),)

    def test_times_suffix(self):
        plan = FaultPlan.parse("hang@5*2")
        assert plan.rules[0].times == 2

    def test_inf_times_is_poison(self):
        rule = FaultPlan.parse("raise@7*inf").rules[0]
        assert rule.times == INFINITE
        assert rule.matches(7, 0, attempt=10**6)

    def test_seed_mod_selector(self):
        rule = FaultPlan.parse("corrupt@seed%13=4").rules[0]
        assert rule.mod == (13, 4)
        assert rule.matches(999, 13 * 5 + 4, attempt=1)
        assert not rule.matches(999, 13 * 5 + 3, attempt=1)

    def test_multiple_rules_first_match_wins(self):
        plan = FaultPlan.parse("crash@1; raise@1*inf")
        assert plan.match(1, 0, 1).kind == "crash"
        # after crash's single allowed attempt, the raise rule takes over
        assert plan.match(1, 0, 2).kind == "raise"

    def test_spec_round_trips(self):
        text = "crash@3;hang@5*2;raise@7*inf;corrupt@seed%13=4"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.spec()) == plan
        assert plan.spec() == text

    def test_no_match_returns_none(self):
        assert FaultPlan.parse("crash@3").match(4, 0, 1) is None

    @pytest.mark.parametrize(
        "bad",
        [
            "zap@3",            # unknown kind
            "crash",            # no selector
            "crash@",           # empty selector
            "crash@x",          # non-integer selector
            "crash@-1",         # negative index
            "crash@3*0",        # times < 1
            "crash@3*soon",     # non-integer times
            "crash@seed%0=1",   # zero modulus
            "crash@seed%13",    # missing remainder
            "",                 # no rules at all
            " ; ; ",
        ],
    )
    def test_bad_plans_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@2")
        assert FaultPlan.from_env().rules[0].index == 2
        monkeypatch.setenv(FAULT_PLAN_ENV, "   ")
        assert FaultPlan.from_env() is None

    def test_plan_is_deterministic(self):
        """Matching is a pure function of (index, seed, attempt)."""
        plan = FaultPlan.parse("crash@1;corrupt@seed%7=3;raise@9*2")
        table = [
            (plan.match(i, s, a) or FaultRule("none", index=-1)).kind
            for i in range(12) for s in range(20) for a in (1, 2, 3)
        ]
        assert table == [
            (plan.match(i, s, a) or FaultRule("none", index=-1)).kind
            for i in range(12) for s in range(20) for a in (1, 2, 3)
        ]


class TestExecution:
    def test_raise_fault_raises(self):
        with pytest.raises(FaultInjected, match="raise@0"):
            execute_fault(FaultRule("raise", index=0))

    def test_corrupt_is_callers_job(self):
        # corrupt must be a no-op at the actuator: the caller owns the result
        execute_fault(FaultRule("corrupt", index=0))

    # crash (os._exit) and hang (an hour's sleep) are exercised for real
    # through worker processes in tests/test_supervisor.py


class TestCorruptionHelpers:
    def test_flip_byte(self):
        assert flip_byte(b"\x00\xff", 0) == b"\xff\xff"
        assert flip_byte(b"\x00\xff", -1, mask=0x01) == b"\x00\xfe"
        assert flip_byte(flip_byte(b"abc", 1), 1) == b"abc"

    def test_flip_zero_mask_rejected(self):
        with pytest.raises(ValueError):
            flip_byte(b"abc", 0, mask=0)

    def test_truncate(self):
        assert truncate_bytes(b"abcdef", 2) == b"abcd"
        assert truncate_bytes(b"ab", 5) == b""
        with pytest.raises(ValueError):
            truncate_bytes(b"ab", 0)
