"""Workload calibration against Table 2's characteristics."""

import pytest

from repro import FastTrackDetector
from repro.analysis.experiments import race_id_of
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.scheduler import Scheduler, run_program
from repro.sim.workloads import (
    ECLIPSE,
    HSQLDB,
    PSEUDOJBB,
    WORKLOADS,
    XALAN,
    build_program,
)

# (spec, paper's Table 2 totals: total threads, max live)
TABLE2 = [
    (ECLIPSE, 16, 8),
    (HSQLDB, 403, 102),
    (XALAN, 9, 9),
    (PSEUDOJBB, 37, 9),
]


class TestThreadStructure:
    @pytest.mark.parametrize("spec,total,max_live", TABLE2)
    def test_threads_total(self, spec, total, max_live):
        assert spec.threads_total == total

    @pytest.mark.parametrize("spec,total,max_live", TABLE2)
    def test_max_live(self, spec, total, max_live):
        assert spec.max_live == max_live

    def test_scheduler_agrees_with_spec(self):
        program = build_program(PSEUDOJBB, trial_seed=0)
        events = []
        s = Scheduler(program, seed=0, sink=events.append)
        s.run()
        assert s.threads_started == PSEUDOJBB.threads_total
        assert s.max_live <= PSEUDOJBB.max_live + 1


class TestTraceShape:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_feasible_traces(self, name):
        run_program(build_program(WORKLOADS[name], trial_seed=0), seed=0).validate()

    @pytest.mark.parametrize("name", ["eclipse", "xalan", "pseudojbb"])
    def test_sync_fraction_near_paper(self, name):
        trace = run_program(build_program(WORKLOADS[name], trial_seed=1), seed=1)
        frac = trace.n_sync_ops / (trace.n_sync_ops + trace.n_accesses)
        assert 0.01 < frac < 0.08  # paper: ~3%

    def test_deterministic_per_trial_seed(self):
        a = run_program(build_program(ECLIPSE, trial_seed=3), seed=3)
        b = run_program(build_program(ECLIPSE, trial_seed=3), seed=3)
        assert a.events == b.events

    def test_trials_differ(self):
        a = run_program(build_program(ECLIPSE, trial_seed=1), seed=1)
        b = run_program(build_program(ECLIPSE, trial_seed=2), seed=2)
        assert a.events != b.events

    def test_method_markers_present(self):
        trace = run_program(build_program(ECLIPSE, trial_seed=0), seed=0)
        assert trace.count("m_enter") > 100
        assert trace.count("m_enter") == trace.count("m_exit")


class TestRaces:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_only_injected_races(self, name):
        """The background (locked + thread-local) traffic never races."""
        trace = run_program(build_program(WORKLOADS[name], trial_seed=0), seed=0)
        ft = FastTrackDetector()
        ft.run(trace)
        for race in ft.races:
            assert race_id_of(race) is not None, race

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_frequent_races_found_in_one_trial(self, name):
        spec = WORKLOADS[name]
        trace = run_program(build_program(spec, trial_seed=0), seed=0)
        ft = FastTrackDetector()
        ft.run(trace)
        found = {race_id_of(r) for r in ft.races}
        frequent = [s.race_id for s in spec.racy_sites if s.probability >= 0.05]
        if frequent:
            hit = len(found & set(frequent)) / len(frequent)
            assert hit > 0.5

    def test_rare_races_mostly_absent_per_trial(self):
        spec = ECLIPSE
        trace = run_program(build_program(spec, trial_seed=0), seed=0)
        ft = FastTrackDetector()
        ft.run(trace)
        found = {race_id_of(r) for r in ft.races}
        lowest = min(s.probability for s in spec.racy_sites)
        rare = {s.race_id for s in spec.racy_sites if s.probability == lowest}
        assert rare and len(found & rare) < len(rare) / 2

    def test_scaled_copy_shrinks_run(self):
        small = ECLIPSE.scaled(0.25)
        assert small.iterations < ECLIPSE.iterations
        trace = run_program(build_program(small, trial_seed=0), seed=0)
        full = run_program(build_program(ECLIPSE, trial_seed=0), seed=0)
        assert len(trace) < len(full)


class TestSpecHelpers:
    def test_distinct_race_ids_enumerates_sites(self):
        from repro.sim.workloads import ECLIPSE

        ids = ECLIPSE.distinct_race_ids
        assert len(ids) == len(ECLIPSE.racy_sites) == 77
        assert ids == sorted(ids)

    def test_racy_site_distinct_keys(self):
        from repro.sim.workloads import RacySite

        ww = RacySite(3, 0.1, kind="ww")
        wr_site = RacySite(4, 0.1, kind="wr")
        assert (ww.writer_site, ww.reader_site) in ww.distinct_keys
        assert len(wr_site.distinct_keys) == 2
        assert ww.var != wr_site.var
