"""Service-level observability: tracing, Prometheus exposition, ``repro top``.

Pins the cross-process observability contract end to end:

* :mod:`repro.obs.tracing` — bounded span recorders, deterministic
  chunk flow ids, and :func:`assemble_service_trace` producing one
  validator-clean Chrome trace from client + front + shard + merge
  span groups (idempotent: re-assembly never double-rebases).
* :mod:`repro.obs.prom` — text exposition format conformance
  (contiguous families, cumulative ``le`` buckets, ``_sum``/``_count``,
  label escaping) plus the ``series_key`` inverse.
* :mod:`repro.net.top` — the ``repro/top-status/v1`` schema is stable
  across state backends and validated structurally.
* The live stack — a streamed session yields a merged service trace
  spanning client/front/shard pids with matched flow arrows, a scrape
  body over HTTP, and the ``net_rx_buffer_high`` gauge behaving as a
  true high-water mark across connections (the hot-loop regression).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.net import (
    ServerConfig,
    TelemetryClient,
    TelemetryServer,
    build_top_status,
    query_server,
    render_top,
    validate_top_status,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.perfetto import validate_chrome_trace
from repro.obs.prom import parse_series_key, render_prometheus
from repro.obs.tracing import (
    SpanRecorder,
    assemble_service_trace,
    chunk_flow_id,
)
from repro.trace.generator import GeneratorConfig, random_trace

TRACE = random_trace(GeneratorConfig(length=400, seed=7))
EVENTS = list(TRACE.events)
BACKENDS = ["object", "packed"]


def serve(**kwargs):
    cfg = ServerConfig(
        address="tcp://127.0.0.1:0", shard_mode="inline", n_shards=2, **kwargs
    )
    server = TelemetryServer(cfg)
    server.start()
    return server


def stream(server, session="s1", events=EVENTS, **kwargs):
    client = TelemetryClient(server.address, session, chunk_size=64, **kwargs)
    client.connect()
    client.send_events(list(events))
    return client.close()


# -- span recorder ------------------------------------------------------------


class TestSpanRecorder:
    def test_span_records_duration_and_args(self):
        rec = SpanRecorder(pid=11)
        start = rec.begin()
        rec.span("work", start, tid=3, args={"seq": 1})
        (ev,) = [e for e in rec.snapshot() if e["ph"] == "X"]
        assert ev["name"] == "work" and ev["pid"] == 11 and ev["tid"] == 3
        assert ev["dur"] >= 0 and ev["args"] == {"seq": 1}

    def test_bounded_recorder_counts_drops(self):
        rec = SpanRecorder(pid=11, max_spans=5)
        for i in range(9):
            rec.span(f"s{i}", rec.begin())
        assert len(rec) == 5
        assert rec.dropped == 4

    def test_flow_emits_matched_start_and_finish(self):
        rec = SpanRecorder(pid=11)
        fid = chunk_flow_id(3, 17)
        rec.span("send", rec.begin(), flow=fid)
        rec.span("apply", rec.begin(), flow_in=fid)
        phases = [e["ph"] for e in rec.snapshot()]
        assert phases.count("s") == 1 and phases.count("f") == 1

    def test_chunk_flow_id_unique_per_session_and_seq(self):
        ids = {chunk_flow_id(t, s) for t in range(1, 4) for s in range(1, 40)}
        assert len(ids) == 3 * 39


class TestAssembleServiceTrace:
    def group(self, pid, events, dropped=0, name=None):
        return {
            "pid": pid,
            "name": name or f"p{pid}",
            "events": events,
            "dropped": dropped,
        }

    def test_merges_rebases_and_validates(self):
        rec_a, rec_b = SpanRecorder(pid=11), SpanRecorder(pid=20)
        fid = chunk_flow_id(1, 1)
        rec_a.span("send", rec_a.begin(), flow=fid)
        rec_b.span("apply", rec_b.begin(), flow_in=fid)
        doc = assemble_service_trace(
            [self.group(11, rec_a.snapshot()), self.group(20, rec_b.snapshot())]
        )
        assert validate_chrome_trace(doc) == []
        tses = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert min(tses) == 0  # rebased to the earliest span
        assert {e["pid"] for e in doc["traceEvents"]} == {11, 20}

    def test_orphan_flows_are_dropped(self):
        rec = SpanRecorder(pid=11)
        rec.span("send", rec.begin(), flow=chunk_flow_id(1, 1))  # no finish
        doc = assemble_service_trace([self.group(11, rec.snapshot())])
        assert all(e["ph"] not in ("s", "f") for e in doc["traceEvents"])
        assert validate_chrome_trace(doc) == []

    def test_assembly_is_idempotent_over_stored_groups(self):
        # the server stores client span groups and re-assembles per query;
        # a second assembly must not see already-rebased timestamps
        rec = SpanRecorder(pid=101)
        rec.span("connect", rec.begin())
        groups = [self.group(101, rec.snapshot())]
        first = assemble_service_trace(groups)
        second = assemble_service_trace(groups)
        assert first["traceEvents"] == second["traceEvents"]

    def test_dropped_spans_surface_in_envelope(self):
        doc = assemble_service_trace([self.group(11, [], dropped=7)])
        assert doc["otherData"]["spans_dropped"] == 7
        assert doc["otherData"]["schema"] == "repro/service-trace/v1"


# -- prometheus exposition ----------------------------------------------------


class TestPrometheusRendering:
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("net_events_total").inc(1000)
        reg.counter("net_protocol_errors", code="frame-corrupt").inc(2)
        reg.counter("net_protocol_errors", code="handshake").inc(1)
        reg.gauge("net_shard_queue_depth", shard=0).set(3)
        reg.gauge("net_shard_queue_depth", shard=1).set(1)
        h = reg.histogram("net_chunk_lag_us", buckets=(10, 100, 1000))
        for v in (5, 50, 500, 5000):
            h.observe(v)
        return reg

    def test_families_are_contiguous(self):
        text = render_prometheus(self.registry().snapshot())
        family = None
        seen = set()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            if name != family:
                assert name not in seen, f"family {name} split in two"
                seen.add(name)
                family = name

    def test_histogram_buckets_cumulative_with_inf_sum_count(self):
        text = render_prometheus(self.registry().snapshot())
        lines = [l for l in text.splitlines() if l.startswith("net_chunk_lag_us")]
        buckets = [l for l in lines if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "le buckets must be cumulative"
        assert buckets[-1].startswith('net_chunk_lag_us_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert any(l == "net_chunk_lag_us_sum 5555" for l in lines)
        assert any(l == "net_chunk_lag_us_count 4" for l in lines)

    def test_type_lines_and_labels(self):
        text = render_prometheus(self.registry().snapshot())
        assert "# TYPE net_events_total counter" in text
        assert "# TYPE net_shard_queue_depth gauge" in text
        assert "# TYPE net_chunk_lag_us histogram" in text
        assert 'net_protocol_errors{code="frame-corrupt"} 2' in text
        assert 'net_shard_queue_depth{shard="0"} 3' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird", detail='a"b\\c').inc(1)
        text = render_prometheus(reg.snapshot())
        assert '{detail="a\\"b\\\\c"}' in text

    def test_gauge_high_watermark_is_own_family(self):
        text = render_prometheus(self.registry().snapshot())
        assert "# TYPE net_shard_queue_depth_high gauge" in text
        assert 'net_shard_queue_depth_high{shard="0"} 3' in text

    def test_parse_series_key_inverse(self):
        assert parse_series_key("plain") == ("plain", {})
        name, labels = parse_series_key("x{a=1,b=two}")
        assert name == "x" and labels == {"a": "1", "b": "two"}


# -- metrics determinism (satellite) ------------------------------------------


class TestMetricsMergeDeterminism:
    def labeled_snapshot(self, order):
        reg = MetricsRegistry()
        for shard in order:
            reg.counter("chunks", shard=shard).inc(10 + shard)
            reg.gauge("depth", shard=shard).set(shard)
            reg.histogram("lag", buckets=(10, 100), shard=shard).observe(shard)
        return reg.snapshot()

    def test_merge_snapshot_order_independent_bytes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for snap in (
            self.labeled_snapshot([0, 1, 2]),
            self.labeled_snapshot([2, 1, 0]),
        ):
            a.merge_snapshot(snap)
        for snap in (
            self.labeled_snapshot([2, 1, 0]),
            self.labeled_snapshot([0, 1, 2]),
        ):
            b.merge_snapshot(snap)
        assert a.to_json() == b.to_json()

    def test_prometheus_text_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.merge_snapshot(self.labeled_snapshot([0, 1, 2]))
        b.merge_snapshot(self.labeled_snapshot([2, 1, 0]))
        assert render_prometheus(a.snapshot()) == render_prometheus(b.snapshot())


# -- gauge high-watermark regression ------------------------------------------


class TestRxBufferHighWatermark:
    def test_set_max_only_raises(self):
        g = MetricsRegistry().gauge("g")
        assert g.set_max(100) is True
        assert g.set_max(40) is False
        assert g.value == 100 and g.high == 100
        assert g.set_max(150) is True
        assert g.value == 150 and g.high == 150

    def test_gauge_survives_smaller_later_connection(self):
        # regression: the hot receive loop used .set(), so a later
        # connection with a small buffer erased the true peak
        server = serve()
        try:
            stream(server, "big", EVENTS)
            doc1 = query_server(server.address)
            peak = doc1["server"]["rx_buffer_high"]
            assert peak > 0
            stream(server, "small", EVENTS[:5])
            doc2 = query_server(server.address)
            assert doc2["server"]["rx_buffer_high"] >= peak
            gauges = doc2["metrics"]["gauges"]
            assert gauges["net_rx_buffer_high"]["value"] >= peak
        finally:
            server.stop()


# -- the merged service trace -------------------------------------------------


class TestServiceTrace:
    def test_streamed_session_yields_one_validated_trace(self):
        server = serve()
        try:
            stream(server)
            doc = query_server(server.address, trace=True)
        finally:
            server.stop()
        trace = doc["trace"]
        assert validate_chrome_trace(trace) == []
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert 11 in pids, "front tier spans missing"
        assert 12 in pids, "merge tier spans missing"
        assert any(p >= 20 for p in pids), "shard spans missing"
        assert any(p >= 100 for p in pids), "client spans missing"

    def test_flow_arrows_cross_processes_and_match(self):
        server = serve()
        try:
            stream(server)
            doc = query_server(server.address, trace=True)
        finally:
            server.stop()
        events = doc["trace"]["traceEvents"]
        starts = {e["id"]: e["pid"] for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e["pid"] for e in events if e["ph"] == "f"}
        assert starts and set(starts) == set(finishes)
        crossing = [i for i in starts if starts[i] != finishes[i]]
        assert crossing, "chunk-send -> apply-chunk must cross processes"

    def test_trace_disabled_client_still_streams(self):
        server = serve()
        try:
            summary = stream(server, trace=False)
            assert summary["events"] == len(EVENTS)
            doc = query_server(server.address, trace=True)
            assert validate_chrome_trace(doc["trace"]) == []
        finally:
            server.stop()

    def test_span_batches_dedup_on_reship(self):
        server = serve()
        try:
            client = TelemetryClient(server.address, "s1", chunk_size=64)
            client.connect()
            client.send_events(EVENTS)
            client.ship_spans()
            client.ship_spans()  # re-ship: same (pid, name), latest wins
            client.close()
            doc = query_server(server.address, trace=True)
        finally:
            server.stop()
        client_pids = [
            p for p in {e["pid"] for e in doc["trace"]["traceEvents"]} if p >= 100
        ]
        assert len(client_pids) == 1

    def test_write_trace_artifact(self, tmp_path):
        server = serve()
        try:
            stream(server)
            out = tmp_path / "service-trace.json"
            server.write_trace(out)
        finally:
            server.stop()
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []


# -- scrape endpoint ----------------------------------------------------------


class TestHTTPSidecar:
    def test_metrics_status_healthz(self):
        server = serve(http="127.0.0.1:0")
        try:
            stream(server)
            base = f"http://{server.http_address}"
            body = urllib.request.urlopen(f"{base}/metrics").read().decode()
            assert "# TYPE net_events_total counter" in body
            assert f"net_events_total {len(EVENTS)}" in body
            status = json.loads(urllib.request.urlopen(f"{base}/status").read())
            assert status["schema"] == "repro/telemetry-status/v1"
            assert urllib.request.urlopen(f"{base}/healthz").read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")
        finally:
            server.stop()

    def test_write_metrics_after_stop(self, tmp_path):
        server = serve()
        stream(server)
        server.stop()
        out = tmp_path / "metrics.json"
        server.write_metrics(out)
        snap = json.loads(out.read_text())
        assert snap["counters"]["net_events_total"] == len(EVENTS)
        merged = MetricsRegistry()
        merged.merge_snapshot(snap)  # the dump stays mergeable
        assert merged.counter("net_events_total").value == len(EVENTS)


# -- repro top ----------------------------------------------------------------


class TestTopStatus:
    def status_for(self, backend):
        server = serve()
        try:
            stream(server, backend=backend)
            return build_top_status(query_server(server.address))
        finally:
            server.stop()

    def shapes(self, node):
        if isinstance(node, dict):
            return {k: self.shapes(v) for k, v in node.items()}
        if isinstance(node, list):
            return [self.shapes(v) for v in node]
        return type(node).__name__

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_schema_valid_per_backend(self, backend):
        status = self.status_for(backend)
        assert validate_top_status(status) == []
        assert status["events"]["total"] == len(EVENTS)
        assert status["events"]["per_sec"] is None  # single sample

    def test_key_shape_identical_across_backends(self):
        a, b = (self.status_for(be) for be in BACKENDS)
        assert self.shapes(a) == self.shapes(b)

    def test_rates_from_consecutive_samples(self):
        first = {"events": {"total": 100}, "chunks": {"total": 10}}
        doc = {
            "metrics": {"counters": {"net_events_total": 300,
                                     "net_chunks_total": 20}},
            "server": {"shards": 0},
        }
        status = build_top_status(doc, prev=first, interval=2.0)
        assert status["events"]["per_sec"] == 100.0
        assert status["chunks"]["per_sec"] == 5.0

    def test_validator_flags_missing_and_mistyped(self):
        good = self.status_for("object")
        assert validate_top_status({"schema": "nope"})
        broken = json.loads(json.dumps(good))
        del broken["backpressure"]["credit_stalls"]
        broken["events"]["total"] = "many"
        problems = validate_top_status(broken)
        assert any("credit_stalls" in p for p in problems)
        assert any("events.total" in p for p in problems)

    def test_render_top_mentions_the_vitals(self):
        text = render_top(self.status_for("object"))
        assert "sessions 1" in text
        assert f"events {len(EVENTS):,}" in text
        assert "shard" in text and "backpressure" in text

    def test_quarantined_shard_surfaces(self):
        doc = {
            "metrics": {
                "counters": {},
                "gauges": {
                    "net_shard_up{shard=0}": {"value": 0, "high": 1},
                    "net_shard_quarantined{shard=0}": {"value": 1, "high": 1},
                    "net_shard_restarts{shard=0}": {"value": 3, "high": 3},
                },
            },
            "server": {"shards": 1},
        }
        status = build_top_status(doc)
        assert validate_top_status(status) == []
        shard = status["shards"][0]
        assert shard == {
            "shard": 0,
            "up": False,
            "restarts": 3,
            "quarantined": True,
            "queue_depth": 0,
            "sessions": 0,
        }
        assert "YES" in render_top(status)
