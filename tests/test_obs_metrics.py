"""The metrics registry: counters, gauges, histograms, merge semantics.

Also holds the empty-run regression tests for
:class:`repro.core.stats.PerfCounters` — a run with zero events or zero
elapsed time must report clean zeros from every derived rate, never
raise ``ZeroDivisionError`` (the CLI prints these unconditionally).
"""

import json

import pytest

from repro.core.stats import PerfCounters
from repro.obs import MetricsRegistry, merge_metric_dicts
from repro.obs.metrics import Counter, Gauge, Histogram, series_key


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("events", {}) == "events"

    def test_labels_sorted(self):
        assert (
            series_key("ops", {"op": "reads", "kind": "fast"})
            == "ops{kind=fast,op=reads}"
        )

    def test_label_order_irrelevant(self):
        assert series_key("x", {"a": 1, "b": 2}) == series_key("x", {"b": 2, "a": 1})


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_tracks_value_and_high_watermark(self):
        g = Gauge()
        g.set(10)
        g.set(3)
        assert g.value == 3
        assert g.high == 10


class TestHistogram:
    def test_default_buckets_cover_batch_sizes(self):
        h = Histogram()
        h.observe(1)
        h.observe(4096)
        h.observe(10**9)  # overflow bucket
        assert h.count == 3
        assert h.total == 1 + 4096 + 10**9
        assert sum(h.counts) == 3

    def test_mean_of_empty_histogram_is_zero(self):
        assert Histogram().mean == 0.0

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(4, 4, 8))
        with pytest.raises(ValueError):
            Histogram(buckets=(8, 4))

    def test_observations_land_in_correct_buckets(self):
        h = Histogram(buckets=(10, 100))
        for v in (0, 5, 10, 50, 99, 100, 5000):
            h.observe(v)
        # buckets: <=10, <=100, overflow (bounds are inclusive)
        assert h.counts == [3, 3, 1]


class TestRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(7)
        assert reg.counter("events").value == 7

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("ops", op="reads").inc(1)
        reg.counter("ops", op="writes").inc(2)
        snap = reg.snapshot()
        assert snap["counters"]["ops{op=reads}"] == 1
        assert snap["counters"]["ops{op=writes}"] == 2

    def test_count_many_sets_absolute_values(self):
        reg = MetricsRegistry()
        reg.counter("ops", op="reads").inc(99)  # count_many overwrites
        reg.count_many("ops", {"reads": 3, "writes": 0}, "op")
        snap = reg.snapshot()["counters"]
        assert snap["ops{op=reads}"] == 3
        assert snap["ops{op=writes}"] == 0

    def test_snapshot_is_deterministic_json(self):
        reg = MetricsRegistry()
        reg.gauge("footprint").set(42)
        reg.counter("gc").inc(3)
        reg.histogram("batch", buckets=(8, 64)).observe(10)
        a = reg.to_json()
        assert a == reg.to_json()
        doc = json.loads(a)
        assert doc["gauges"]["footprint"] == {"value": 42, "high": 42}
        assert doc["histograms"]["batch"]["counts"] == [0, 1, 0]

    def test_write_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("events").inc(9)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["counters"]["events"] == 9


class TestRegistryMerge:
    def _make(self, events, footprint, obs):
        reg = MetricsRegistry()
        reg.counter("events").inc(events)
        reg.gauge("footprint").set(footprint)
        reg.histogram("batch", buckets=(10, 100)).observe(obs)
        return reg

    def test_counters_sum_gauges_max_histograms_bucket_sum(self):
        a = self._make(10, 5, 3)
        a.merge(self._make(7, 9, 50))
        snap = a.snapshot()
        assert snap["counters"]["events"] == 17
        assert snap["gauges"]["footprint"]["value"] == 9
        assert snap["histograms"]["batch"]["counts"] == [1, 1, 0]
        assert snap["histograms"]["batch"]["count"] == 2

    def test_merge_is_order_insensitive(self):
        x = self._make(1, 2, 3)
        x.merge(self._make(4, 5, 6))
        y = self._make(4, 5, 6)
        y.merge(self._make(1, 2, 3))
        assert x.to_json() == y.to_json()

    def test_histogram_bounds_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2))
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 3))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_snapshot_survives_json_round_trip(self):
        a = self._make(10, 5, 3)
        snap = json.loads(self._make(7, 9, 50).to_json())
        a.merge_snapshot(snap)
        assert a.snapshot()["counters"]["events"] == 17


class TestMergeMetricDicts:
    def test_sums_by_default_max_prefix_takes_max(self):
        merged = merge_metric_dicts(
            [
                {"events": 10, "max_live_threads": 3},
                {"events": 5, "max_live_threads": 7},
            ]
        )
        assert merged == {"events": 15, "max_live_threads": 7}

    def test_missing_keys_treated_as_absent_not_error(self):
        assert merge_metric_dicts([{"a": 1}, {"b": 2}]) == {"a": 1, "b": 2}

    def test_output_keys_sorted(self):
        assert list(merge_metric_dicts([{"z": 1, "a": 2}])) == ["a", "z"]

    def test_empty_input(self):
        assert merge_metric_dicts([]) == {}


class TestPerfCountersEmptyRun:
    """Satellite regression: zero-event / zero-time runs stay division-safe."""

    def test_fresh_counters_report_zero_rates(self):
        perf = PerfCounters()
        assert perf.events_per_sec == 0.0
        assert perf.ns_per_event == 0.0
        assert perf.mean_batch == 0.0

    def test_events_without_elapsed_time(self):
        assert PerfCounters(events=100, elapsed_ns=0).events_per_sec == 0.0

    def test_elapsed_time_without_events(self):
        perf = PerfCounters(events=0, elapsed_ns=1_000_000)
        assert perf.ns_per_event == 0.0
        assert perf.mean_batch == 0.0

    def test_summary_never_raises_on_empty_run(self):
        assert "0 events" in PerfCounters().summary()

    def test_merge_of_fresh_counters_is_fresh(self):
        a = PerfCounters()
        a.merge(PerfCounters())
        assert (a.events, a.elapsed_ns, a.batches, a.max_batch) == (0, 0, 0, 0)
        assert a.summary()  # still printable

    def test_empty_trace_through_detector_run(self):
        from repro.detectors import FastTrackDetector

        det = FastTrackDetector()
        det.run([])
        assert det.perf.events == 0
        assert det.perf.ns_per_event == 0.0
        assert det.perf.summary()

    def test_empty_trace_through_run_batch(self):
        from repro.detectors import FastTrackDetector

        det = FastTrackDetector()
        det.run_batch([])
        assert det.perf.mean_batch == 0.0
        assert det.perf.summary()
