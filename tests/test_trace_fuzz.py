"""Property-based fuzzing of the trace serialization formats.

Two invariants, checked with hypothesis over arbitrary event lists and
arbitrary corrupted payloads:

* **lossless round-trip** — any encodable event list survives
  ``dumps_binary``/``loads_binary`` and ``dumps_trace``/``loads_trace``
  byte-for-byte and field-for-field;
* **clean failure** — truncated, bit-flipped, or garbage input never
  yields garbage events or an uncontrolled exception: the loaders either
  return a well-formed :class:`Trace` or raise
  :class:`TraceFormatError`/:class:`TraceError`, nothing else.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.binio import MAGIC, VERSION, VERSION_1, dumps_binary, loads_binary
from repro.trace.events import (
    ACQUIRE,
    ALLOC,
    Event,
    FORK,
    JOIN,
    METHOD_ENTER,
    METHOD_EXIT,
    READ,
    RELEASE,
    SBEGIN,
    SEND,
    VOL_READ,
    VOL_WRITE,
    WRITE,
)
from repro.trace.textio import dumps_trace, loads_trace
from repro.trace.trace import TraceError, TraceFormatError

OPERAND_KINDS = [
    READ, WRITE, ACQUIRE, RELEASE, FORK, JOIN,
    VOL_READ, VOL_WRITE, METHOD_ENTER, METHOD_EXIT, ALLOC,
]

# the binary format bounds: tid >= -1, target >= 0, site within int64
operand_events = st.builds(
    Event,
    kind=st.sampled_from(OPERAND_KINDS),
    tid=st.integers(min_value=-1, max_value=2**20),
    target=st.integers(min_value=0, max_value=2**48),
    site=st.integers(min_value=-(2**62), max_value=2**62),
)

#: markers carry no operands; both codecs canonicalize them to (-1, 0, 0)
marker_events = st.sampled_from([Event(SBEGIN, -1, 0), Event(SEND, -1, 0)])

event_lists = st.lists(
    st.one_of(operand_events, operand_events, marker_events), max_size=60
)

CLEAN_ERRORS = (TraceFormatError, TraceError)


# -- lossless round-trip -------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(event_lists)
def test_binary_roundtrip_lossless(events):
    data = dumps_binary(events)
    decoded = list(loads_binary(data, validate=False))
    assert decoded == events
    # re-encoding the decode reproduces the bytes exactly
    assert dumps_binary(decoded) == data


@settings(max_examples=150, deadline=None)
@given(event_lists)
def test_text_roundtrip_lossless(events):
    text = dumps_trace(events)
    decoded = list(loads_trace(text, validate=False))
    assert decoded == events
    assert dumps_trace(decoded) == text


@settings(max_examples=60, deadline=None)
@given(event_lists)
def test_binary_text_agree(events):
    via_binary = list(loads_binary(dumps_binary(events), validate=False))
    via_text = list(loads_trace(dumps_trace(events), validate=False))
    assert via_binary == via_text


# -- truncation ---------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(event_lists.filter(lambda evs: len(evs) > 0), st.data())
def test_binary_truncation_raises_cleanly(events, data):
    payload = dumps_binary(events)
    cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    with pytest.raises(TraceFormatError):
        loads_binary(payload[:cut], validate=False)


# -- corruption ---------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(event_lists, st.data())
def test_binary_bitflip_never_yields_garbage(events, data):
    """A flipped byte either still decodes to *some* valid trace or
    raises a clean, typed error — never IndexError/KeyError/etc."""
    payload = bytearray(dumps_binary(events))
    pos = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    payload[pos] ^= flip
    try:
        trace = loads_binary(bytes(payload), validate=True)
    except CLEAN_ERRORS:
        return
    for e in trace:
        assert e.kind and e.tid >= -1 and e.target >= 0


@settings(max_examples=150, deadline=None)
@given(st.binary(max_size=200))
def test_binary_arbitrary_bytes_never_crash(data):
    try:
        loads_binary(data, validate=True)
    except CLEAN_ERRORS:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=300))
def test_text_arbitrary_text_never_crashes(text):
    try:
        loads_trace(text, validate=True)
    except CLEAN_ERRORS:
        pass


@settings(max_examples=100, deadline=None)
@given(event_lists, st.text(max_size=40), st.integers(min_value=0, max_value=60))
def test_text_injected_garbage_line_raises_cleanly(events, garbage, at):
    lines = dumps_trace(events).splitlines()
    lines.insert(min(at, len(lines)), garbage)
    try:
        loads_trace("\n".join(lines), validate=False)
    except CLEAN_ERRORS:
        pass


# -- targeted corrupt headers (deterministic, always-run examples) ------------


def test_bad_magic_rejected():
    good = dumps_binary([Event(READ, 0, 1, 2)])
    with pytest.raises(TraceFormatError, match="magic"):
        loads_binary(b"XXXX" + good[4:])


def test_bad_version_rejected():
    good = bytearray(dumps_binary([Event(READ, 0, 1, 2)]))
    good[4] = VERSION + 1
    with pytest.raises(TraceFormatError, match="version"):
        loads_binary(bytes(good))


def test_overlong_count_rejected_before_allocating():
    """A corrupt huge count must fail fast, not loop for 2**40 events."""
    payload = bytearray()
    payload += MAGIC
    payload.append(VERSION)
    payload += bytes([0x80, 0x80, 0x80, 0x80, 0x80, 0x20])  # varint 2**40
    with pytest.raises(TraceFormatError, match="count"):
        loads_binary(bytes(payload))


def test_trailing_bytes_rejected():
    good = dumps_binary([Event(WRITE, 1, 7, 3)])
    with pytest.raises(TraceFormatError, match="trailing"):
        loads_binary(good + b"\x00")


def test_unterminated_varint_rejected():
    # v1 layout: no trailer, so the lone continuation byte is read as the
    # (never-ending) count varint itself
    payload = MAGIC + bytes([VERSION_1]) + b"\x81"
    with pytest.raises(TraceFormatError, match="varint"):
        loads_binary(payload)


def test_text_unknown_kind_names_line():
    with pytest.raises(TraceFormatError, match="line 2"):
        loads_trace("rd 0 1\nbogus 0 1\n", validate=False)


def test_text_non_integer_operand_names_line():
    with pytest.raises(TraceFormatError, match="line 1"):
        loads_trace("rd zero 1\n", validate=False)
