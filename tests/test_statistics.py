"""Statistical helpers for experiment reporting."""

import math
import random

import pytest

from repro.analysis.statistics import (
    binomial_ci_contains,
    mean_confidence_interval,
    proportionality_consistent,
    wilson_interval,
)


class TestWilson:
    def test_symmetric_at_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert abs((0.5 - lo) - (hi - 0.5)) < 1e-9

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        assert 0.0 < hi < 0.25

    def test_all_successes(self):
        lo, hi = wilson_interval(20, 20)
        assert hi == 1.0
        assert 0.75 < lo < 1.0

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_against_scipy_if_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        # coverage check: the 95% Wilson interval should contain the true
        # p in ~95% of repeated binomial samples
        rng = random.Random(42)
        p_true = 0.3
        n = 60
        covered = 0
        reps = 400
        for _ in range(reps):
            successes = sum(rng.random() < p_true for _ in range(n))
            lo, hi = wilson_interval(successes, n)
            covered += lo <= p_true <= hi
        assert covered / reps > 0.90

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_zero_trials_rejected(self):
        # 0/0 is undefined, not "no information": the coverage-report
        # builder must special-case empty runs rather than call this
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
        with pytest.raises(ValueError):
            wilson_interval(0, -5)

    def test_negative_successes_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)

    def test_matches_scipy_wilson_if_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        if not hasattr(scipy_stats, "binomtest"):
            pytest.skip("scipy too old for binomtest.proportion_ci")
        for successes, trials in [(0, 20), (3, 17), (50, 100), (20, 20)]:
            lo, hi = wilson_interval(successes, trials)
            ci = scipy_stats.binomtest(successes, trials).proportion_ci(
                confidence_level=0.95, method="wilson"
            )
            assert lo == pytest.approx(ci.low, abs=1e-9)
            assert hi == pytest.approx(ci.high, abs=1e-9)

    def test_binomial_ci_contains(self):
        assert binomial_ci_contains(10, 100, 0.10)
        assert not binomial_ci_contains(10, 100, 0.50)


class TestMeanCI:
    def test_simple(self):
        mu, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mu == 2.0
        assert lo < 2.0 < hi

    def test_single_value(self):
        mu, lo, hi = mean_confidence_interval([4.2])
        assert mu == lo == hi == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_tighter_with_more_data(self):
        rng = random.Random(7)
        small = [rng.gauss(0, 1) for _ in range(10)]
        big = [rng.gauss(0, 1) for _ in range(1000)]
        _, lo_s, hi_s = mean_confidence_interval(small)
        _, lo_b, hi_b = mean_confidence_interval(big)
        assert (hi_b - lo_b) < (hi_s - lo_s)


class TestProportionality:
    def test_consistent_case(self):
        # detection ≈ 1-(1-r)^k: r=0.1, k=2 -> ~0.19 per trial
        assert proportionality_consistent(19, 100, 0.10, occurrences_per_trial=2)

    def test_inconsistent_case(self):
        # a detector that never fires is inconsistent with r=20%
        assert not proportionality_consistent(0, 200, 0.20)

    def test_simulated_pacer_like_process(self):
        rng = random.Random(3)
        r, k, trials = 0.15, 3.0, 200
        p = 1 - (1 - r) ** k
        detections = sum(rng.random() < p for _ in range(trials))
        assert proportionality_consistent(detections, trials, r, k)

    def test_rate_zero_edge(self):
        # r=0 predicts zero detections: consistent only with none seen
        assert proportionality_consistent(0, 100, 0.0)
        assert not proportionality_consistent(5, 100, 0.0)

    def test_rate_one_edge(self):
        # r=1 predicts certain detection: consistent only with all seen
        assert proportionality_consistent(50, 50, 1.0)
        assert not proportionality_consistent(49, 50, 1.0)
