"""Shared test utilities."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.detectors.base import Race
from repro.trace.events import SBEGIN, SEND
from repro.trace.trace import Trace

__all__ = [
    "race_sig",
    "race_sigs",
    "sampling_windows",
    "window_of",
    "in_sampling_window",
]


def race_sig(race: Race) -> Tuple:
    """A full dynamic signature of a race report (for exact comparisons)."""
    return (
        race.index,
        race.first_index,
        race.var,
        race.kind,
        race.first_tid,
        race.first_site,
        race.second_tid,
        race.second_site,
    )


def race_sigs(races: Iterable[Race]) -> List[Tuple]:
    return [race_sig(r) for r in races]


def sampling_windows(trace: Trace) -> List[Tuple[int, int]]:
    """(start, end) event-index ranges of the trace's sampling periods."""
    windows: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for i, event in enumerate(trace):
        if event.kind == SBEGIN:
            start = i
        elif event.kind == SEND:
            assert start is not None
            windows.append((start, i))
            start = None
    if start is not None:
        windows.append((start, len(trace.events)))
    return windows


def window_of(index: int, windows: List[Tuple[int, int]]) -> Optional[int]:
    for k, (start, end) in enumerate(windows):
        if start <= index <= end:
            return k
    return None


def in_sampling_window(index: int, windows: List[Tuple[int, int]]) -> bool:
    return window_of(index, windows) is not None
