"""Admission control and resume fencing, on TCP and Unix transports.

The two admission paths the resilience layer leans on, pinned over both
socket families the server speaks:

* **Session-limit BUSY** — a full server refuses *new* sessions with
  the named ``busy`` error carrying ``retry_after`` (clients back off
  instead of erroring out), while resumes of existing sessions are
  always admitted: they finish work the server already holds durable
  state for.
* **Resume fencing** — when connections race to resume one session
  (the reconnect storm a server restart causes), the owner token fences
  every superseded connection: its frames get the named
  ``session-state`` error, nothing it sends can interleave into the
  stream, and the final report is exactly the uncontended one.
"""

from __future__ import annotations

import json
import socket
import tempfile
import threading

import pytest

from repro.cli import DETECTORS
from repro.net import (
    ResilientClient,
    ServerConfig,
    TelemetryClient,
    TelemetryServer,
)
from repro.net.protocol import (
    ErrorMessage,
    EventsChunk,
    FrameDecoder,
    Hello,
    HelloAck,
    ServerBusy,
    decode_message,
    encode_message,
)
from repro.obs import RunObserver, SyncIndex
from repro.obs.provenance import DEFAULT_WINDOW, FlightRecorder
from repro.obs.reports import build_report
from repro.trace.generator import GeneratorConfig, random_trace

TRACE = random_trace(
    GeneratorConfig(length=600, sampling_period_prob=0.05, seed=0)
)
EVENTS = list(TRACE.events)

TRANSPORTS = ["tcp", "unix"]


def make_address(kind: str) -> str:
    if kind == "tcp":
        return "tcp://127.0.0.1:0"
    return f"unix://{tempfile.mkdtemp(prefix='repro-net-')}/t.sock"


class Conn:
    """A hand-driven protocol connection over either transport."""

    def __init__(self, address: str):
        from repro.net.client import parse_address

        kind, target = parse_address(address)
        if kind == "tcp":
            self.sock = socket.create_connection(target, timeout=10.0)
        else:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.settimeout(10.0)
            self.sock.connect(target)
        self.decoder = FrameDecoder()
        self.frames = []

    def send(self, msg) -> None:
        self.sock.sendall(encode_message(msg))

    def recv_msg(self):
        while not self.frames:
            data = self.sock.recv(65536)
            assert data, "server closed without a reply"
            self.frames.extend(self.decoder.feed(data))
        return decode_message(self.frames.pop(0))

    def hello(self, name: str, resume: bool = False) -> HelloAck:
        self.send(Hello(session=name, resume=resume))
        ack = self.recv_msg()
        assert isinstance(ack, HelloAck), ack
        return ack

    def expect_error(self, code: str) -> ErrorMessage:
        msg = self.recv_msg()
        assert isinstance(msg, ErrorMessage), f"expected ERROR, got {msg}"
        assert msg.error_code == code, f"{msg.error_code}: {msg.detail}"
        return msg

    def close(self) -> None:
        self.sock.close()


def offline_report(backend: str = "object"):
    det = DETECTORS["fasttrack"](backend=backend)
    obs = RunObserver(recorder=FlightRecorder(window=DEFAULT_WINDOW))
    obs.attach(det)
    det.run(EVENTS)
    obs.finalize(det)
    return build_report(
        det.races, source="analyze", detector=det.name,
        backend=det.backend_name, rate=None, events=det.perf.events,
        contexts=obs.race_contexts, sync=SyncIndex.from_trace(TRACE),
        site_name=None,
    )


def canonical(report_doc: dict) -> str:
    doc = dict(report_doc)
    doc.pop("source")
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_session_limit_answers_busy_with_retry_after(kind):
    config = ServerConfig(
        address=make_address(kind), n_shards=1, shard_mode="inline",
        max_sessions=1, busy_retry_after=0.5,
    )
    with TelemetryServer(config) as server:
        first = Conn(server.address)
        first.hello("occupant")
        # a second *new* session is shed with the named BUSY error
        second = Conn(server.address)
        second.send(Hello(session="overflow"))
        err = second.expect_error("busy")
        assert "session limit" in err.detail
        assert err.retry_after == 0.5
        second.close()
        # ...but a resume of the admitted session always passes
        first.close()
        back = Conn(server.address)
        ack = back.hello("occupant", resume=True)
        assert ack.resume_seq == 0
        back.close()
        assert server.metrics.counter("net_shed_sessions").value == 1


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_resilient_client_backs_off_on_busy_then_surfaces_it(kind):
    config = ServerConfig(
        address=make_address(kind), n_shards=1, shard_mode="inline",
        max_sessions=1, busy_retry_after=0.01,
    )
    with TelemetryServer(config) as server:
        occupant = Conn(server.address)
        occupant.hello("occupant")
        rc = ResilientClient(
            server.address, "overflow", retries=2,
            backoff_base=0.001, backoff_max=0.01,
        )
        with pytest.raises(ServerBusy):
            rc.connect()
        assert rc.retry_count == 2  # the budget was spent backing off
        assert rc.backoff_seconds > 0
        occupant.close()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_resume_fencing_takeover_storm(kind):
    """Racing resumes: only the latest owner's frames are admitted."""
    off_doc = offline_report()
    config = ServerConfig(
        address=make_address(kind), n_shards=1, shard_mode="inline",
    )
    with TelemetryServer(config) as server:
        client = TelemetryClient(
            server.address, "storm", backend="object", chunk_size=37
        )
        client.connect()
        half = len(EVENTS) // 2
        client.send_events(EVENTS[:half])
        client.abort()  # dirty disconnect: the server still sees it attached

        # the storm: a burst of connections all resuming the session;
        # each takeover fences the previous owner
        flash = []
        acks = []
        for _ in range(4):
            conn = Conn(server.address)
            acks.append(conn.hello("storm", resume=True))
            flash.append(conn)
        loser = flash[-2]
        # every connection is fenced now except the last, and nothing
        # is sending: the applied sequence is frozen at the last ack
        applied = acks[-1].resume_seq
        # the superseded connection's in-flight chunk is rejected with
        # the named fencing error and is NOT applied
        loser.send(
            EventsChunk(seq=applied + 1, events=tuple(EVENTS[:3]))
        )
        err = loser.expect_error("session-state")
        assert "superseded" in err.detail
        for conn in flash:
            conn.close()

        # concurrent flapping: resumes racing from threads must each
        # either win cleanly or be fenced — never corrupt the stream
        def flap():
            conn = Conn(server.address)
            conn.hello("storm", resume=True)
            conn.close()

        threads = [threading.Thread(target=flap) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # the real client resumes last (one more takeover) and finishes
        ack = client.reconnect()
        assert ack.resume_seq == applied
        client.send_events(EVENTS[half:])
        summary = client.close()
        sdoc = server.session_doc("storm")
        takeovers = server.metrics.counter("net_session_takeovers").value
    assert summary["events"] == len(EVENTS)
    assert canonical(sdoc["report"]) == canonical(off_doc)
    # each sequential flash resume supersedes a still-open owner; the
    # flapping threads and final resume may add more (timing-dependent)
    assert takeovers >= 3
