"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import DETECTORS, main
from repro.trace.binio import load_trace_binary
from repro.trace.textio import dump_trace, load_trace
from repro.trace.events import fork, wr


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("eclipse", "hsqldb", "xalan", "pseudojbb"):
            assert name in out


class TestRecordAnalyze:
    def test_record_then_analyze(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        assert main(["record", "pseudojbb", str(path), "--scale", "0.15"]) == 0
        assert path.exists()
        assert main(["analyze", str(path), "--detector", "fasttrack"]) == 0
        out = capsys.readouterr().out
        assert "race reports" in out

    def test_record_binary(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert main(
            ["record", "xalan", str(path), "--scale", "0.1", "--format", "binary"]
        ) == 0
        assert load_trace_binary(path).n_accesses > 0

    def test_analyze_autodetects_binary(self, tmp_path, capsys):
        path = tmp_path / "t.pacr"
        main(["record", "pseudojbb", str(path), "--scale", "0.15", "--format", "binary"])
        assert main(["analyze", str(path)]) == 0

    def test_fail_on_race_exit_code(self, tmp_path):
        path = tmp_path / "racy.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
        assert main(["analyze", str(path), "--fail-on-race"]) == 1
        assert main(["analyze", str(path)]) == 0

    @pytest.mark.parametrize("detector", sorted(DETECTORS))
    def test_every_detector_runs(self, detector, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
        assert main(["analyze", str(path), "--detector", detector]) == 0


class TestOracle:
    def test_oracle_summary(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
        assert main(["oracle", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 racing pairs" in out


class TestDetect:
    def test_pacer_with_rate(self, capsys):
        assert main(
            ["detect", "pseudojbb", "--rate", "50", "--scale", "0.15"]
        ) == 0
        out = capsys.readouterr().out
        assert "effective sampling rate" in out

    def test_rate_rejected_for_other_detectors(self, capsys):
        assert main(
            ["detect", "pseudojbb", "--detector", "fasttrack", "--rate", "5"]
        ) == 2

    def test_fasttrack_detect(self, capsys):
        assert main(
            ["detect", "pseudojbb", "--detector", "fasttrack", "--scale", "0.15"]
        ) == 0
        assert "race reports" in capsys.readouterr().out


class TestConvert:
    def test_text_to_binary_and_back(self, tmp_path, capsys):
        text = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1)], text)
        binary = tmp_path / "t.bin"
        assert main(["convert", str(text), str(binary), "--format", "binary"]) == 0
        back = tmp_path / "back.txt"
        assert main(["convert", str(binary), str(back), "--format", "text"]) == 0
        assert load_trace(back).events == load_trace(text).events


class TestVerifyTrace:
    def _record_binary(self, tmp_path, capsys):
        path = tmp_path / "t.pacr"
        assert main(["record", "micro", str(path), "--seed", "1",
                     "--scale", "0.4", "--format", "binary"]) == 0
        capsys.readouterr()  # drop record's own chatter
        return path

    def test_ok_binary(self, tmp_path, capsys):
        path = self._record_binary(tmp_path, capsys)
        assert main(["verify-trace", str(path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"OK {path}:")
        assert "v2" in out and "crc32" in out and "feasible" in out

    def test_ok_text(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(1, 5, 9)], path)
        assert main(["verify-trace", str(path)]) == 0
        assert "2 events, text" in capsys.readouterr().out

    def test_corrupt_binary_fails(self, tmp_path, capsys):
        path = self._record_binary(tmp_path, capsys)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert main(["verify-trace", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith(f"FAIL {path}:")

    def test_json_output(self, tmp_path, capsys):
        import json

        path = self._record_binary(tmp_path, capsys)
        assert main(["verify-trace", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["version"] == 2
        assert doc["checksummed"] is True
        assert doc["events"] > 0

    def test_json_failure(self, tmp_path, capsys):
        import json

        path = self._record_binary(tmp_path, capsys)
        path.write_bytes(path.read_bytes()[:-2])
        assert main(["verify-trace", str(path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and "error" in doc

    def test_missing_file(self, tmp_path, capsys):
        assert main(["verify-trace", str(tmp_path / "nope.pacr")]) == 1
        assert capsys.readouterr().err.startswith("FAIL ")


class TestMatrixRobustness:
    MATRIX = ["matrix", "--workloads", "micro", "--detectors", "fasttrack",
              "--seeds", "2", "--scale", "0.4"]

    def test_resume_requires_checkpoint(self, capsys):
        assert main(self.MATRIX + ["--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_bad_fault_plan_rejected(self, capsys):
        assert main(self.MATRIX + ["--fault-plan", "zap@3"]) == 2
        assert "bad fault plan" in capsys.readouterr().err

    def test_checkpoint_then_resume_is_byte_identical(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
        assert main(self.MATRIX + ["--checkpoint", str(ck),
                                   "--metrics-out", str(m1)]) == 0
        assert ck.exists()
        # resume of a finished journal reruns nothing, re-merges the same
        assert main(self.MATRIX + ["--checkpoint", str(ck), "--resume",
                                   "--metrics-out", str(m2)]) == 0
        assert "2 of 2 trial(s) already journaled" in capsys.readouterr().out
        assert m1.read_bytes() == m2.read_bytes()

    def test_resume_rejects_different_matrix(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        assert main(self.MATRIX + ["--checkpoint", str(ck)]) == 0
        other = list(self.MATRIX)
        other[other.index("2")] = "3"  # --seeds 3: a different campaign
        assert main(other + ["--checkpoint", str(ck), "--resume"]) == 2
        assert "different task matrix" in capsys.readouterr().err

    def test_poison_task_quarantined_not_fatal(self, tmp_path, capsys):
        import json

        qpath = tmp_path / "q.json"
        assert main(self.MATRIX + ["--fault-plan", "raise@0*inf",
                                   "--quarantine-out", str(qpath)]) == 0
        doc = json.loads(qpath.read_text())
        (entry,) = doc["quarantined"]
        assert entry["workload"] == "micro"
        assert entry["seed"] == 0
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_no_quarantine_makes_poison_fatal(self, capsys):
        assert main(self.MATRIX + ["--fault-plan", "raise@0*inf",
                                   "--no-quarantine"]) == 1
        err = capsys.readouterr().err
        assert "dropped 1 task(s)" in err
        assert "detector='fasttrack'" in err
