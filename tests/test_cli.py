"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import DETECTORS, main
from repro.trace.binio import load_trace_binary
from repro.trace.textio import dump_trace, load_trace
from repro.trace.events import fork, wr


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("eclipse", "hsqldb", "xalan", "pseudojbb"):
            assert name in out


class TestRecordAnalyze:
    def test_record_then_analyze(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        assert main(["record", "pseudojbb", str(path), "--scale", "0.15"]) == 0
        assert path.exists()
        assert main(["analyze", str(path), "--detector", "fasttrack"]) == 0
        out = capsys.readouterr().out
        assert "race reports" in out

    def test_record_binary(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert main(
            ["record", "xalan", str(path), "--scale", "0.1", "--format", "binary"]
        ) == 0
        assert load_trace_binary(path).n_accesses > 0

    def test_analyze_autodetects_binary(self, tmp_path, capsys):
        path = tmp_path / "t.pacr"
        main(["record", "pseudojbb", str(path), "--scale", "0.15", "--format", "binary"])
        assert main(["analyze", str(path)]) == 0

    def test_fail_on_race_exit_code(self, tmp_path):
        path = tmp_path / "racy.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
        assert main(["analyze", str(path), "--fail-on-race"]) == 1
        assert main(["analyze", str(path)]) == 0

    @pytest.mark.parametrize("detector", sorted(DETECTORS))
    def test_every_detector_runs(self, detector, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
        assert main(["analyze", str(path), "--detector", detector]) == 0


class TestOracle:
    def test_oracle_summary(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1), wr(1, 1, 2)], path)
        assert main(["oracle", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 racing pairs" in out


class TestDetect:
    def test_pacer_with_rate(self, capsys):
        assert main(
            ["detect", "pseudojbb", "--rate", "50", "--scale", "0.15"]
        ) == 0
        out = capsys.readouterr().out
        assert "effective sampling rate" in out

    def test_rate_rejected_for_other_detectors(self, capsys):
        assert main(
            ["detect", "pseudojbb", "--detector", "fasttrack", "--rate", "5"]
        ) == 2

    def test_fasttrack_detect(self, capsys):
        assert main(
            ["detect", "pseudojbb", "--detector", "fasttrack", "--scale", "0.15"]
        ) == 0
        assert "race reports" in capsys.readouterr().out


class TestConvert:
    def test_text_to_binary_and_back(self, tmp_path, capsys):
        text = tmp_path / "t.txt"
        dump_trace([fork(0, 1), wr(0, 1, 1)], text)
        binary = tmp_path / "t.bin"
        assert main(["convert", str(text), str(binary), "--format", "binary"]) == 0
        back = tmp_path / "back.txt"
        assert main(["convert", str(binary), str(back), "--format", "text"]) == 0
        assert load_trace(back).events == load_trace(text).events
