"""Backend-selection errors and availability gating.

``resolve_backend`` is the single funnel every layer goes through —
CLI flags, the ``REPRO_STATE_BACKEND`` environment variable, detector
constructors, net handshakes.  These tests pin its error surface:

* unknown names fail with a stable message naming the *available*
  backends,
* asking for ``packed-np`` on an interpreter without numpy fails with a
  distinct message pointing at the ``[np]`` extra (not a generic
  "unknown backend"),
* ``BACKENDS`` reflects availability while ``ALL_BACKENDS`` stays the
  full universe, so choice lists degrade gracefully.
"""

from __future__ import annotations

import pytest

import repro.core.backend as backend_mod
from repro.core.backend import (
    ALL_BACKENDS,
    BACKENDS,
    DEFAULT_BACKEND,
    resolve_backend,
)
from repro.detectors import FastTrackDetector


def test_backend_universe_is_consistent():
    assert ALL_BACKENDS == ("object", "packed", "packed-np")
    # BACKENDS is always an availability-ordered prefix of ALL_BACKENDS
    assert BACKENDS in (ALL_BACKENDS, ALL_BACKENDS[:2])
    assert DEFAULT_BACKEND in BACKENDS


def test_resolve_explicit_and_default():
    assert resolve_backend("object") == "object"
    assert resolve_backend("packed") == "packed"
    assert resolve_backend(None) == DEFAULT_BACKEND


def test_resolve_unknown_backend_names_choices():
    with pytest.raises(ValueError) as exc:
        resolve_backend("slab-of-wasps")
    msg = str(exc.value)
    assert "unknown state backend 'slab-of-wasps'" in msg
    for name in BACKENDS:
        assert name in msg


def test_environment_variable_is_honored(monkeypatch):
    monkeypatch.setenv("REPRO_STATE_BACKEND", "object")
    assert resolve_backend(None) == "object"
    # an explicit argument wins over the environment
    assert resolve_backend("packed") == "packed"
    # the empty string means "unset", not "backend named ''"
    monkeypatch.setenv("REPRO_STATE_BACKEND", "")
    assert resolve_backend(None) == DEFAULT_BACKEND


def test_environment_variable_unknown_value(monkeypatch):
    monkeypatch.setenv("REPRO_STATE_BACKEND", "nope")
    with pytest.raises(ValueError, match="unknown state backend 'nope'"):
        resolve_backend(None)


def test_packed_np_without_numpy_points_at_extra(monkeypatch):
    """Simulate a numpy-less interpreter: ``packed-np`` must fail with
    the install hint, not the generic unknown-name error."""
    monkeypatch.setattr(backend_mod, "BACKENDS", ALL_BACKENDS[:2])
    with pytest.raises(ValueError) as exc:
        backend_mod.resolve_backend("packed-np")
    msg = str(exc.value)
    assert "requires numpy" in msg
    assert "[np]" in msg
    assert "'object', 'packed'" in msg
    # a genuinely unknown name still gets the unknown-name error
    with pytest.raises(ValueError, match="unknown state backend"):
        backend_mod.resolve_backend("packed-np2")


def test_detector_constructor_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown state backend"):
        FastTrackDetector(backend="bogus")


def test_cli_rejects_unknown_backend(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as exc:
        main(["analyze", "--workload", "micro", "--state-backend", "bogus"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "--state-backend" in err
    for name in BACKENDS:
        assert name in err


@pytest.mark.skipif(
    "packed-np" not in BACKENDS, reason="numpy not installed"
)
def test_packed_np_resolves_when_numpy_present():
    assert resolve_backend("packed-np") == "packed-np"
    det = FastTrackDetector(backend="packed-np")
    assert det.backend_name == "packed-np"
