"""The exact happens-before oracle: ground truth for everything else."""

from repro.detectors import GenericDetector
from repro.trace.events import acq, fork, join, rd, rel, sbegin, send, vol_rd, vol_wr, wr
from repro.trace.generator import race_free_trace, random_trace
from repro.trace.oracle import HBOracle

X, Y = 1, 2
L = 100
V = 200


class TestHappensBefore:
    def test_program_order(self):
        o = HBOracle([wr(0, X), rd(0, X)])
        a, b = o.accesses
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_concurrent_accesses(self):
        o = HBOracle([fork(0, 1), wr(0, X), wr(1, X)])
        a, b = o.accesses
        assert a.concurrent_with(b)

    def test_lock_edge(self):
        o = HBOracle(
            [fork(0, 1), acq(0, L), wr(0, X), rel(0, L), acq(1, L), wr(1, X)]
        )
        a, b = o.accesses
        assert a.happens_before(b)

    def test_fork_edge(self):
        o = HBOracle([wr(0, X), fork(0, 1), rd(1, X)])
        a, b = o.accesses
        assert a.happens_before(b)

    def test_join_edge(self):
        o = HBOracle([fork(0, 1), wr(1, X), join(0, 1), rd(0, X)])
        a, b = o.accesses
        assert a.happens_before(b)

    def test_volatile_edge(self):
        o = HBOracle([fork(0, 1), wr(0, X), vol_wr(0, V), vol_rd(1, V), rd(1, X)])
        a, b = o.accesses
        assert a.happens_before(b)

    def test_sampling_markers_carry_no_edges(self):
        o = HBOracle([fork(0, 1), wr(0, X), sbegin(), send(), wr(1, X)])
        a, b = o.accesses
        assert a.concurrent_with(b)

    def test_conflicts(self):
        o = HBOracle([fork(0, 1), rd(0, X), rd(1, X), wr(1, Y)])
        r0, r1, w = o.accesses
        assert not r0.conflicts_with(r1)  # two reads
        assert not r0.conflicts_with(w)  # different variable
        assert w.conflicts_with(w) or True  # self-conflict is irrelevant


class TestRaceEnumeration:
    def test_all_races_simple(self):
        o = HBOracle([fork(0, 1), wr(0, X, 1), wr(1, X, 2)])
        races = o.all_races()
        assert len(races) == 1
        assert races[0].kind == "ww"
        assert races[0].distinct_key == (1, 2)

    def test_all_races_transitive_pairs(self):
        # three concurrent writes: 3 racing pairs
        o = HBOracle([fork(0, 1), fork(0, 2), wr(0, X), wr(1, X), wr(2, X)])
        assert len(o.all_races()) == 3

    def test_reportable_races_last_racer_only(self):
        # w0, w1, r2: all concurrent; reportable for r2 is (w1, r2) only
        o = HBOracle([fork(0, 1), fork(0, 2), wr(0, X), wr(1, X), rd(2, X)])
        reportable = o.reportable_races()
        seconds = [(r.first.index, r.second.index) for r in reportable]
        assert (3, 4) in seconds  # w1 -> r2
        assert (2, 4) not in seconds  # w0 is not the last racer of r2

    def test_is_race_free(self):
        assert HBOracle([fork(0, 1), acq(0, L), wr(0, X), rel(0, L)]).is_race_free()
        assert not HBOracle([fork(0, 1), wr(0, X), wr(1, X)]).is_race_free()

    def test_racy_variables(self):
        o = HBOracle([fork(0, 1), wr(0, X), wr(1, X), wr(0, Y)])
        assert o.racy_variables() == {X}

    def test_generated_race_free_traces(self):
        for seed in range(8):
            assert HBOracle(race_free_trace(seed=seed, length=200)).is_race_free()

    def test_agrees_with_generic_detector(self):
        """GENERIC reports exactly the oracle's racy variables."""
        for seed in range(15):
            trace = random_trace(seed=seed, length=300)
            oracle = HBOracle(trace)
            g = GenericDetector()
            g.run(trace)
            assert {r.var for r in g.races} == oracle.racy_variables()

    def test_generic_reports_are_true_racing_pairs(self):
        """Every GENERIC report corresponds to a true racing pair (it
        keeps only each thread's last access, so it reports a subset)."""
        for seed in range(10):
            trace = random_trace(seed=seed, length=250)
            oracle = HBOracle(trace)
            truth = {(r.first.index, r.second.index) for r in oracle.all_races()}
            g = GenericDetector()
            g.run(trace)
            reported = {(r.first_index, r.index) for r in g.races}
            assert reported <= truth
