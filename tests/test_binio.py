"""Binary trace format: round trips, compactness, corruption handling."""

import pytest

from repro.trace.binio import (
    dump_trace_binary,
    dumps_binary,
    load_trace_binary,
    loads_binary,
)
from repro.trace.events import Event, rd, sbegin, send, wr
from repro.trace.generator import random_trace
from repro.trace.textio import dumps_trace


class TestRoundTrip:
    def test_simple(self):
        events = [wr(0, 5, 9), sbegin(), rd(1, 5), send()]
        assert loads_binary(dumps_binary(events), validate=False).events == events

    def test_random_traces(self):
        for seed in range(6):
            trace = random_trace(seed=seed, length=300, sampling_period_prob=0.05)
            again = loads_binary(dumps_binary(trace.events))
            assert again.events == trace.events

    def test_negative_site_zigzag(self):
        events = [Event("alloc", 0, 64, -7)]
        assert loads_binary(dumps_binary(events), validate=False).events == events

    def test_large_ids(self):
        events = [wr(12345, 10**9, 2**40)]
        assert loads_binary(dumps_binary(events), validate=False).events == events

    def test_empty_trace(self):
        assert loads_binary(dumps_binary([]), validate=False).events == []

    def test_file_round_trip(self, tmp_path):
        trace = random_trace(seed=2, length=150)
        path = tmp_path / "t.pacr"
        dump_trace_binary(trace, path)
        assert load_trace_binary(path).events == trace.events

    def test_smaller_than_text(self):
        trace = random_trace(seed=4, length=2000)
        assert len(dumps_binary(trace.events)) < 0.6 * len(
            dumps_trace(trace.events).encode()
        )


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            loads_binary(b"NOPE" + b"\x01\x00")

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            loads_binary(b"PACR\x63\x00")

    def test_truncated(self):
        data = dumps_binary([wr(0, 5, 9), rd(1, 5, 3)])
        with pytest.raises(ValueError, match="truncated"):
            loads_binary(data[:-2])

    def test_trailing_garbage(self):
        data = dumps_binary([wr(0, 5, 9)])
        with pytest.raises(ValueError, match="trailing"):
            loads_binary(data + b"\x00\x00")

    def test_unknown_kind_rejected_on_write(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            dumps_binary([Event("zap", 0, 0, 0)])


class TestPropertyRoundTrip:
    def test_arbitrary_events_round_trip(self):
        from hypothesis import given, settings, strategies as st

        from repro.trace.binio import _KIND_TO_ID

        kinds = sorted(set(_KIND_TO_ID) - {"sbegin", "send"})

        @settings(max_examples=150, deadline=None)
        @given(
            st.lists(
                st.one_of(
                    st.builds(
                        Event,
                        st.sampled_from(kinds),
                        st.integers(0, 10_000),
                        st.integers(0, 2**32),
                        st.integers(-(2**20), 2**20),
                    ),
                    st.just(sbegin()),
                    st.just(send()),
                ),
                max_size=40,
            )
        )
        def round_trips(events):
            assert loads_binary(dumps_binary(events), validate=False).events == events

        round_trips()


class TestV2Checksum:
    """The v2 trailer: CRC32 catches silent corruption, and every
    failure mode names itself distinctly."""

    def test_v2_is_the_default_and_carries_a_trailer(self):
        from repro.trace.binio import VERSION

        data = dumps_binary([wr(0, 5, 9)])
        assert data[4] == VERSION
        # the trailer is exactly the CRC32 of everything before it
        import zlib

        stored = int.from_bytes(data[-4:], "little")
        assert stored == zlib.crc32(data[:-4])

    def test_zero_event_v2_round_trip(self):
        data = dumps_binary([])
        assert len(data) == 10  # magic + version + count + crc32
        assert loads_binary(data, validate=False).events == []

    def test_v1_files_still_load(self):
        from repro.trace.binio import VERSION_1

        events = [wr(0, 5, 9), sbegin(), rd(1, 5), send()]
        data = dumps_binary(events, version=VERSION_1)
        assert data[4] == VERSION_1
        assert loads_binary(data, validate=False).events == events

    def test_bit_flip_anywhere_in_body_is_caught(self):
        """Any single-bit flip is rejected — either the structural
        parser trips on it, or the CRC32 check does."""
        from repro.trace.trace import TraceFormatError
        from repro.util.faults import flip_byte

        data = dumps_binary(random_trace(seed=9, length=120).events)
        for offset in (5, 7, len(data) // 2, len(data) - 5):
            with pytest.raises(TraceFormatError):
                loads_binary(flip_byte(data, offset, mask=0x01))

    def test_flipped_trailer_is_caught(self):
        from repro.util.faults import flip_byte

        data = dumps_binary([wr(0, 5, 9)])
        with pytest.raises(ValueError, match="CRC32 mismatch"):
            loads_binary(flip_byte(data, -1))

    def test_mid_varint_truncation_names_the_byte(self):
        from repro.util.faults import truncate_bytes

        data = dumps_binary([wr(0, 5, 9), rd(1, 5, 3)], version=1)
        with pytest.raises(ValueError, match="truncated varint at byte"):
            loads_binary(truncate_bytes(data, 1))

    def test_failure_modes_are_distinct(self):
        """Operators must be able to tell *what* broke from the message."""
        data = dumps_binary([wr(0, 5, 9)])
        with pytest.raises(ValueError, match="bad magic"):
            loads_binary(b"XXXX" + data[4:])
        with pytest.raises(ValueError, match="unsupported .*version 99"):
            loads_binary(data[:4] + b"\x63" + data[5:])
        with pytest.raises(ValueError, match="truncated trailer"):
            loads_binary(data[:8])

    def test_crc_error_reports_both_values(self):
        # structurally valid bytes, wrong trailer: only the CRC can object
        good = dumps_binary([wr(0, 5, 9)])
        bad = good[:-4] + bytes(b ^ 0xFF for b in good[-4:])
        with pytest.raises(ValueError, match="stored 0x[0-9a-f]{8}, computed 0x[0-9a-f]{8}"):
            loads_binary(bad)

    def test_describe_binary(self):
        from repro.trace.binio import VERSION, describe_binary

        events = random_trace(seed=3, length=80).events
        data = dumps_binary(events)
        info = describe_binary(data)
        assert info["format"] == "binary"
        assert info["version"] == VERSION
        assert info["events"] == len(events)
        assert info["bytes"] == len(data)
        assert info["checksummed"] is True
        assert isinstance(info["crc32"], str)

    def test_describe_binary_v1_has_no_crc(self):
        from repro.trace.binio import describe_binary

        data = dumps_binary([wr(0, 5, 9)], version=1)
        info = describe_binary(data)
        assert info["checksummed"] is False
        assert info["crc32"] is None


class TestColumnReader:
    """The vectorized/mmap column reader is observationally identical to
    the scalar reader: same decoded events on clean input, same
    ``TraceFormatError`` (type *and* message) on corrupt input."""

    def _assert_same_decode(self, data):
        from repro.trace.binio import loads_binary_columns

        try:
            expected = loads_binary(bytes(data), validate=False).events
        except ValueError as exc:
            with pytest.raises(type(exc)) as got:
                loads_binary_columns(data)
            assert str(got.value) == str(exc)
            return None
        batch = loads_binary_columns(data)
        assert batch.to_events() == expected
        return batch

    def test_round_trip_simple(self):
        events = [wr(0, 5, 9), sbegin(), rd(1, 5), send(), rd(0, 6, 2)]
        self._assert_same_decode(dumps_binary(events))

    def test_round_trip_random_traces(self):
        for seed in range(6):
            trace = random_trace(seed=seed, length=300, sampling_period_prob=0.05)
            self._assert_same_decode(dumps_binary(trace.events))

    def test_marker_lookalike_operands(self):
        """Values 8/9 (the sbegin/send kind ids) appearing as tids,
        targets, and sites must not confuse record-boundary recovery."""
        events = [
            wr(8, 9, 8), sbegin(), rd(9, 8, 9), wr(7, 8, 0), send(),
            sbegin(), send(), sbegin(), rd(8, 8, 8), send(),
        ]
        self._assert_same_decode(dumps_binary(events))

    def test_large_values_fall_back_to_scalar(self):
        # >= 2^35 operands take the scalar path; the decode still agrees
        events = [wr(12345, 10**12, 2**40), rd(0, 1, -(2**40))]
        self._assert_same_decode(dumps_binary(events))

    def test_empty_trace(self):
        from repro.trace.binio import loads_binary_columns

        assert loads_binary_columns(dumps_binary([])).to_events() == []

    def test_v1_files_decode_too(self):
        events = random_trace(seed=7, length=120).events
        self._assert_same_decode(dumps_binary(events, version=1))

    def test_mmap_file_round_trip(self, tmp_path):
        from repro.trace.binio import load_trace_columns

        trace = random_trace(seed=11, length=400, sampling_period_prob=0.05)
        path = tmp_path / "t.pacr"
        dump_trace_binary(trace, path)
        batch = load_trace_columns(path)
        assert batch.to_events() == trace.events

    def test_mmap_corrupt_file_matches_scalar_error(self, tmp_path):
        from repro.trace.binio import load_trace_columns

        data = dumps_binary(random_trace(seed=1, length=60).events)
        bad = data[:-4] + bytes(b ^ 0xFF for b in data[-4:])
        path = tmp_path / "bad.pacr"
        path.write_bytes(bad)
        with pytest.raises(ValueError, match="CRC32 mismatch"):
            load_trace_columns(path)
        (tmp_path / "empty.pacr").write_bytes(b"")
        with pytest.raises(ValueError, match="bad magic"):
            load_trace_columns(tmp_path / "empty.pacr")

    def test_columns_feed_the_kernels(self):
        """End to end: decoded columns drive a detector identically to
        scalar events (the zero-copy path the packed-np kernels use)."""
        from repro.core.backend import BACKENDS
        from repro.detectors import FastTrackDetector
        from repro.trace.binio import loads_binary_columns

        trace = random_trace(seed=5, length=500)
        data = dumps_binary(trace.events)
        ref = FastTrackDetector()
        ref.run(list(trace.events))
        for backend in BACKENDS:
            det = FastTrackDetector(backend=backend)
            det.run_batch(loads_binary_columns(data))
            assert [r.distinct_key for r in det.races] == [
                r.distinct_key for r in ref.races
            ], backend
            assert det.counters.snapshot() == ref.counters.snapshot(), backend

    def test_property_columns_equal_scalar(self):
        """Hypothesis: for arbitrary traces the column reader round-trips
        byte-identically with the object reader — including traces whose
        bytes are then corrupted (CRC failures) or torn mid-record."""
        from hypothesis import given, settings, strategies as st

        from repro.trace.events import KIND_TO_ID

        kinds = [k for k in KIND_TO_ID if k not in ("sbegin", "send")]
        events_st = st.lists(
            st.one_of(
                st.builds(
                    Event,
                    st.sampled_from(kinds),
                    st.integers(0, 10_000),
                    st.integers(0, 2**36),
                    st.integers(-(2**35), 2**35),
                ),
                st.just(sbegin()),
                st.just(send()),
            ),
            max_size=60,
        )

        @settings(max_examples=150, deadline=None)
        @given(
            events_st,
            st.sampled_from(["clean", "flip", "tear"]),
            st.data(),
        )
        def check(events, damage, data_st):
            data = dumps_binary(events)
            if damage == "flip" and len(data) > 0:
                i = data_st.draw(st.integers(0, len(data) - 1))
                bit = data_st.draw(st.integers(0, 7))
                data = data[:i] + bytes([data[i] ^ (1 << bit)]) + data[i + 1:]
            elif damage == "tear":
                keep = data_st.draw(st.integers(0, len(data)))
                data = data[:keep]
            self._assert_same_decode(data)

        check()
