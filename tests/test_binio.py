"""Binary trace format: round trips, compactness, corruption handling."""

import pytest

from repro.trace.binio import (
    dump_trace_binary,
    dumps_binary,
    load_trace_binary,
    loads_binary,
)
from repro.trace.events import Event, rd, sbegin, send, wr
from repro.trace.generator import random_trace
from repro.trace.textio import dumps_trace


class TestRoundTrip:
    def test_simple(self):
        events = [wr(0, 5, 9), sbegin(), rd(1, 5), send()]
        assert loads_binary(dumps_binary(events), validate=False).events == events

    def test_random_traces(self):
        for seed in range(6):
            trace = random_trace(seed=seed, length=300, sampling_period_prob=0.05)
            again = loads_binary(dumps_binary(trace.events))
            assert again.events == trace.events

    def test_negative_site_zigzag(self):
        events = [Event("alloc", 0, 64, -7)]
        assert loads_binary(dumps_binary(events), validate=False).events == events

    def test_large_ids(self):
        events = [wr(12345, 10**9, 2**40)]
        assert loads_binary(dumps_binary(events), validate=False).events == events

    def test_empty_trace(self):
        assert loads_binary(dumps_binary([]), validate=False).events == []

    def test_file_round_trip(self, tmp_path):
        trace = random_trace(seed=2, length=150)
        path = tmp_path / "t.pacr"
        dump_trace_binary(trace, path)
        assert load_trace_binary(path).events == trace.events

    def test_smaller_than_text(self):
        trace = random_trace(seed=4, length=2000)
        assert len(dumps_binary(trace.events)) < 0.6 * len(
            dumps_trace(trace.events).encode()
        )


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            loads_binary(b"NOPE" + b"\x01\x00")

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            loads_binary(b"PACR\x63\x00")

    def test_truncated(self):
        data = dumps_binary([wr(0, 5, 9), rd(1, 5, 3)])
        with pytest.raises(ValueError, match="truncated"):
            loads_binary(data[:-2])

    def test_trailing_garbage(self):
        data = dumps_binary([wr(0, 5, 9)])
        with pytest.raises(ValueError, match="trailing"):
            loads_binary(data + b"\x00\x00")

    def test_unknown_kind_rejected_on_write(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            dumps_binary([Event("zap", 0, 0, 0)])


class TestPropertyRoundTrip:
    def test_arbitrary_events_round_trip(self):
        from hypothesis import given, settings, strategies as st

        from repro.trace.binio import _KIND_TO_ID

        kinds = sorted(set(_KIND_TO_ID) - {"sbegin", "send"})

        @settings(max_examples=150, deadline=None)
        @given(
            st.lists(
                st.one_of(
                    st.builds(
                        Event,
                        st.sampled_from(kinds),
                        st.integers(0, 10_000),
                        st.integers(0, 2**32),
                        st.integers(-(2**20), 2**20),
                    ),
                    st.just(sbegin()),
                    st.just(send()),
                ),
                max_size=40,
            )
        )
        def round_trips(events):
            assert loads_binary(dumps_binary(events), validate=False).events == events

        round_trips()
