"""The managed runtime: GC-driven sampling, bias correction, snapshots."""

import random

import pytest

from repro import FastTrackDetector, PacerDetector
from repro.core.sampling import BiasCorrectedController, ScriptedController
from repro.detectors import NullDetector
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.workloads import (
    PSEUDOJBB,
    build_program,
    counter_race,
    redundant_sync_storm,
)


def small_config(**kw):
    kw.setdefault("nursery_bytes", 1024)
    kw.setdefault("track_memory", True)
    return RuntimeConfig(**kw)


class TestSamplingToggle:
    def test_no_controller_never_samples(self):
        d = PacerDetector()
        rt = Runtime(counter_race(2, 40), d, config=small_config())
        rt.run()
        assert d.sampling is False
        assert rt.effective_sampling_rate == 0.0

    def test_always_on_controller(self):
        d = PacerDetector()
        rt = Runtime(
            redundant_sync_storm(4, 100),
            d,
            controller=ScriptedController([True] * 1000),
            config=small_config(),
        )
        rt.run()
        assert rt.effective_sampling_rate == 1.0
        assert d.sampling is True

    def test_scripted_alternation(self):
        d = PacerDetector()
        rt = Runtime(
            redundant_sync_storm(4, 200),
            d,
            controller=ScriptedController([True, False] * 500),
            config=small_config(),
        )
        rt.run()
        assert 0.0 < rt.effective_sampling_rate < 1.0
        assert len(rt.gc_log) > 4

    def test_effective_rate_tracks_specified(self):
        effs = []
        for k in range(8):
            d = PacerDetector()
            rt = Runtime(
                build_program(PSEUDOJBB, trial_seed=k),
                d,
                controller=BiasCorrectedController(0.2, rng=random.Random(k)),
                config=RuntimeConfig(track_memory=False),
                seed=k,
            )
            rt.run()
            effs.append(rt.effective_sampling_rate)
        mean = sum(effs) / len(effs)
        assert 0.1 < mean < 0.3

    def test_gc_happens(self):
        d = NullDetector()
        rt = Runtime(counter_race(2, 400), d, config=small_config())
        rt.run()
        assert len(rt.gc_log) >= 1


class TestMemorySnapshots:
    def test_snapshots_recorded(self):
        d = FastTrackDetector()
        rt = Runtime(counter_race(4, 300), d, config=small_config(full_gc_every=1))
        rt.run()
        assert len(rt.snapshots) >= 2
        final = rt.snapshots[-1]
        assert final.metadata_words > 0
        assert final.total_words == (
            final.program_words + final.header_words + final.metadata_words
        )

    def test_header_words_optional(self):
        d = NullDetector()
        rt = Runtime(
            counter_race(2, 100),
            d,
            config=small_config(),
            count_headers=False,
        )
        rt.run()
        assert all(s.header_words == 0 for s in rt.snapshots)

    def test_live_objects_grow_program_words(self):
        d = NullDetector()
        rt = Runtime(
            build_program(PSEUDOJBB, trial_seed=0),
            d,
            config=small_config(full_gc_every=1),
        )
        rt.run()
        assert rt.snapshots[-1].program_words > 0

    def test_track_memory_disabled(self):
        d = NullDetector()
        rt = Runtime(
            counter_race(2, 200), d, config=small_config(track_memory=False)
        )
        rt.run()
        assert rt.snapshots == []  # only the final snapshot is skipped too


class TestStats:
    def test_thread_stats_exposed(self):
        d = NullDetector()
        rt = Runtime(build_program(PSEUDOJBB, trial_seed=0), d)
        rt.run()
        assert rt.threads_started == PSEUDOJBB.threads_total
        assert rt.max_live_threads <= PSEUDOJBB.max_live + 1

    def test_detector_races_flow_through(self):
        d = PacerDetector()
        rt = Runtime(
            counter_race(3, 200),
            d,
            controller=ScriptedController([True] * 10_000),
            config=small_config(),
        )
        rt.run()
        assert len(d.races) > 0
