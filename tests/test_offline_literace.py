"""LiteRace's offline record-then-analyze mode (paper §2.3)."""

from repro.analysis.offline import analyze_offline, record_sampled_log
from repro.detectors import FastTrackDetector
from repro.sim.scheduler import run_program
from repro.sim.workloads import ECLIPSE, build_program
from repro.trace.events import Event, fork, join, rd, wr
from repro.trace.generator import race_free_trace


def enter(tid, m):
    return Event("m_enter", tid, m, 0)


def exit_(tid, m):
    return Event("m_exit", tid, m, 0)


class TestRecording:
    def test_log_keeps_all_synchronization(self):
        trace = run_program(build_program(ECLIPSE.scaled(0.2), 0), seed=0)
        log, _rate = record_sampled_log(trace, burst_length=10, seed=1)
        for kind in ("acq", "rel", "fork", "join"):
            assert log.count(kind) == trace.count(kind), kind

    def test_log_drops_unsampled_accesses(self):
        trace = run_program(build_program(ECLIPSE.scaled(0.2), 0), seed=0)
        log, rate = record_sampled_log(trace, burst_length=5, seed=1)
        assert log.n_accesses < trace.n_accesses
        assert 0 < rate < 1

    def test_log_size_tracks_data_not_rate(self):
        """The paper's criticism: halving the effective rate does not
        halve the sync-dominated log."""
        trace = run_program(build_program(ECLIPSE.scaled(0.2), 0), seed=0)
        big, rate_big = record_sampled_log(trace, burst_length=200, seed=1)
        small, rate_small = record_sampled_log(trace, burst_length=5, seed=1)
        assert rate_small < rate_big
        # the sync backbone keeps the small log from shrinking in kind
        assert len(small) > trace.n_sync_ops

    def test_cold_accesses_always_in_log(self):
        events = [fork(0, 1)]
        events += [enter(0, 5), wr(0, 9, 1), exit_(0, 5)]
        events += [enter(1, 6), wr(1, 9, 2), exit_(1, 6)]
        events.append(join(0, 1))
        log, _ = record_sampled_log(events, burst_length=10, seed=0)
        assert log.count("wr") == 2


class TestOfflineAnalysis:
    def test_races_in_sampled_log_found(self):
        events = [fork(0, 1)]
        events += [enter(0, 5), wr(0, 9, 1), exit_(0, 5)]
        events += [enter(1, 6), wr(1, 9, 2), exit_(1, 6)]
        events.append(join(0, 1))
        log, _ = record_sampled_log(events, burst_length=10, seed=0)
        detector = analyze_offline(log)
        assert len(detector.races) == 1

    def test_no_false_positives_from_sampling(self):
        """Dropping accesses never invents a race: sync edges are intact."""
        for seed in range(6):
            trace = race_free_trace(seed=seed, length=300)
            log, _ = record_sampled_log(trace, burst_length=3, seed=seed)
            assert analyze_offline(log).races == []

    def test_custom_detector_accepted(self):
        events = [fork(0, 1), wr(0, 9, 1), wr(1, 9, 2)]
        log, _ = record_sampled_log(events, burst_length=10, seed=0)
        detector = analyze_offline(log, FastTrackDetector())
        assert detector.name == "fasttrack"
