#!/usr/bin/env python
"""A monitor-based pipeline with one subtle bug, hunted by sampling.

The program: a producer hands work items to a pool of consumers through
a guarded ``wait``/``notifyAll`` queue (the textbook-correct pattern).
The bug: a "stats" counter the consumers update *outside* the monitor —
the kind of slip that survives code review because the program output is
almost always right.

We run many deployments of PACER at a small sampling rate and watch the
bug surface across the fleet, while the correctly-synchronized queue
traffic never produces a report.

Run:  python examples/pipeline_with_monitors.py
"""

import random
from typing import Generator, Optional

from repro.analysis import wilson_interval
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector
from repro.sim import Program, Runtime, RuntimeConfig
from repro.sim.program import (
    Acquire,
    Fork,
    Join,
    NotifyAll,
    Op,
    Read,
    Release,
    Wait,
    Write,
)

QUEUE_LOCK, QUEUE_SLOT, STATS = 800, 80, 81
SITE_QUEUE_W, SITE_QUEUE_R = 1, 2
SITE_STATS_R, SITE_STATS_W = 3, 4


def build_pipeline(items: int = 150, consumers: int = 3) -> Program:
    state = {"pending": 0, "done": False}

    def consumer(tid: int) -> Generator[Op, Optional[int], None]:
        while True:
            yield Acquire(QUEUE_LOCK)
            while state["pending"] == 0 and not state["done"]:
                yield Wait(QUEUE_LOCK)
            if state["pending"] == 0:
                yield Release(QUEUE_LOCK)
                return
            state["pending"] -= 1
            yield Read(QUEUE_SLOT, SITE_QUEUE_R)  # guarded: never races
            yield Release(QUEUE_LOCK)
            # THE BUG: stats bumped outside the monitor
            yield Read(STATS, SITE_STATS_R)
            yield Write(STATS, SITE_STATS_W)

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        children = []
        for _ in range(consumers):
            children.append((yield Fork(consumer)))
        for _ in range(items):
            yield Acquire(QUEUE_LOCK)
            yield Write(QUEUE_SLOT, SITE_QUEUE_W)
            state["pending"] += 1
            yield NotifyAll(QUEUE_LOCK)
            yield Release(QUEUE_LOCK)
        yield Acquire(QUEUE_LOCK)
        state["done"] = True
        yield NotifyAll(QUEUE_LOCK)
        yield Release(QUEUE_LOCK)
        for child in children:
            yield Join(child)

    return Program(main)


def main() -> None:
    # QA first: full tracking confirms exactly one buggy variable.
    ft = FastTrackDetector()
    Runtime(build_pipeline(), ft, config=RuntimeConfig(track_memory=False), seed=0).run()
    racy_vars = {r.var for r in ft.races}
    print(f"full tracking: racy variables = {sorted(racy_vars)} (STATS={STATS})")
    assert racy_vars == {STATS}

    # The fleet: PACER at r=5% per deployment.
    rate, fleet = 0.05, 40
    detections = 0
    for seed in range(fleet):
        detector = PacerDetector()
        Runtime(
            build_pipeline(),
            detector,
            controller=BiasCorrectedController(rate, rng=random.Random(seed)),
            config=RuntimeConfig(track_memory=False),
            seed=seed,
        ).run()
        assert all(r.var == STATS for r in detector.races)  # precision
        detections += bool(detector.races)
    lo, hi = wilson_interval(detections, fleet)
    print(
        f"\nPACER r={rate:.0%} across {fleet} deployments: "
        f"{detections} reported the stats race "
        f"(per-run detection {detections / fleet:.0%}, 95% CI {lo:.0%}-{hi:.0%})"
    )
    print("the guarded queue itself was never reported — no false positives.")


if __name__ == "__main__":
    main()
