#!/usr/bin/env python
"""Offline trace analysis: record once, analyze many ways.

LiteRace's native mode is offline analysis of logged traces (paper
§2.3).  This example records a workload execution to a plain-text log,
reloads it, and analyzes it with several detectors — including PACER
replayed at different scripted sampling schedules — plus the exact
happens-before oracle as ground truth.

Run:  python examples/offline_trace_analysis.py [trace_file]
"""

import sys
import tempfile
from pathlib import Path

from repro import FastTrackDetector, PacerDetector
from repro.sim.scheduler import run_program
from repro.sim.workloads import XALAN, build_program
from repro.trace.events import sbegin, send
from repro.trace.oracle import HBOracle
from repro.trace.textio import dump_trace, load_trace


def record(path: Path) -> None:
    trace = run_program(build_program(XALAN.scaled(0.15), trial_seed=3), seed=3)
    dump_trace(trace, path)
    print(f"recorded {len(trace)} events to {path}")


def with_schedule(events, rate: float, period: int = 500):
    """Insert sampling markers covering a fraction ``rate`` of periods."""
    out, sampling = [], False
    n_periods = max(1, len(events) // period)
    want = max(1, round(rate * n_periods)) if rate > 0 else 0
    step = n_periods / want if want else 0
    sampled = {int(i * step) for i in range(want)} if want else set()
    for i in range(n_periods + 1):
        should = i in sampled
        if should and not sampling:
            out.append(sbegin())
            sampling = True
        elif not should and sampling:
            out.append(send())
            sampling = False
        out.extend(events[i * period:(i + 1) * period])
    if sampling:
        out.append(send())
    return out


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.mkdtemp()) / "xalan.trace"
    record(path)

    trace = load_trace(path)
    oracle = HBOracle(trace)
    truth = oracle.racy_variables()
    print(f"\noracle ground truth: {len(truth)} racy variables")

    ft = FastTrackDetector()
    ft.run(trace)
    print(f"fasttrack: {len(ft.races)} reports on {len({r.var for r in ft.races})} variables")
    assert {r.var for r in ft.races} <= truth

    print("\npacer replays of the same log at different schedules:")
    for rate in (0.0, 0.05, 0.25, 1.0):
        pacer = PacerDetector()
        pacer.run(with_schedule(trace.events, rate))
        counters = pacer.counters
        fast = counters.reads_fast_nonsampling + counters.writes_fast_nonsampling
        print(
            f"  r={rate:4.0%}: {len(pacer.races):3d} reports, "
            f"{fast:6d} fast-path accesses, "
            f"{pacer.footprint_words():6d} metadata words"
        )
    print("\nsame log, four cost/accuracy points — sampling is a replay-time choice.")


if __name__ == "__main__":
    main()
