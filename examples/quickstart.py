#!/usr/bin/env python
"""Quickstart: detect a data race three ways.

1. Analyze a hand-written event trace with FASTTRACK.
2. Run PACER on the same trace and watch the sampling guarantee at work.
3. Point the detectors at a real simulated program.

Run:  python examples/quickstart.py
"""

from repro import FastTrackDetector, PacerDetector
from repro.sim import run_program
from repro.sim.workloads import counter_race
from repro.trace.events import acq, fork, join, rd, rel, sbegin, send, wr

COUNTER, LOCK = 1, 100


def main() -> None:
    # -- 1. a tiny racy trace ------------------------------------------------
    #
    # Thread 0 writes the counter; thread 1 reads it without ever
    # synchronizing with thread 0.  The read races with the write.
    trace = [
        fork(0, 1),
        wr(0, COUNTER, site=1),
        acq(0, LOCK),
        rel(0, LOCK),
        rd(1, COUNTER, site=2),  # never acquires LOCK: races with site 1
        join(0, 1),
    ]
    ft = FastTrackDetector()
    ft.run(trace)
    print("FASTTRACK on the hand-written trace:")
    for race in ft.races:
        print(f"  {race}")

    # -- 2. PACER: you get what you pay for ----------------------------------
    #
    # The same race, but now the first access sits inside a global
    # sampling period.  PACER guarantees to report it, no matter how far
    # away the second access is, while doing (near-)zero work for
    # everything outside the period.
    sampled_trace = [
        fork(0, 1),
        sbegin(),
        wr(0, COUNTER, site=1),  # sampled first access
        send(),
        rd(1, COUNTER, site=2),  # non-sampled second access: still reported
        join(0, 1),
    ]
    pacer = PacerDetector()
    pacer.run(sampled_trace)
    print("\nPACER (first access sampled):")
    for race in pacer.races:
        print(f"  {race}")

    unsampled = PacerDetector()  # no sampling period at all
    unsampled.run(trace)
    print(
        f"\nPACER with sampling off: {len(unsampled.races)} races, "
        f"{unsampled.counters.reads_fast_nonsampling + unsampled.counters.writes_fast_nonsampling} "
        "accesses took the inlined fast path (no metadata, no work)"
    )

    # -- 3. a real (simulated) program ----------------------------------------
    #
    # counter_race() is the classic unsynchronized counter, executed by
    # the deterministic scheduler; any detector consumes the trace.
    program_trace = run_program(counter_race(n_threads=3, increments=40), seed=7)
    ft2 = FastTrackDetector()
    ft2.run(program_trace)
    print(
        f"\ncounter_race program: {len(program_trace)} events, "
        f"{len(ft2.races)} race reports, "
        f"{len(ft2.distinct_races)} distinct site pairs"
    )


if __name__ == "__main__":
    main()
