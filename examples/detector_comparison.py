#!/usr/bin/env python
"""Side-by-side comparison of every detector in the suite.

Runs one eclipse-like trial through GENERIC, Djit⁺, FASTTRACK, PACER
(several rates), online LiteRace, and the Eraser lockset baseline, and
prints what the paper's Sections 2 and 6 argue qualitatively:

* the precise detectors agree on which variables race;
* Eraser reports false positives on fork/join and volatile idioms;
* PACER's work and space scale with the sampling rate;
* LiteRace's space does not (it samples code, not data).

Run:  python examples/detector_comparison.py
"""

import random

from repro.analysis import render_table
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import (
    DjitPlusDetector,
    EraserDetector,
    FastTrackDetector,
    GenericDetector,
    GoldilocksDetector,
    LiteRaceDetector,
)
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.workloads import ECLIPSE, build_program, fork_join_tree
from repro.sim.scheduler import run_program

CONFIG = RuntimeConfig(track_memory=False)


def run(detector, rate=None, seed=0):
    controller = None
    if rate is not None:
        controller = BiasCorrectedController(rate, rng=random.Random(seed))
    runtime = Runtime(
        build_program(ECLIPSE.scaled(0.7), seed),
        detector,
        controller=controller,
        config=CONFIG,
        seed=seed,
    )
    runtime.run()
    counters = detector.counters
    slow = (
        counters.reads_slow_sampling
        + counters.reads_slow_nonsampling
        + counters.writes_slow_sampling
        + counters.writes_slow_nonsampling
    )
    return [
        detector.name if rate is None else f"pacer r={rate:.0%}",
        len(detector.races),
        len({r.var for r in detector.races}),
        slow,
        detector.footprint_words(),
    ]


def main() -> None:
    rows = [
        run(GenericDetector()),
        run(DjitPlusDetector()),
        run(FastTrackDetector()),
        run(GoldilocksDetector()),
        run(LiteRaceDetector(burst_length=100, seed=0)),
        run(EraserDetector()),
        run(PacerDetector(), rate=0.01),
        run(PacerDetector(), rate=0.10),
        run(PacerDetector(), rate=1.00),
    ]
    print(
        render_table(
            [
                "detector",
                "race reports",
                "racy variables",
                "slow-path accesses",
                "metadata words",
            ],
            rows,
            title="One eclipse-like trial, identical schedule:",
        )
    )

    print("\nPrecision check (fork/join tree is race-free):")
    tree = run_program(fork_join_tree(depth=3, work=8), seed=1)
    for detector in (FastTrackDetector(), EraserDetector()):
        detector.run(tree)
        verdict = "clean" if not detector.races else f"{len(detector.races)} reports"
        note = "" if not detector.races else "  <-- lockset false positives"
        print(f"  {detector.name:10s}: {verdict}{note}")

    print(
        "\nTakeaways: the happens-before detectors agree on racy variables;"
        "\nPACER's slow-path work and metadata shrink with r; Eraser is fast"
        "\nbut imprecise, which is exactly why the paper insists on precision."
    )


if __name__ == "__main__":
    main()
