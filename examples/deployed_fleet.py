#!/usr/bin/env python
"""Distributed debugging with a fleet of deployed PACER instances.

The paper's deployment story (§1, §3): a single run at r=1-3% rarely sees
any given race, but PACER's *proportionality* guarantee means detection
odds accumulate across deployed instances: after N runs, a race that
occurs with rate o is reported at least once with probability

    1 - (1 - o·r)^N

This example simulates a fleet of production instances running the
pseudojbb workload at a small sampling rate and shows how fleet-wide
coverage of every injected race climbs with fleet size, while each
individual instance pays only the r-proportional overhead.

Run:  python examples/deployed_fleet.py [fleet_size] [rate_percent]
"""

import random
import sys

from repro.analysis import run_trial
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector
from repro.sim.runtime import RuntimeConfig
from repro.sim.workloads import PSEUDOJBB

CONFIG = RuntimeConfig(track_memory=False)


def main() -> None:
    fleet_size = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    rate = (float(sys.argv[2]) if len(sys.argv) > 2 else 3.0) / 100.0
    spec = PSEUDOJBB.scaled(0.6)

    # Ground truth from a few fully-tracked QA runs.
    qa_races = set()
    for seed in range(4):
        qa_races |= run_trial(spec, FastTrackDetector(), seed, config=CONFIG).detected_ids
    print(f"QA (full tracking, 4 runs): {len(qa_races)} distinct races known")

    # The fleet: every deployed instance runs with cheap sampling.
    print(f"\nDeploying {fleet_size} instances at r={rate:.0%} ...")
    found = set()
    milestones = {1, 5, 10, 20, 40, fleet_size}
    effective = []
    for instance in range(fleet_size):
        controller = BiasCorrectedController(rate, rng=random.Random(instance))
        result = run_trial(
            spec, PacerDetector(), 1000 + instance, controller=controller, config=CONFIG
        )
        effective.append(result.effective_rate)
        found |= result.detected_ids & qa_races
        if instance + 1 in milestones:
            coverage = len(found) / max(1, len(qa_races))
            print(
                f"  after {instance + 1:3d} instances: "
                f"{len(found):2d}/{len(qa_races)} races reported "
                f"({coverage:.0%} fleet coverage)"
            )

    mean_eff = sum(effective) / len(effective)
    print(
        f"\nEach instance sampled ~{mean_eff:.1%} of its execution — the"
        " per-instance overhead story — while the fleet as a whole"
        f" surfaced {len(found)}/{len(qa_races)} of the known races."
    )
    print("That is the 'get what you pay for' deployment model: scale the")
    print("fleet, not the per-user overhead.")


if __name__ == "__main__":
    main()
