#!/usr/bin/env python
"""Race detection on *real* Python threads.

CPython's GIL hides most memory-level races, but the logical bugs —
unsynchronized check-then-act, read-modify-write — are just as real, and
happens-before analysis finds them without needing the bug to manifest.
``repro.live`` instruments actual ``threading`` code and feeds any
detector in this package; reports point at real file:line sites.

Run:  python examples/live_threads.py
"""

from repro.live import RaceMonitor


def racy_bank() -> None:
    """The classic lost-update: deposits without a lock."""
    mon = RaceMonitor()
    balance = mon.shared("balance", 0)

    def deposit():
        for _ in range(200):
            balance.set(balance.get() + 1)  # read-modify-write, unguarded

    workers = [mon.thread(deposit) for _ in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()

    print(f"racy bank: final balance {balance.get()} (expected 800)")
    print(f"  detector reports: {len(mon.detector.races)} races, e.g.")
    for line in sorted(set(mon.describe_races().splitlines()))[:3]:
        print(f"    {line}")
    print(
        "  note: the balance may even be correct on this run — the GIL"
        " often hides the bug — but the race is reported regardless,"
        " because happens-before does not depend on unlucky timing."
    )


def fixed_bank() -> None:
    """Same code with a tracked lock: no reports, correct balance."""
    mon = RaceMonitor()
    balance = mon.shared("balance", 0)
    guard = mon.lock("balance_guard")

    def deposit():
        for _ in range(200):
            with guard:
                balance.set(balance.get() + 1)

    workers = [mon.thread(deposit) for _ in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    print(f"\nfixed bank: final balance {balance.get()} (expected 800)")
    print(f"  detector reports: {len(mon.detector.races)} races")


def volatile_handoff() -> None:
    """Publication through a volatile flag plus one deliberate slip."""
    mon = RaceMonitor()
    payload = mon.shared("payload", None)
    ready = mon.volatile("ready", False)
    sloppy = mon.shared("sloppy", 0)

    def producer():
        payload.set({"answer": 42})  # happens-before the volatile write
        ready.set(True)
        sloppy.set(1)  # published with no ordering at all

    def consumer():
        sloppy.set(2)  # concurrent with the producer's slip: races

    producer_thread = mon.thread(producer)
    consumer_thread = mon.thread(consumer)
    producer_thread.start()
    consumer_thread.start()
    producer_thread.join()
    consumer_thread.join()

    print(f"\nvolatile handoff: payload={payload.get()}, ready={ready.get()}")
    print(f"  detector reports: {len(mon.detector.races)} races (the slip only)")


if __name__ == "__main__":
    racy_bank()
    fixed_bank()
    volatile_handoff()
