"""Structured race reports: versioned schema, merging, and rendering.

One report document (``repro/race-report/v1``) describes all races from
one run (or one merged matrix).  Dynamic race reports are grouped into
*distinct races* — the paper's "each pair of program references", keyed
by ``(first_site, second_site)`` — and each group carries occurrence
counts, first/last occurrence in virtual time, the participating
threads and variables, and (when a :class:`~repro.obs.provenance.SyncIndex`
or flight-recorder context is available) a happens-before witness for a
representative occurrence.

Determinism contract: a report is a pure function of the detector's race
list plus the witness inputs.  Group order, list order, and JSON key
order are all fixed, so reports are byte-identical across state
backends, scalar vs batched dispatch, and ``--jobs`` values (the
``backend`` label is the one field that names the backend).  Matrix
shards build per-trial reports from ``CoreStats.race_sigs`` and
:func:`merge_reports` folds them in task order, exactly like the metrics
merge.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .provenance import SyncIndex, extract_witness

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "report_from_sigs",
    "merge_reports",
    "validate_report",
    "render_report_table",
    "render_report_markdown",
    "write_report",
]

#: schema identifier; bump the suffix on any incompatible change
REPORT_SCHEMA = "repro/race-report/v1"

_RACE_KINDS = ("ww", "wr", "rw")

#: cap on per-group enumerations (variables, thread ids) to keep reports
#: bounded on pathological runs; totals are always exact
_GROUP_CAP = 16


def _site_key(site) -> Tuple:
    """Total order over mixed int/str sites (ints first, then strings)."""
    if isinstance(site, int):
        return (0, site, "")
    return (1, 0, str(site))


class _SigRace:
    """Race-shaped view of a ``CoreStats.race_sigs`` tuple."""

    __slots__ = (
        "index", "first_index", "var", "kind",
        "first_tid", "first_site", "second_tid", "second_site",
    )

    def __init__(self, sig: Tuple) -> None:
        (self.index, self.first_index, self.var, self.kind,
         self.first_tid, self.first_site, self.second_tid,
         self.second_site) = sig


def build_report(
    races: Sequence,
    *,
    source: str,
    detector: Optional[str] = None,
    backend: Optional[str] = None,
    rate: Optional[float] = None,
    events: int = 0,
    contexts: Optional[Sequence[Dict]] = None,
    sync: Optional[SyncIndex] = None,
    site_name: Optional[Callable[[object], str]] = None,
    discarded: Optional[List[Dict]] = None,
) -> Dict:
    """Build one report document from a detector's race list.

    ``contexts`` is the observer's ``race_contexts`` list (parallel to
    ``races``); ``sync`` enables witness extraction; ``site_name`` maps
    raw site ids to human-readable names.  All are optional — a report
    without them still groups, counts, and timestamps the races.
    """
    groups: Dict[Tuple, Dict] = {}
    representatives: Dict[Tuple, Tuple[Tuple, int]] = {}
    for pos, race in enumerate(races):
        key = (race.first_site, race.second_site)
        g = groups.get(key)
        if g is None:
            g = groups[key] = {
                "kinds": set(),
                "count": 0,
                "vars": set(),
                "first_vt": race.index,
                "last_vt": race.index,
                "first_tids": set(),
                "second_tids": set(),
            }
        g["kinds"].add(race.kind)
        g["count"] += 1
        g["vars"].add(race.var)
        g["first_tids"].add(race.first_tid)
        g["second_tids"].add(race.second_tid)
        if race.index < g["first_vt"]:
            g["first_vt"] = race.index
        if race.index > g["last_vt"]:
            g["last_vt"] = race.index
        # representative occurrence: the earliest report (ties: earliest
        # first access, then list order) carries the witness and context
        rank = (race.index, race.first_index, pos)
        if key not in representatives or rank < representatives[key][0]:
            representatives[key] = (rank, pos)

    race_docs: List[Dict] = []
    for key in sorted(groups, key=lambda k: (_site_key(k[0]), _site_key(k[1]))):
        g = groups[key]
        rep_pos = representatives[key][1]
        rep = races[rep_pos]
        witness = extract_witness(rep, sync) if sync is not None else None
        context = None
        if contexts is not None and rep_pos < len(contexts):
            context = contexts[rep_pos] or None
        first_site, second_site = key
        doc: Dict = {
            "first_site": first_site,
            "second_site": second_site,
            "first_site_name": site_name(first_site) if site_name else None,
            "second_site_name": site_name(second_site) if site_name else None,
            "kinds": sorted(g["kinds"]),
            "count": g["count"],
            "vars": sorted(g["vars"])[:_GROUP_CAP],
            "n_vars": len(g["vars"]),
            "first_vt": g["first_vt"],
            "last_vt": g["last_vt"],
            "first_tids": sorted(g["first_tids"])[:_GROUP_CAP],
            "second_tids": sorted(g["second_tids"])[:_GROUP_CAP],
            "witness": witness,
            "context": context,
        }
        race_docs.append(doc)

    report: Dict = {
        "schema": REPORT_SCHEMA,
        "source": source,
        "detector": detector,
        "backend": backend,
        "rate": rate,
        "events": events,
        "dynamic_races": len(races),
        "distinct_races": len(race_docs),
        "races": race_docs,
    }
    if discarded is not None:
        report["discarded"] = discarded
    return report


def report_from_sigs(
    sigs: Iterable[Tuple],
    *,
    source: str,
    detector: Optional[str] = None,
    backend: Optional[str] = None,
    rate: Optional[float] = None,
    events: int = 0,
) -> Dict:
    """A report from ``CoreStats.race_sigs`` (matrix workers ship no
    recorder, so these reports carry counts and sites but no witness)."""
    return build_report(
        [_SigRace(sig) for sig in sigs],
        source=source,
        detector=detector,
        backend=backend,
        rate=rate,
        events=events,
    )


def _merge_label(values: List) -> Optional[str]:
    distinct = sorted({v for v in values if v is not None}, key=str)
    if not distinct:
        return None
    if len(distinct) == 1:
        return distinct[0]
    return "*"


def merge_reports(reports: Sequence[Dict], source: Optional[str] = None) -> Dict:
    """Fold per-trial reports into one document, deterministically.

    Counts sum, virtual-time bounds take min/max, enumerations union
    (re-capped), and each group's witness/context come from the report
    whose group occurred earliest (ties: input order) — so the result
    depends only on the input sequence, never on sharding.
    """
    if not reports:
        return build_report([], source=source or "merged")
    groups: Dict[Tuple, Dict] = {}
    for report in reports:
        for race in report["races"]:
            key = (race["first_site"], race["second_site"])
            g = groups.get(key)
            if g is None:
                g = groups[key] = {
                    "kinds": set(),
                    "count": 0,
                    "vars": set(),
                    "n_vars": 0,
                    "first_vt": race["first_vt"],
                    "last_vt": race["last_vt"],
                    "first_tids": set(),
                    "second_tids": set(),
                    "best": race,
                }
            g["kinds"].update(race["kinds"])
            g["count"] += race["count"]
            g["vars"].update(race["vars"])
            g["n_vars"] = max(g["n_vars"], race["n_vars"], len(g["vars"]))
            g["first_tids"].update(race["first_tids"])
            g["second_tids"].update(race["second_tids"])
            if race["first_vt"] < g["first_vt"]:
                g["first_vt"] = race["first_vt"]
                g["best"] = race
            if race["last_vt"] > g["last_vt"]:
                g["last_vt"] = race["last_vt"]

    race_docs: List[Dict] = []
    for key in sorted(groups, key=lambda k: (_site_key(k[0]), _site_key(k[1]))):
        g = groups[key]
        best = g["best"]
        race_docs.append(
            {
                "first_site": key[0],
                "second_site": key[1],
                "first_site_name": best.get("first_site_name"),
                "second_site_name": best.get("second_site_name"),
                "kinds": sorted(g["kinds"]),
                "count": g["count"],
                "vars": sorted(g["vars"])[:_GROUP_CAP],
                "n_vars": g["n_vars"],
                "first_vt": g["first_vt"],
                "last_vt": g["last_vt"],
                "first_tids": sorted(g["first_tids"])[:_GROUP_CAP],
                "second_tids": sorted(g["second_tids"])[:_GROUP_CAP],
                "witness": best.get("witness"),
                "context": best.get("context"),
            }
        )
    return {
        "schema": REPORT_SCHEMA,
        "source": source or _merge_label([r.get("source") for r in reports]) or "merged",
        "detector": _merge_label([r.get("detector") for r in reports]),
        "backend": _merge_label([r.get("backend") for r in reports]),
        "rate": _merge_label([r.get("rate") for r in reports]),
        "events": sum(r.get("events", 0) for r in reports),
        "dynamic_races": sum(r.get("dynamic_races", 0) for r in reports),
        "distinct_races": len(race_docs),
        "races": race_docs,
    }


# -- validation ---------------------------------------------------------------

_DOC_KEYS = (
    "schema", "source", "detector", "backend", "rate",
    "events", "dynamic_races", "distinct_races", "races",
)

_GROUP_KEYS = (
    "first_site", "second_site", "kinds", "count", "vars", "n_vars",
    "first_vt", "last_vt", "first_tids", "second_tids",
)

_WITNESS_VERDICTS = ("no-release", "sync-gap", "ordering-edge")


def validate_report(doc) -> List[str]:
    """Structural validation of one report document.

    Returns human-readable problems (empty list = valid).  The test
    suite and the CI ``repro explain`` smoke step run every emitted
    report through this.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != REPORT_SCHEMA:
        problems.append(f"schema must be {REPORT_SCHEMA!r}, got {doc.get('schema')!r}")
    for key in _DOC_KEYS:
        if key not in doc:
            problems.append(f"missing document key {key!r}")
    races = doc.get("races")
    if not isinstance(races, list):
        return problems + ["'races' must be a list"]
    for name in ("events", "dynamic_races", "distinct_races"):
        value = doc.get(name)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{name}={value!r} must be an int >= 0")
    if isinstance(doc.get("distinct_races"), int) and doc["distinct_races"] != len(races):
        problems.append(
            f"distinct_races={doc['distinct_races']} != {len(races)} race groups"
        )
    total = 0
    for i, race in enumerate(races):
        where = f"races[{i}]"
        if not isinstance(race, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in _GROUP_KEYS:
            if key not in race:
                problems.append(f"{where}: missing {key!r}")
        for key in ("first_site", "second_site"):
            if key in race and not isinstance(race[key], (int, str)):
                problems.append(f"{where}: {key} must be an int or string")
        count = race.get("count")
        if not isinstance(count, int) or count <= 0:
            problems.append(f"{where}: count={count!r} must be an int > 0")
        else:
            total += count
        kinds = race.get("kinds")
        if not isinstance(kinds, list) or not kinds or any(
            k not in _RACE_KINDS for k in kinds
        ):
            problems.append(f"{where}: kinds={kinds!r} must be a non-empty "
                            f"subset of {_RACE_KINDS}")
        for key in ("first_vt", "last_vt"):
            if key in race and not isinstance(race[key], int):
                problems.append(f"{where}: {key} must be an int")
        witness = race.get("witness")
        if witness is not None:
            if not isinstance(witness, dict):
                problems.append(f"{where}: witness must be an object or null")
            elif witness.get("verdict") not in _WITNESS_VERDICTS:
                problems.append(
                    f"{where}: witness verdict {witness.get('verdict')!r} "
                    f"not in {_WITNESS_VERDICTS}"
                )
            elif not isinstance(witness.get("summary"), str):
                problems.append(f"{where}: witness summary must be a string")
    if isinstance(doc.get("dynamic_races"), int) and total != doc["dynamic_races"]:
        problems.append(
            f"group counts sum to {total}, dynamic_races={doc['dynamic_races']}"
        )
    return problems


# -- rendering ----------------------------------------------------------------


def _site_display(race: Dict, which: str) -> str:
    name = race.get(f"{which}_site_name")
    return name if name else str(race[f"{which}_site"])


def render_report_table(doc: Dict, limit: int = 20) -> str:
    """The report as the CLI's ASCII table (one row per distinct race)."""
    # imported here: repro.analysis pulls in the detectors/sim stack, and
    # repro.analysis.parallel imports this module for matrix reports
    from ..analysis.tables import render_table

    header = (
        f"{doc.get('detector') or 'detector'}: {doc['dynamic_races']} dynamic "
        f"race reports, {doc['distinct_races']} distinct site pairs"
    )
    races = doc["races"]
    if not races:
        return header + "\n(no races reported)"
    rows = []
    for race in races[:limit]:
        witness = race.get("witness")
        rows.append(
            [
                _site_display(race, "first"),
                _site_display(race, "second"),
                "+".join(race["kinds"]),
                race["count"],
                race["first_vt"],
                race["last_vt"],
                witness["verdict"] if witness else "-",
            ]
        )
    text = header + "\n" + render_table(
        ["first site", "second site", "kinds", "count", "first vt",
         "last vt", "witness"],
        rows,
    )
    if len(races) > limit:
        text += f"\n... and {len(races) - limit} more distinct races"
    return text


def _context_lines(side: Optional[Dict], label: str) -> List[str]:
    if not side:
        return []
    mark = "" if side.get("complete") else " (window truncated)"
    lines = [f"  {label} context — t{side['tid']}{mark}:"]
    for ev in side.get("events", []):
        lines.append(
            f"    vt {ev['vt']:>6}  {ev['kind']:<7} target={ev['target']} "
            f"site={ev['site']}"
        )
    return lines


def render_report_markdown(doc: Dict, limit: int = 20) -> str:
    """The report as a Markdown document (for PRs and issue trackers)."""
    lines = [
        f"# Race report — {doc.get('detector') or 'detector'} "
        f"({doc.get('source')})",
        "",
        f"- schema: `{doc['schema']}`",
        f"- backend: {doc.get('backend') or '-'}; "
        f"rate: {doc.get('rate') if doc.get('rate') is not None else '-'}",
        f"- events analyzed: {doc['events']}",
        f"- dynamic race reports: {doc['dynamic_races']}; "
        f"distinct site pairs: {doc['distinct_races']}",
        "",
    ]
    for n, race in enumerate(doc["races"][:limit], start=1):
        first = _site_display(race, "first")
        second = _site_display(race, "second")
        lines.append(f"## Race {n}: `{first}` × `{second}`")
        lines.append("")
        lines.append(
            f"- kinds {'+'.join(race['kinds'])}; {race['count']} occurrence(s) "
            f"over vt [{race['first_vt']}, {race['last_vt']}]"
        )
        lines.append(
            f"- threads: first {race['first_tids']}, second {race['second_tids']}; "
            f"{race['n_vars']} variable(s): {race['vars']}"
        )
        witness = race.get("witness")
        if witness:
            lines.append(f"- witness ({witness['source']}): **{witness['verdict']}** "
                         f"— {witness['summary']}")
            sampling = witness.get("sampling")
            if sampling:
                lines.append(
                    f"- sampling: first access in period "
                    f"{sampling['first_period']}, second in "
                    f"{sampling['second_period']} of {sampling['n_periods']}"
                )
        context = race.get("context")
        if context:
            lines.append("")
            lines.append("```")
            lines.extend(_context_lines(context.get("first"), "first"))
            lines.extend(_context_lines(context.get("second"), "second"))
            lines.append("```")
        lines.append("")
    discarded = doc.get("discarded")
    if discarded:
        lines.append("## Discarded shortest races (sampling attribution)")
        lines.append("")
        for entry in discarded:
            lines.append(
                f"- [{entry['kind']}] var {entry['var']} "
                f"vt {entry['first_vt']} vs {entry['second_vt']}: "
                f"{entry['reason']}"
            )
        lines.append("")
    return "\n".join(lines)


def write_report(path, doc: Dict) -> None:
    """Write one report as deterministic JSON (sorted keys, newline-terminated)."""
    problems = validate_report(doc)
    if problems:  # pragma: no cover - defensive; tests pin validity
        raise ValueError(f"invalid race report: {problems[:3]}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
