"""Detection-quality accounting: proportionality audits and coverage.

PACER's headline guarantee is statistical — every dynamic race is
detected with probability equal to the sampling rate — but a guarantee
you cannot *observe* is a guarantee you cannot operate on.  This module
turns the proportionality claim into a continuously observable,
versioned artifact, the ``repro/coverage-report/v1`` document:

* the sync-op-weighted **effective sampling rate** — the same work
  measure :class:`~repro.core.sampling.BiasCorrectedController`
  corrects for — computed from the detector's Table 3
  :class:`~repro.core.stats.OpCounters` period splits (an O(n) join or
  a clock copy is the unit of detection work, not a wall second);
* a Wilson 95% interval on that rate, reused verbatim from
  :mod:`repro.analysis.statistics` so offline experiments and live
  telemetry agree on what "consistent with proportional" means;
* **sampling-period attribution** of every reported race's first
  access (the paper's §3.3 rule: a race is reportable iff its first
  access was sampled), from the same ``sbegin``/``send`` marks the
  provenance layer records;
* an **extrapolated true-race estimate** — ``observed / r`` with an
  interval from the rate CI — quantifying what the configured rate is
  expected to miss, and the **coverage deficit** between the nominal
  and delivered rates.

Determinism contract: a coverage document is a pure function of the
detector's counters, sampling marks, and race list.  Unlike
``repro/race-report/v1`` it carries **no backend label at all**, so
documents are byte-identical across the object/packed/packed-np state
backends, scalar vs batched dispatch, ``--jobs`` values, and
streamed-vs-offline runs (pinned by ``tests/test_quality.py``).

The matrix variant (:func:`repro.analysis.parallel.matrix_coverage`)
additionally folds per-trial documents into rate-vs-detection *curve*
rows and — when the matrix carries an always-on baseline detector —
*audit* rows that check each PACER configuration's dynamic detection
ratio (dynamic races observed over the baseline's ``k * trials``
detection opportunities) against its effective rate with a Wilson
interval: the paper's Figure 3 proportionality experiment, recomputed
live from any campaign.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .provenance import SyncIndex

__all__ = [
    "COVERAGE_SCHEMA",
    "ProportionalityAuditor",
    "sync_op_split",
    "effective_rate_ci",
    "build_coverage",
    "coverage_from_sigs",
    "merge_coverage",
    "validate_coverage",
    "render_coverage",
    "write_coverage",
]

#: schema identifier; bump the suffix on any incompatible change
COVERAGE_SCHEMA = "repro/coverage-report/v1"

#: the sync-operation classes whose ``*_sampling``/``*_nonsampling``
#: counter splits define the effective rate (the Table 1 work measure:
#: how much of the synchronization-driven analysis ran at full power)
_SYNC_OP_CLASSES = (
    "joins_slow",
    "joins_fast",
    "copies_deep",
    "copies_shallow",
)

#: float fields are rounded to this many digits before they enter the
#: document: full-precision IEEE quotients are deterministic, but short
#: decimals keep the JSON readable and diff-friendly
_FLOAT_DIGITS = 9


def _rounded(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    return round(value, _FLOAT_DIGITS)


def sync_op_split(counters: Dict[str, int]) -> Tuple[int, int]:
    """``(sampled, total)`` sync operations from an OpCounters snapshot.

    Accepts the plain dict form (:meth:`OpCounters.snapshot`, or the
    summed ``CoreStats.counters``).  Always-on detectors count all
    their work into the ``*_sampling`` splits, so they report an
    effective rate of 1.0 — which is exactly right.
    """
    sampled = sum(counters.get(f"{op}_sampling", 0) for op in _SYNC_OP_CLASSES)
    total = sampled + sum(
        counters.get(f"{op}_nonsampling", 0) for op in _SYNC_OP_CLASSES
    )
    return sampled, total


def effective_rate_ci(
    sampled: int, total: int
) -> Tuple[float, Optional[List[float]]]:
    """Effective rate plus its Wilson 95% interval (None when no work)."""
    # imported here: repro.analysis pulls in the detectors/sim stack,
    # and repro.analysis.parallel imports this module for matrix coverage
    from ..analysis.statistics import wilson_interval

    if total <= 0:
        return 0.0, None
    lo, hi = wilson_interval(sampled, total)
    return sampled / total, [_rounded(lo), _rounded(hi)]


def _period_stats(marks: Sequence[Tuple[int, bool]]) -> Dict:
    """Sampling-period counts from deduplicated (vt, entering) marks."""
    index = SyncIndex({}, list(marks), source="quality", complete=True)
    periods = index.periods()
    open_periods = sum(1 for _, end in periods if end is None)
    return {
        "count": len(periods),
        "closed": len(periods) - open_periods,
        "open": open_periods,
    }


def _attribute_races(
    races: Sequence, marks: Sequence[Tuple[int, bool]]
) -> Tuple[Optional[int], Optional[int]]:
    """(first accesses inside a sampling period, outside) — or (None,
    None) when no marks exist to attribute against."""
    if not marks:
        return None, None
    index = SyncIndex({}, list(marks), source="quality", complete=True)
    inside = 0
    for race in races:
        if index.period_of(race.first_index) is not None:
            inside += 1
    return inside, len(races) - inside


def _estimate(
    dynamic: int,
    effective_rate: float,
    rate_ci: Optional[List[float]],
    nominal_rate: Optional[float],
) -> Dict:
    """The extrapolation block: expected detection, true-race estimate,
    and the nominal-vs-delivered coverage deficit."""
    true_dynamic: Optional[float] = None
    true_ci: Optional[List[Optional[float]]] = None
    if effective_rate > 0:
        true_dynamic = _rounded(dynamic / effective_rate)
        if rate_ci is not None:
            lo, hi = rate_ci
            true_ci = [
                _rounded(dynamic / hi) if hi else None,
                _rounded(dynamic / lo) if lo else None,
            ]
    deficit = 0.0
    if nominal_rate is not None:
        deficit = max(0.0, nominal_rate - effective_rate)
    return {
        "expected_detection": _rounded(effective_rate),
        "true_dynamic": true_dynamic,
        "true_dynamic_ci95": true_ci,
        "coverage_deficit": _rounded(deficit),
    }


def build_coverage(
    *,
    source: str,
    detector: Optional[str] = None,
    workload: Optional[str] = None,
    nominal_rate: Optional[float] = None,
    counters: Optional[Dict[str, int]] = None,
    marks: Sequence[Tuple[int, bool]] = (),
    races: Sequence = (),
    events: int = 0,
    trials: int = 1,
) -> Dict:
    """Build one coverage document from a single run's evidence.

    ``counters`` is an :meth:`OpCounters.snapshot` dict (the period
    splits drive the effective rate); ``marks`` the deduplicated
    ``(vt, entering)`` sampling transitions (observer, flight recorder,
    or streaming sync-index builder — all three record the same list);
    ``races`` the detector's race list (only ``first_index`` is read).
    ``nominal_rate`` is the *configured* sampling rate as a fraction in
    [0, 1], or None when the run has no dial (always-on detectors,
    trace replay with baked-in marks).
    """
    sampled, total = sync_op_split(counters or {})
    rate, rate_ci = effective_rate_ci(sampled, total)
    inside, outside = _attribute_races(races, marks)
    return {
        "schema": COVERAGE_SCHEMA,
        "source": source,
        "detector": detector,
        "workload": workload,
        "nominal_rate": _rounded(nominal_rate),
        "trials": trials,
        "events": events,
        "sync": {
            "sampled": sampled,
            "total": total,
            "effective_rate": _rounded(rate),
            "ci95": rate_ci,
        },
        "periods": _period_stats(marks),
        "races": {
            "dynamic": len(races),
            "first_in_period": inside,
            "unattributed": outside,
        },
        "estimate": _estimate(len(races), rate, rate_ci, nominal_rate),
    }


class _SigFirst:
    """First-access view of a ``CoreStats.race_sigs`` tuple."""

    __slots__ = ("first_index",)

    def __init__(self, sig: Tuple) -> None:
        self.first_index = sig[1]


def coverage_from_sigs(
    sigs: Iterable[Tuple],
    *,
    source: str,
    detector: Optional[str] = None,
    workload: Optional[str] = None,
    nominal_rate: Optional[float] = None,
    counters: Optional[Dict[str, int]] = None,
    marks: Sequence[Tuple[int, bool]] = (),
    events: int = 0,
) -> Dict:
    """A coverage document from ``CoreStats.race_sigs`` (matrix workers
    ship no sampling marks, so attribution is null unless provided)."""
    return build_coverage(
        source=source,
        detector=detector,
        workload=workload,
        nominal_rate=nominal_rate,
        counters=counters,
        marks=marks,
        races=[_SigFirst(sig) for sig in sigs],
        events=events,
    )


class ProportionalityAuditor:
    """Accumulate one run's detection-quality evidence, then account.

    The auditor is the single-run builder behind every tier: offline
    ``analyze``/``detect``, the live :class:`~repro.live.RaceMonitor`,
    and the telemetry shard workers all feed the same three streams —
    counter snapshots, sampling marks, and the race list — and call
    :meth:`coverage` for the document.  Each ``observe_*`` call
    *replaces* its stream (counters and race lists are cumulative at
    the source), so the auditor is naturally re-entrant: finalize,
    stream more events, finalize again, and the totals refresh instead
    of double-counting — the same contract as ``RunObserver.finalize``.
    """

    __slots__ = (
        "source", "detector", "workload", "nominal_rate",
        "_counters", "_marks", "_races", "_events",
    )

    def __init__(
        self,
        *,
        source: str = "audit",
        detector: Optional[str] = None,
        workload: Optional[str] = None,
        nominal_rate: Optional[float] = None,
    ) -> None:
        self.source = source
        self.detector = detector
        self.workload = workload
        self.nominal_rate = nominal_rate
        self._counters: Dict[str, int] = {}
        self._marks: List[Tuple[int, bool]] = []
        self._races: List = []
        self._events = 0

    def observe_counters(self, counters) -> None:
        """Latest cumulative operation counters (OpCounters or snapshot)."""
        snap = counters.snapshot() if hasattr(counters, "snapshot") else counters
        self._counters = dict(snap)

    def observe_marks(self, marks: Sequence[Tuple[int, bool]]) -> None:
        """Latest full list of (vt, entering) sampling transitions."""
        self._marks = list(marks)

    def observe_races(self, races: Sequence) -> None:
        """Latest full race list (objects exposing ``first_index``)."""
        self._races = list(races)

    def observe_events(self, events: int) -> None:
        """Total events analyzed so far."""
        self._events = events

    def observe_detector(self, detector, events: Optional[int] = None) -> None:
        """Convenience: pull counters + races straight off a detector."""
        self.observe_counters(detector.counters)
        self.observe_races(detector.races)
        if events is not None:
            self.observe_events(events)

    def effective_rate(self) -> float:
        sampled, total = sync_op_split(self._counters)
        return sampled / total if total else 0.0

    def coverage(self) -> Dict:
        """The accumulated evidence as one coverage document."""
        return build_coverage(
            source=self.source,
            detector=self.detector,
            workload=self.workload,
            nominal_rate=self.nominal_rate,
            counters=self._counters,
            marks=self._marks,
            races=self._races,
            events=self._events,
        )


# -- merging ------------------------------------------------------------------


def _merge_label(values: List) -> Optional[str]:
    distinct = sorted({v for v in values if v is not None}, key=str)
    if not distinct:
        return None
    if len(distinct) == 1:
        return distinct[0]
    return "*"


def _merge_number(values: List) -> Optional[float]:
    distinct = {v for v in values if v is not None}
    if len(distinct) == 1:
        return distinct.pop()
    return None


def _sum_or_none(values: List) -> Optional[int]:
    total = 0
    for v in values:
        if v is None:
            return None
        total += v
    return total


def merge_coverage(
    docs: Sequence[Dict],
    source: Optional[str] = None,
) -> Dict:
    """Fold per-run coverage documents into one, deterministically.

    Work counts sum and the rate, interval, and estimate are recomputed
    from the sums (a sync-op-weighted pool, not an average of averages),
    so the merge is associative and independent of sharding — the same
    contract as the metrics registry.  Labels collapse to the common
    value or ``"*"``; a mixed nominal rate collapses to null.
    Attribution counts sum when every input carries them, else null.
    """
    if not docs:
        return build_coverage(source=source or "merged", trials=0)
    sampled = sum(d["sync"]["sampled"] for d in docs)
    total = sum(d["sync"]["total"] for d in docs)
    rate, rate_ci = effective_rate_ci(sampled, total)
    dynamic = sum(d["races"]["dynamic"] for d in docs)
    nominal = _merge_number([d.get("nominal_rate") for d in docs])
    merged: Dict = {
        "schema": COVERAGE_SCHEMA,
        "source": source or _merge_label([d.get("source") for d in docs])
        or "merged",
        "detector": _merge_label([d.get("detector") for d in docs]),
        "workload": _merge_label([d.get("workload") for d in docs]),
        "nominal_rate": _rounded(nominal),
        "trials": sum(d.get("trials", 1) for d in docs),
        "events": sum(d.get("events", 0) for d in docs),
        "sync": {
            "sampled": sampled,
            "total": total,
            "effective_rate": _rounded(rate),
            "ci95": rate_ci,
        },
        "periods": {
            key: sum(d["periods"][key] for d in docs)
            for key in ("count", "closed", "open")
        },
        "races": {
            "dynamic": dynamic,
            "first_in_period": _sum_or_none(
                [d["races"]["first_in_period"] for d in docs]
            ),
            "unattributed": _sum_or_none(
                [d["races"]["unattributed"] for d in docs]
            ),
        },
        "estimate": _estimate(dynamic, rate, rate_ci, nominal),
    }
    return merged


# -- validation ---------------------------------------------------------------

_DOC_KEYS = (
    "schema", "source", "detector", "workload", "nominal_rate",
    "trials", "events", "sync", "periods", "races", "estimate",
)

_SYNC_KEYS = ("sampled", "total", "effective_rate", "ci95")
_PERIOD_KEYS = ("count", "closed", "open")
_RACE_KEYS = ("dynamic", "first_in_period", "unattributed")
_ESTIMATE_KEYS = (
    "expected_detection", "true_dynamic", "true_dynamic_ci95",
    "coverage_deficit",
)

_CURVE_KEYS = (
    "workload", "detector", "rate", "trials", "events",
    "dynamic_races", "sync_sampled", "sync_total", "effective_rate",
)

_AUDIT_KEYS = (
    "workload", "detector", "rate", "baseline", "detected", "trials",
    "baseline_races", "occurrences_per_trial", "expected_occurrences",
    "observed_fraction", "effective_rate", "ci95", "consistent",
)


def validate_coverage(doc) -> List[str]:
    """Structural validation of one coverage document.

    Returns human-readable problems (empty list = valid); every write
    path and the CI coverage smoke step run emitted documents through
    this.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"coverage must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != COVERAGE_SCHEMA:
        problems.append(
            f"schema must be {COVERAGE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for key in _DOC_KEYS:
        if key not in doc:
            problems.append(f"missing document key {key!r}")
    for name in ("trials", "events"):
        value = doc.get(name)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{name}={value!r} must be an int >= 0")
    sync = doc.get("sync")
    if not isinstance(sync, dict):
        problems.append("'sync' must be an object")
    else:
        for key in _SYNC_KEYS:
            if key not in sync:
                problems.append(f"sync: missing {key!r}")
        sampled, total = sync.get("sampled"), sync.get("total")
        if isinstance(sampled, int) and isinstance(total, int):
            if sampled < 0 or total < 0 or sampled > total:
                problems.append(
                    f"sync: need 0 <= sampled <= total, got {sampled}/{total}"
                )
        rate = sync.get("effective_rate")
        if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
            problems.append(f"sync: effective_rate={rate!r} not in [0, 1]")
        ci = sync.get("ci95")
        if ci is not None and (
            not isinstance(ci, list) or len(ci) != 2
            or any(not isinstance(v, (int, float)) for v in ci)
            or ci[0] > ci[1]
        ):
            problems.append(f"sync: ci95={ci!r} must be null or [lo, hi]")
    periods = doc.get("periods")
    if not isinstance(periods, dict):
        problems.append("'periods' must be an object")
    else:
        for key in _PERIOD_KEYS:
            value = periods.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"periods: {key}={value!r} must be an int >= 0")
    races = doc.get("races")
    if not isinstance(races, dict):
        problems.append("'races' must be an object")
    else:
        for key in _RACE_KEYS:
            if key not in races:
                problems.append(f"races: missing {key!r}")
        dynamic = races.get("dynamic")
        if not isinstance(dynamic, int) or dynamic < 0:
            problems.append(f"races: dynamic={dynamic!r} must be an int >= 0")
        inside, outside = races.get("first_in_period"), races.get("unattributed")
        if (inside is None) != (outside is None):
            problems.append("races: attribution fields must be both null "
                            "or both counts")
        elif inside is not None and isinstance(dynamic, int):
            if inside + outside != dynamic:
                problems.append(
                    f"races: {inside} in-period + {outside} unattributed "
                    f"!= {dynamic} dynamic"
                )
    estimate = doc.get("estimate")
    if not isinstance(estimate, dict):
        problems.append("'estimate' must be an object")
    else:
        for key in _ESTIMATE_KEYS:
            if key not in estimate:
                problems.append(f"estimate: missing {key!r}")
        deficit = estimate.get("coverage_deficit")
        if not isinstance(deficit, (int, float)) or deficit < 0:
            problems.append(
                f"estimate: coverage_deficit={deficit!r} must be >= 0"
            )
    for section, keys in (("curve", _CURVE_KEYS), ("audit", _AUDIT_KEYS)):
        rows = doc.get(section)
        if rows is None:
            continue
        if not isinstance(rows, list):
            problems.append(f"'{section}' must be a list when present")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"{section}[{i}]: not an object")
                continue
            for key in keys:
                if key not in row:
                    problems.append(f"{section}[{i}]: missing {key!r}")
    return problems


# -- rendering ----------------------------------------------------------------


def _fmt_rate(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value * 100:.3f}%"


def render_coverage(doc: Dict) -> str:
    """The coverage document as the CLI's human-readable summary."""
    # imported here: repro.analysis pulls in the detectors/sim stack
    from ..analysis.tables import render_table

    sync = doc["sync"]
    races = doc["races"]
    est = doc["estimate"]
    lines = [
        f"{doc.get('detector') or 'detector'} detection quality "
        f"({doc.get('source')}, {doc['trials']} trial(s))"
    ]
    ci = sync.get("ci95")
    ci_text = (
        f" (95% CI {_fmt_rate(ci[0])}..{_fmt_rate(ci[1])})" if ci else ""
    )
    lines.append(
        f"  effective sampling rate: {_fmt_rate(sync['effective_rate'])}"
        f"{ci_text} — {sync['sampled']:,}/{sync['total']:,} sync ops, "
        f"{doc['periods']['count']} sampling period(s)"
    )
    if doc.get("nominal_rate") is not None:
        lines.append(
            f"  nominal rate: {_fmt_rate(doc['nominal_rate'])}; coverage "
            f"deficit: {_fmt_rate(est['coverage_deficit'])}"
        )
    attribution = ""
    if races["first_in_period"] is not None:
        attribution = (
            f" ({races['first_in_period']} first-access-in-period, "
            f"{races['unattributed']} unattributed)"
        )
    lines.append(
        f"  races observed: {races['dynamic']} dynamic over "
        f"{doc['events']:,} events{attribution}"
    )
    if est["true_dynamic"] is not None:
        ci95 = est["true_dynamic_ci95"]
        span = ""
        if ci95 and ci95[0] is not None and ci95[1] is not None:
            span = f" (95% CI {ci95[0]:.1f}..{ci95[1]:.1f})"
        lines.append(
            f"  estimated true dynamic races: {est['true_dynamic']:.1f}"
            f"{span} at expected detection "
            f"{_fmt_rate(est['expected_detection'])}"
        )
    curve = doc.get("curve")
    if curve:
        lines.append("")
        lines.append("rate-vs-detection curve:")
        lines.append(
            render_table(
                ["workload", "detector", "rate", "trials", "races",
                 "effective rate"],
                [
                    [row["workload"], row["detector"],
                     "-" if row["rate"] is None else row["rate"],
                     row["trials"], row["dynamic_races"],
                     _fmt_rate(row["effective_rate"])]
                    for row in curve
                ],
            )
        )
    audit = doc.get("audit")
    if audit:
        lines.append("")
        lines.append("proportionality audit (vs always-on baseline):")
        rows = []
        for row in audit:
            verdict = "?" if row["consistent"] is None else (
                "OK" if row["consistent"] else "FAIL"
            )
            ci95 = row["ci95"]
            rows.append(
                [row["workload"], row["detector"],
                 "-" if row["rate"] is None else row["rate"],
                 f"{row['detected']}/{row['expected_occurrences']}",
                 _fmt_rate(row["observed_fraction"]),
                 _fmt_rate(row["effective_rate"]),
                 "-" if ci95 is None
                 else f"{_fmt_rate(ci95[0])}..{_fmt_rate(ci95[1])}",
                 verdict]
            )
        lines.append(
            render_table(
                ["workload", "detector", "rate", "detected", "observed",
                 "effective", "95% CI", "verdict"],
                rows,
            )
        )
    return "\n".join(lines)


def write_coverage(path, doc: Dict) -> None:
    """Write one coverage document as deterministic JSON."""
    problems = validate_coverage(doc)
    if problems:  # pragma: no cover - defensive; tests pin validity
        raise ValueError(f"invalid coverage report: {problems[:3]}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
