"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The registry is the always-available accounting substrate of the
observability layer (``repro.obs``).  Design constraints, in order:

* **Determinism.**  Every metric the registry holds is a function of the
  analyzed trace, never of wall-clock time — so a snapshot serialized
  with :meth:`MetricsRegistry.to_json` is *byte-identical* across runs,
  process counts, and shard schedules.  Wall-clock performance lives in
  :class:`~repro.core.stats.PerfCounters` and in Perfetto span ``args``,
  deliberately outside the registry.
* **Mergeability.**  Shards ship snapshots between processes; counters
  and histogram buckets sum, gauges keep the maximum (they sample
  high-water state).  ``merge`` is associative and commutative, so the
  result is independent of shard scheduling.
* **Near-zero cost when unused.**  Instruments are plain attribute
  updates; the hot detector loops never touch the registry directly —
  they check one ``observer is None`` branch (see ``repro.obs.observer``).

Series are identified by a metric name plus a sorted label set, rendered
``name{k=v,k2=v2}`` — the Prometheus exposition convention, chosen so
snapshots diff cleanly in CI artifacts.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_metric_dicts",
    "series_key",
]


def series_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical series id: ``name`` or ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level; ``set`` overwrites, ``high`` is the peak."""

    __slots__ = ("value", "high")

    def __init__(self, value: int = 0) -> None:
        self.value = value
        self.high = value

    def set(self, value: int) -> None:
        self.value = value
        if value > self.high:
            self.high = value

    def set_max(self, value: int) -> bool:
        """High-watermark update: only ever raises, returns True on raise.

        For hot paths that track a peak (receive-buffer depth, queue
        length): callers can branch on the result instead of writing the
        gauge on every sample.
        """
        if value > self.value:
            self.value = value
            if value > self.high:
                self.high = value
            return True
        return False


class Histogram:
    """Fixed-bucket histogram: ``buckets`` are inclusive upper bounds.

    An implicit overflow bucket catches observations above the last
    bound.  Bounds are fixed at construction so shard merges are plain
    element-wise sums.
    """

    __slots__ = ("buckets", "counts", "count", "total")

    #: default bounds: powers of two, suited to batch/event-size shapes
    DEFAULT_BUCKETS: Tuple[int, ...] = tuple(2 ** i for i in range(17))

    def __init__(self, buckets: Optional[Sequence[int]] = None) -> None:
        bounds = tuple(buckets) if buckets else self.DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of metric series with deterministic snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = series_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = series_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(
        self, name: str, buckets: Optional[Sequence[int]] = None, **labels: object
    ) -> Histogram:
        key = series_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(buckets)
        return inst

    # -- bulk helpers -------------------------------------------------------

    def count_many(self, name: str, values: Mapping[str, int], label: str) -> None:
        """Set one labeled counter per entry of ``values`` (absolute)."""
        for key, value in values.items():
            self.counter(name, **{label: key}).value = value

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """A plain, JSON-ready dict of every series, sorted by key."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {
                k: {"value": g.value, "high": g.high}
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON text (sorted keys, fixed separators)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    # -- merge --------------------------------------------------------------

    def merge_snapshot(self, snap: Mapping[str, Mapping]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram buckets sum; gauges keep the maximum of
        ``value`` and ``high`` (merged gauges answer "how high did any
        shard get", the only question that survives aggregation).
        """
        for key, value in snap.get("counters", {}).items():
            self.counter(key).inc(value)
        for key, g in snap.get("gauges", {}).items():
            gauge = self.gauge(key)
            gauge.value = max(gauge.value, g["value"])
            gauge.high = max(gauge.high, g["high"])
        for key, h in snap.get("histograms", {}).items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(h["buckets"])
            if list(hist.buckets) != list(h["buckets"]):
                raise ValueError(f"histogram bucket mismatch for {key!r}")
            for i, c in enumerate(h["counts"]):
                hist.counts[i] += c
            hist.count += h["count"]
            hist.total += h["total"]

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())


def merge_metric_dicts(dicts: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Merge flat per-trial metric dicts (CoreStats.metrics).

    Keys prefixed ``max_`` keep the maximum across trials; everything
    else sums.  Deterministic: output keys are sorted.
    """
    merged: Dict[str, int] = {}
    for d in dicts:
        for key, value in d.items():
            if key.startswith("max_"):
                merged[key] = max(merged.get(key, value), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return {k: merged[k] for k in sorted(merged)}
