"""The run observer: virtual-time probes, timelines, and span collection.

A :class:`RunObserver` is the one object the rest of the stack talks to.
Attach it to a detector (and optionally a runtime/scheduler) and it

* records the **sampling square wave** — every ``sbegin``/``send``
  transition with its virtual time (event index);
* drives **probes**: at a fixed virtual-time cadence (and at every GC
  boundary in live runs) it samples the detector's live analysis state —
  metadata footprint, live-variable count, vector-clock sizes,
  races-so-far, cost-class operation counts — into an append-only
  timeline;
* collects **spans**: per-batch dispatch slices (with wall nanoseconds
  in their args), scheduler thread lifetimes, and named phases;
* owns a :class:`~repro.obs.metrics.MetricsRegistry` that finalization
  fills with the run's deterministic operation accounting.

Cost discipline: every instrumented hot path guards with a single
``observer is None`` branch, and nothing here runs per event — probes
fire per batch / per GC, sampling marks per period transition.  With no
observer attached the instrumentation is one predictable branch.  The
one deliberate exception is race provenance: when a
:class:`~repro.obs.provenance.FlightRecorder` is attached via
``RunObserver(recorder=...)``, the detector run loop records every event
into bounded per-thread rings and :meth:`RunObserver.on_race` captures
context at report time — an explicitly opt-in cost that never touches
the disabled path.

Determinism: probes are driven by *virtual* time only, so
:meth:`timeline_jsonl` is byte-identical across repeated runs, ``--jobs``
values, and machines.  Wall-clock measurements appear exclusively in
Perfetto span args (see :mod:`repro.obs.perfetto`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .perfetto import (
    PID_DETECTOR,
    PID_SCHEDULER,
    TID_DISPATCH,
    TID_PHASES,
    TID_SAMPLING,
    counter_event,
    instant_event,
    process_metadata,
    race_flow_events,
    span_event,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = ["RunObserver"]

#: default virtual-time distance between probes (= one default batch)
DEFAULT_SAMPLE_EVERY = 4096

#: timeline fields exported as Perfetto counter tracks, in track order
COUNTER_TRACKS = (
    "footprint_words",
    "live_vars",
    "races",
    "sampling",
    "reads_slow",
    "writes_slow",
    "joins_slow",
)


class RunObserver:
    """Collects probes, spans, and metrics for one detector run."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        recorder=None,
    ) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        #: optional :class:`repro.obs.provenance.FlightRecorder`; when set,
        #: ``Detector.run``/``run_batch`` take the per-event recording loop
        #: and call :meth:`on_race` for every appended race report
        self.recorder = recorder
        #: flight-recorder context per race report, parallel to the
        #: detector's race list (empty dicts when no recorder is attached)
        self.race_contexts: List[Dict] = []
        #: the detector's race list at finalize time — feeds the Perfetto
        #: race-arrow flow events in :meth:`trace_events`
        self.final_races: List = []
        self.timeline: List[Dict[str, int]] = []
        #: (virtual time, entering) sampling transitions, in order
        self.sampling_marks: List[Tuple[int, bool]] = []
        #: (first vt, n events, wall ns) per dispatched batch
        self.batch_slices: List[Tuple[int, int, int]] = []
        #: (tid, first step, last step) per finished simulated thread
        self.thread_spans: List[Tuple[int, int, int]] = []
        #: (name, begin vt, end vt) phases (replay, scheduler run, ...)
        self.phase_spans: List[Tuple[str, int, int]] = []
        #: (name, ts, pid) instant pulses (GCs, timed-wait clock jumps)
        self.instants: List[Tuple[str, int, int]] = []
        self._sampling = False
        self._next_probe = 0
        self._final_vt = 0
        self._finalized = False
        #: (final vt, events seen, races) at the last finalize; a repeat
        #: call with identical state is a no-op (no duplicate probe)
        self._finalized_state: Optional[Tuple[int, int, int]] = None

    # -- attachment ---------------------------------------------------------

    def attach(self, detector) -> "RunObserver":
        """Point a detector's observer slot at this observer."""
        detector.observer = self
        return self

    # -- hooks (called by instrumented components) --------------------------

    def on_sampling(self, entering: bool, vt: int) -> None:
        """A global sampling period begins (or ends) at virtual time vt."""
        vt = max(vt, 0)
        if entering == self._sampling:
            return  # redundant transition (e.g. repeated sbegin)
        self._sampling = entering
        self.sampling_marks.append((vt, entering))
        if entering:
            self.registry.counter("sampling_periods").inc()

    def on_batch(self, detector, vt_start: int, n_events: int, wall_ns: int) -> None:
        """One columnar batch was dispatched; probe at the batch boundary."""
        self.batch_slices.append((max(vt_start, 0), n_events, wall_ns))
        self.registry.histogram("batch_events").observe(n_events)
        self.maybe_probe(detector, vt_start + n_events)

    def on_events(self, detector, vt: int) -> None:
        """Scalar-dispatch progress hook (same cadence as batches)."""
        self.maybe_probe(detector, vt)

    def on_race(self, detector, race) -> None:
        """A race report was just appended; capture its flight-recorder
        context while the surrounding events are still in the rings."""
        rec = self.recorder
        self.race_contexts.append(rec.capture(race) if rec is not None else {})

    def on_gc(self, detector, vt: int) -> None:
        """A nursery collection: the live path's natural probe boundary."""
        self.registry.counter("gc_count").inc()
        self.instants.append(("gc", vt, PID_DETECTOR))
        self.probe(detector, vt)

    def on_phase(self, name: str, begin: int, end: int) -> None:
        self.phase_spans.append((name, begin, end))

    def on_thread_span(self, tid: int, begin_step: int, end_step: int) -> None:
        self.thread_spans.append((tid, begin_step, end_step))

    def on_clock_jump(self, step: int) -> None:
        """The scheduler advanced its clock to a timed-wait deadline."""
        self.registry.counter("scheduler_clock_jumps").inc()
        self.instants.append(("timed-wait clock jump", step, PID_SCHEDULER))

    # -- probes -------------------------------------------------------------

    def maybe_probe(self, detector, vt: int) -> None:
        """Probe if virtual time has crossed the sampling cadence."""
        if vt >= self._next_probe:
            self.probe(detector, vt)

    def probe(self, detector, vt: int) -> None:
        """Sample detector state into one timeline record at time vt."""
        vt = max(vt, 0)
        self._next_probe = vt + self.sample_every
        if vt > self._final_vt:
            self._final_vt = vt
        record = dict(detector.obs_sample())
        record["vt"] = vt
        record["sampling"] = 1 if self._sampling else 0
        c = detector.counters
        record["reads_fast"] = c.reads_fast_sampling + c.reads_fast_nonsampling
        record["reads_slow"] = c.reads_slow_sampling + c.reads_slow_nonsampling
        record["writes_fast"] = c.writes_fast_sampling + c.writes_fast_nonsampling
        record["writes_slow"] = c.writes_slow_sampling + c.writes_slow_nonsampling
        record["joins_fast"] = c.joins_fast
        record["joins_slow"] = c.joins_slow
        self.timeline.append(record)
        reg = self.registry
        for name in ("footprint_words", "live_vars", "vc_max", "races", "threads"):
            if name in record:
                reg.gauge(name).set(record[name])

    def finalize(self, detector, vt: Optional[int] = None) -> None:
        """Close the run: final probe plus registry totals.

        Idempotent *and re-entrant*: every total is written as an
        absolute value (not an increment), so calling finalize twice in
        a row changes nothing, and calling it again after *more* events
        arrived — the telemetry server finalizes at every disconnect,
        then again after a session resumes — refreshes the totals
        instead of double-counting them.  Only a finalize that observes
        new detector state emits another timeline probe.
        """
        final_vt = vt if vt is not None else max(self._final_vt, detector.perf.events)
        state = (final_vt, detector._events_seen, len(detector.races))
        if self._finalized and self._finalized_state == state:
            return
        self._finalized = True
        self._finalized_state = state
        self.final_races = list(detector.races)
        self.probe(detector, final_vt)
        reg = self.registry
        reg.count_many("ops", detector.counters.snapshot(), "op")
        # label the run with its state representation so space/throughput
        # series from different backends never get silently mixed
        reg.counter(
            "detector_runs",
            detector=detector.name,
            backend=getattr(detector, "backend_name", "object"),
        ).value = 1
        # live runs pump Detector.apply directly, leaving perf.events at
        # zero — virtual time is the event count there
        reg.counter("events").value = detector.perf.events or final_vt
        reg.counter("races").value = len(detector.races)
        reg.counter("distinct_races").value = len(detector.distinct_races)
        reg.counter("batches").value = detector.perf.batches

    @property
    def final_vt(self) -> int:
        return self._final_vt

    # -- timeline output ----------------------------------------------------

    def timeline_jsonl(self) -> str:
        """The timeline as deterministic JSONL (sorted keys, compact)."""
        import json

        return "".join(
            json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
            for rec in self.timeline
        )

    def write_timeline(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.timeline_jsonl())

    def write_metrics(self, path) -> None:
        self.registry.write_json(path)

    # -- Perfetto output ----------------------------------------------------

    def sampling_periods(self) -> List[Tuple[int, int]]:
        """Closed (begin vt, end vt) sampling intervals; open periods end
        at the final virtual time."""
        periods: List[Tuple[int, int]] = []
        open_at: Optional[int] = None
        for vt, entering in self.sampling_marks:
            if entering and open_at is None:
                open_at = vt
            elif not entering and open_at is not None:
                periods.append((open_at, vt))
                open_at = None
        if open_at is not None:
            periods.append((open_at, max(self._final_vt, open_at)))
        return periods

    def trace_events(self) -> List[Dict]:
        """The full run as trace-event dicts (see :mod:`.perfetto`)."""
        events = process_metadata()
        for name, begin, end in self.phase_spans:
            events.append(
                span_event(name, begin, end - begin, PID_DETECTOR, TID_PHASES,
                           cat="phase")
            )
        for begin, end in self.sampling_periods():
            events.append(
                span_event("sampling period", begin, end - begin,
                           PID_DETECTOR, TID_SAMPLING, cat="sampling")
            )
        for vt, n, wall_ns in self.batch_slices:
            events.append(
                span_event(
                    "batch", vt, n, PID_DETECTOR, TID_DISPATCH, cat="dispatch",
                    args={
                        "events": n,
                        "wall_ns": wall_ns,
                        "ns_per_event": round(wall_ns / n, 2) if n else 0.0,
                    },
                )
            )
            if n:
                events.append(
                    counter_event("wall_ns_per_event", vt, round(wall_ns / n, 2))
                )
        for record in self.timeline:
            ts = record["vt"]
            for name in COUNTER_TRACKS:
                if name in record:
                    events.append(counter_event(name, ts, record[name]))
        for tid, begin, end in self.thread_spans:
            events.append(
                span_event(f"t{tid}", begin, end - begin, PID_SCHEDULER, tid,
                           cat="thread")
            )
        for name, ts, pid in self.instants:
            events.append(instant_event(name, ts, pid))
        if self.final_races:
            events.extend(race_flow_events(self.final_races))
        return events

    def write_trace(self, path) -> None:
        events = self.trace_events()
        problems = validate_chrome_trace({"traceEvents": events})
        if problems:  # pragma: no cover - defensive; tests pin validity
            raise ValueError(f"invalid trace export: {problems[:3]}")
        write_chrome_trace(path, events)
