"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsRegistry`.

The registry already names series in the Prometheus convention
(``name{k=v,...}``, sorted label keys — see
:func:`~repro.obs.metrics.series_key`); this module renders a snapshot
into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so the
telemetry server can serve a ``/metrics`` scrape endpoint without any
client library:

* counters render as ``# TYPE <name> counter`` plus one sample per
  labeled series;
* gauges render their current ``value``; the tracked peak rides along as
  a second metric ``<name>_high`` (a gauge's high-watermark is exactly
  the question merged snapshots answer, so scrapes get it too);
* fixed-bucket histograms render cumulative ``<name>_bucket{le=...}``
  samples (the registry stores per-bucket counts; Prometheus wants
  cumulative counts-at-or-below) plus the mandatory ``le="+Inf"``,
  ``_sum``, and ``_count`` samples.

Rendering is deterministic: series are emitted in sorted-key order,
matching the snapshot's own ordering, so two scrapes of identical state
are byte-identical.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Tuple

__all__ = ["parse_series_key", "render_prometheus"]

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_NAME_SAFE = re.compile(r"[^a-zA-Z0-9_:]")


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry series key back into ``(name, labels)``.

    Inverse of :func:`~repro.obs.metrics.series_key` for the label
    alphabet the repo actually uses (no ``,`` or ``=`` inside values).
    """
    m = _KEY_RE.match(key)
    if m is None:  # pragma: no cover - the regex accepts any string
        return key, {}
    name = m.group("name")
    labels: Dict[str, str] = {}
    raw = m.group("labels")
    if raw:
        for part in raw.split(","):
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _sample(name: str, labels: Mapping[str, str], value) -> str:
    name = _NAME_SAFE.sub("_", name)
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label_value(str(labels[k]))}"' for k in sorted(labels)
        )
        return f"{name}{{{inner}}} {value}"
    return f"{name} {value}"


def _format_value(value) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def render_prometheus(snapshot: Mapping[str, Mapping]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as exposition text.

    Returns the full scrape body, newline-terminated.  ``# TYPE`` lines
    are emitted once per metric family, immediately before its first
    sample.
    """
    lines: List[str] = []
    typed: set = set()

    def emit_type(name: str, kind: str) -> None:
        safe = _NAME_SAFE.sub("_", name)
        if safe not in typed:
            typed.add(safe)
            lines.append(f"# TYPE {safe} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_series_key(key)
        emit_type(name, "counter")
        lines.append(_sample(name, labels, _format_value(value)))

    gauges = snapshot.get("gauges", {})
    for key, g in gauges.items():
        name, labels = parse_series_key(key)
        emit_type(name, "gauge")
        lines.append(_sample(name, labels, _format_value(g["value"])))
    for key, g in gauges.items():  # second family: the tracked peaks
        name, labels = parse_series_key(key)
        high_name = f"{name}_high"
        emit_type(high_name, "gauge")
        lines.append(_sample(high_name, labels, _format_value(g["high"])))

    for key, h in snapshot.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        emit_type(name, "histogram")
        cumulative = 0
        counts = h["counts"]
        for bound, count in zip(h["buckets"], counts):
            cumulative += count
            lines.append(
                _sample(f"{name}_bucket", dict(labels, le=str(bound)), cumulative)
            )
        # overflow bucket folds into +Inf; +Inf must equal _count
        lines.append(
            _sample(f"{name}_bucket", dict(labels, le="+Inf"), h["count"])
        )
        lines.append(_sample(f"{name}_sum", labels, _format_value(h["total"])))
        lines.append(_sample(f"{name}_count", labels, _format_value(h["count"])))

    return "\n".join(lines) + "\n" if lines else ""
