"""``repro.obs`` — always-available, near-zero-cost observability.

Five layers (see ``docs/OBSERVABILITY.md`` for the full catalog):

* :mod:`repro.obs.metrics` — a deterministic registry of counters,
  gauges, and fixed-bucket histograms with labeled series and JSON
  snapshot sinks;
* :mod:`repro.obs.observer` — :class:`RunObserver`, the probe driver
  that samples detector state on virtual time into ``timeline.jsonl``
  and collects spans;
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON export
  (``repro profile`` writes a file loadable in ``ui.perfetto.dev``),
  including race flow arrows linking the two accesses of each report;
* :mod:`repro.obs.provenance` — the per-thread flight recorder and the
  happens-before witness extractor behind race provenance;
* :mod:`repro.obs.reports` — the versioned structured race-report
  artifact (``repro/race-report/v1``) with deterministic merging,
  validation, and table/Markdown rendering.

Disabled-path contract: every hook site in the detectors, scheduler, and
runtime guards on ``observer is None`` with a single branch, and the
differential tests pin that an attached observer never changes races,
counters, or metadata.  Flight recording is opt-in on top of that
(``RunObserver(recorder=FlightRecorder())``) and leaves the disabled
path untouched.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_metric_dicts
from .observer import RunObserver
from .perfetto import (
    chrome_trace,
    matrix_trace_events,
    race_flow_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from .prom import render_prometheus
from .tracing import SpanRecorder, assemble_service_trace, chunk_flow_id
from .provenance import FlightRecorder, SyncIndex, SyncIndexBuilder, extract_witness
from .quality import (
    COVERAGE_SCHEMA,
    ProportionalityAuditor,
    build_coverage,
    coverage_from_sigs,
    merge_coverage,
    render_coverage,
    validate_coverage,
    write_coverage,
)
from .reports import (
    REPORT_SCHEMA,
    build_report,
    merge_reports,
    render_report_markdown,
    render_report_table,
    report_from_sigs,
    validate_report,
    write_report,
)

__all__ = [
    "COVERAGE_SCHEMA",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProportionalityAuditor",
    "REPORT_SCHEMA",
    "RunObserver",
    "SpanRecorder",
    "SyncIndex",
    "SyncIndexBuilder",
    "assemble_service_trace",
    "build_coverage",
    "build_report",
    "chunk_flow_id",
    "coverage_from_sigs",
    "render_prometheus",
    "chrome_trace",
    "extract_witness",
    "matrix_trace_events",
    "merge_coverage",
    "merge_metric_dicts",
    "merge_reports",
    "race_flow_events",
    "render_coverage",
    "render_report_markdown",
    "render_report_table",
    "report_from_sigs",
    "validate_chrome_trace",
    "validate_coverage",
    "validate_report",
    "write_chrome_trace",
    "write_coverage",
    "write_report",
]
