"""``repro.obs`` — always-available, near-zero-cost observability.

Three layers (see ``docs/OBSERVABILITY.md`` for the full catalog):

* :mod:`repro.obs.metrics` — a deterministic registry of counters,
  gauges, and fixed-bucket histograms with labeled series and JSON
  snapshot sinks;
* :mod:`repro.obs.observer` — :class:`RunObserver`, the probe driver
  that samples detector state on virtual time into ``timeline.jsonl``
  and collects spans;
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON export
  (``repro profile`` writes a file loadable in ``ui.perfetto.dev``).

Disabled-path contract: every hook site in the detectors, scheduler, and
runtime guards on ``observer is None`` with a single branch, and the
differential tests pin that an attached observer never changes races,
counters, or metadata.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_metric_dicts
from .observer import RunObserver
from .perfetto import (
    chrome_trace,
    matrix_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunObserver",
    "chrome_trace",
    "matrix_trace_events",
    "merge_metric_dicts",
    "validate_chrome_trace",
    "write_chrome_trace",
]
