"""Wire-propagated tracing for the telemetry service (``repro.net``).

The offline exporter (:mod:`repro.obs.perfetto`) renders one detector
run in *virtual* time.  The service needs the other half of the story:
where *wall-clock* time goes while events cross a socket, wait for
credits, queue behind a shard, and fold into the merged status document.
This module provides the pieces:

* :class:`SpanRecorder` — a bounded, thread-safe buffer of Chrome
  trace-event dicts stamped with ``time.monotonic_ns()``.  On Linux
  ``CLOCK_MONOTONIC`` is system-wide, so spans recorded in the client
  process, the server front tier, and the forked shard workers are
  directly comparable; :func:`assemble_service_trace` merges them into
  one document and re-bases every timestamp onto the earliest span so
  the trace starts at ``ts=0``.
* A fixed service process-id layout (``PID_FRONT``, ``PID_MERGE``,
  ``PID_SHARD_BASE + shard``, ``PID_CLIENT_BASE + trace_id``) that keeps
  clear of the offline exporter's pids 1-3 so a service trace and a
  detector trace could share a file without colliding.
* :func:`chunk_flow_id` — the deterministic flow-arrow id for one chunk
  of one session, used by the client's ``chunk-sent`` ``s`` event and
  the shard worker's ``chunk-applied`` ``f`` event.  The assembled trace
  drops unpaired flow halves (recorder caps can orphan one side) so the
  structural validator always passes.

Recording costs one monotonic read and one list append per span; when no
recorder is attached the call sites guard on ``recorder is None`` with a
single branch, preserving the ``--obs-gate`` budget.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional

from .perfetto import meta_event

__all__ = [
    "PID_CLIENT_BASE",
    "PID_FRONT",
    "PID_MERGE",
    "PID_SHARD_BASE",
    "SpanRecorder",
    "assemble_service_trace",
    "chunk_flow_id",
    "now_us",
]

#: service process-id layout (offline exporter owns pids 1-3)
PID_FRONT = 11
PID_MERGE = 12
PID_SHARD_BASE = 20
PID_CLIENT_BASE = 100

#: default cap on buffered spans per recorder; beyond it spans are
#: counted in ``dropped`` instead of stored, so a long-lived server
#: cannot grow without bound and a SPANS/REPORT frame stays well under
#: the 1 MiB frame ceiling
DEFAULT_MAX_SPANS = 2000


def now_us() -> int:
    """Monotonic wall-clock microseconds (system-wide on Linux)."""
    return time.monotonic_ns() // 1000


def chunk_flow_id(trace_id: int, seq: int) -> int:
    """Deterministic flow id binding chunk-sent to chunk-applied.

    Sessions get distinct ``trace_id`` values at handshake, so the pair
    ``(trace_id, seq)`` is unique across the whole service trace.
    """
    return (trace_id << 24) | (seq & 0xFFFFFF)


class SpanRecorder:
    """Bounded thread-safe collector of Chrome trace events.

    Every emitting helper timestamps with :func:`now_us` and appends a
    plain trace-event dict; :meth:`drain` hands the buffer over (with a
    ``dropped`` count) for shipping in a SPANS frame or folding into
    :func:`assemble_service_trace`.
    """

    __slots__ = ("pid", "max_spans", "dropped", "_events", "_lock")

    def __init__(self, pid: int, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.pid = pid
        self.max_spans = max_spans
        self.dropped = 0
        self._events: List[Dict] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    def _append(self, event: Dict) -> None:
        with self._lock:
            if len(self._events) >= self.max_spans:
                self.dropped += 1
                return
            self._events.append(event)

    # -- emitters ----------------------------------------------------------

    def begin(self) -> int:
        """Start-of-span timestamp; pass to :meth:`span` when done."""
        return now_us()

    def span(
        self,
        name: str,
        start_us: int,
        tid: int = 0,
        cat: str = "service",
        args: Optional[Mapping] = None,
        flow: Optional[int] = None,
        flow_in: Optional[int] = None,
    ) -> int:
        """Record a complete ``X`` span from ``start_us`` to now.

        ``flow`` additionally emits an ``s`` (flow start) event at the
        span start; ``flow_in`` emits an ``f`` (flow finish, ``bp: "e"``)
        binding an incoming arrow to this span.  Returns the wall-clock
        duration in microseconds (callers feed it to histograms).
        """
        end = now_us()
        dur = max(end - start_us, 0)
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": start_us,
            "dur": max(dur, 1),
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._append(event)
        if flow is not None:
            self._append(
                {"ph": "s", "name": name, "cat": cat, "id": flow,
                 "ts": start_us, "pid": self.pid, "tid": tid}
            )
        if flow_in is not None:
            self._append(
                {"ph": "f", "name": name, "cat": cat, "id": flow_in,
                 "ts": start_us, "pid": self.pid, "tid": tid, "bp": "e"}
            )
        return dur

    def counter(self, name: str, value, tid: int = 0) -> None:
        """Record a ``C`` counter sample at the current wall clock.

        Perfetto renders consecutive samples of one name as a counter
        track; the shard workers use this to plot the effective
        sampling rate over service time (one sample per applied chunk,
        so the hot path stays untouched).
        """
        self._append(
            {"ph": "C", "name": name, "cat": "service", "ts": now_us(),
             "pid": self.pid, "tid": tid, "args": {"value": value}}
        )

    def thread_name(self, tid: int, name: str) -> None:
        """Record an ``M`` thread-name event for track ``tid``."""
        self._append(
            {"ph": "M", "name": "thread_name", "pid": self.pid, "tid": tid,
             "ts": 0, "args": {"name": name}}
        )

    def instant(
        self, name: str, tid: int = 0, args: Optional[Mapping] = None
    ) -> None:
        event = {
            "ph": "i",
            "name": name,
            "cat": "service",
            "ts": now_us(),
            "pid": self.pid,
            "tid": tid,
            "s": "t",
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    # -- extraction --------------------------------------------------------

    def drain(self) -> List[Dict]:
        """Remove and return every buffered event (dropped count stays)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def snapshot(self) -> List[Dict]:
        """Copy of the buffered events without draining them."""
        with self._lock:
            return [dict(ev) for ev in self._events]


def _drop_orphan_flows(events: List[Dict]) -> List[Dict]:
    """Remove s/f events whose partner is missing (capped recorders)."""
    starts = {ev["id"] for ev in events if ev.get("ph") == "s"}
    ends = {ev["id"] for ev in events if ev.get("ph") == "f"}
    paired = starts & ends
    return [
        ev for ev in events
        if ev.get("ph") not in ("s", "f") or ev["id"] in paired
    ]


def assemble_service_trace(
    groups: Iterable[Mapping],
    extra_metadata: Optional[Iterable[Dict]] = None,
) -> Dict:
    """Merge per-process span batches into one Perfetto document.

    ``groups`` is an iterable of ``{"pid": int, "name": str,
    "events": [trace-event, ...], "dropped": int}`` — one per process
    that recorded spans (front tier, merge tier, each shard worker, each
    client).  Timestamps are re-based so the earliest span in any group
    lands at ``ts=0`` (monotonic clocks share an epoch per boot, not a
    meaningful zero), unpaired flow arrows are dropped, and ``M``
    process-name records are synthesized per group.

    Returns the JSON-object-format envelope (``{"traceEvents": ...}``)
    ready for :func:`~repro.obs.perfetto.write_chrome_trace` /
    :func:`~repro.obs.perfetto.validate_chrome_trace`.
    """
    groups = list(groups)
    merged: List[Dict] = []
    metadata: List[Dict] = []
    total_dropped = 0
    for group in groups:
        metadata.append(
            meta_event("process_name", str(group["name"]), int(group["pid"]))
        )
        total_dropped += int(group.get("dropped", 0))
        # copy: callers keep their buffers, and re-assembling the same
        # groups later must not see already-rebased timestamps
        merged.extend(dict(ev) for ev in group.get("events", ()))
    if extra_metadata:
        metadata.extend(extra_metadata)
    epoch = min(
        (ev["ts"] for ev in merged if "ts" in ev and ev.get("ph") != "M"),
        default=0,
    )
    for ev in merged:
        if "ts" in ev and ev.get("ph") != "M":
            ev["ts"] = max(int(ev["ts"]) - epoch, 0)
    merged = _drop_orphan_flows(merged)
    merged.sort(key=lambda ev: (ev.get("ts", 0), ev.get("pid", 0), ev.get("tid", 0)))
    doc = {
        "traceEvents": metadata + merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro/service-trace/v1",
            "spans_dropped": total_dropped,
        },
    }
    return doc
