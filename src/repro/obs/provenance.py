"""Race provenance: flight recorder and happens-before witnesses.

PACER's qualitative claim is that each sampled race arrives with "the
ability to report the racy accesses" — a report a developer can act on,
not just a ``(var, site, site)`` triple.  This module supplies the two
evidence sources behind ``repro.obs.reports``:

* :class:`FlightRecorder` — a bounded per-thread ring buffer of recent
  events (accesses *and* sync operations, with their sites and virtual
  times).  Recording is O(1) per event and entirely absent when no
  recorder is attached: the detectors' hot paths keep their single
  ``observer is None`` branch, and :meth:`Detector.run`/``run_batch``
  only enter the recording loop when ``observer.recorder`` is set.  At
  report time :meth:`FlightRecorder.capture` cuts the event context
  surrounding both racing accesses out of the rings.

* :class:`SyncIndex` + :func:`extract_witness` — reconstructs the
  vector-clock evidence for a reported race: the release-like operations
  the first thread performed between the two accesses, the acquire-like
  operations the second thread performed, and whether any of them form a
  happens-before edge.  A race report is *believable* when no such edge
  exists (``"no-release"`` or ``"sync-gap"``); an edge found
  (``"ordering-edge"``) flags the report as suspicious — precise
  detectors never produce one.  The witness also attributes the report
  to PACER's sampling square wave: which sampling period contained each
  access, which explains both why a race *was* caught and (via
  ``repro explain``'s discard attribution) why a non-sampled shortest
  race was not.

A :class:`SyncIndex` built :meth:`~SyncIndex.from_trace` is exact; one
built :meth:`~SyncIndex.from_recorder` sees only the recorder's bounded
sync window and says so in the witness (``"source": "flight-recorder"``).
Everything here is a deterministic function of the event sequence —
reports built from either state backend and either dispatch mode are
byte-identical, which the determinism tests pin.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..trace.events import (
    ACQUIRE,
    FORK,
    JOIN,
    RELEASE,
    SBEGIN,
    SEND,
    SYNC_KINDS,
    VOL_READ,
    VOL_WRITE,
)

__all__ = [
    "DEFAULT_WINDOW",
    "FlightRecorder",
    "SyncIndex",
    "SyncIndexBuilder",
    "extract_witness",
]

#: default per-thread ring capacity (events kept around each access)
DEFAULT_WINDOW = 64

#: default per-thread sync-operation log capacity (sync ops are ~3% of a
#: trace, so this window spans far more virtual time than the event ring)
DEFAULT_SYNC_WINDOW = 256

#: operations that can *send* a happens-before edge (release semantics)
RELEASE_LIKE = frozenset((RELEASE, VOL_WRITE, FORK))

#: operations that can *receive* a happens-before edge (acquire semantics)
ACQUIRE_LIKE = frozenset((ACQUIRE, VOL_READ, JOIN))

#: release kind -> the acquire kind that completes its edge on the same
#: object (fork/join pair on thread ids and are matched separately)
_PAIRED = {RELEASE: ACQUIRE, VOL_WRITE: VOL_READ}


class FlightRecorder:
    """Bounded per-thread ring buffers of recent events.

    ``record`` is the per-event hot call: one dict lookup plus one deque
    append (deques with ``maxlen`` evict in O(1)).  Sync operations are
    additionally kept in a longer per-thread side log so witnesses can
    reach back further than the access window, and ``sbegin``/``send``
    transitions land in ``sampling_marks`` for sampling attribution.
    """

    __slots__ = (
        "window",
        "sync_window",
        "context_before",
        "context_after",
        "sampling_marks",
        "events_recorded",
        "_rings",
        "_sync",
    )

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        sync_window: int = DEFAULT_SYNC_WINDOW,
        context_before: int = 8,
        context_after: int = 4,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.sync_window = max(sync_window, window)
        self.context_before = context_before
        self.context_after = context_after
        #: (virtual time, entering) sampling transitions, deduplicated
        self.sampling_marks: List[Tuple[int, bool]] = []
        self.events_recorded = 0
        self._rings: Dict[int, Deque[Tuple[int, str, int, int]]] = {}
        self._sync: Dict[int, Deque[Tuple[int, str, int]]] = {}

    # -- recording (hot path) -----------------------------------------------

    def record(self, index: int, kind: str, tid: int, target, site) -> None:
        """Record one event about to be analyzed at trace position ``index``."""
        if kind == SBEGIN or kind == SEND:
            entering = kind == SBEGIN
            marks = self.sampling_marks
            if not marks or marks[-1][1] != entering:
                marks.append((index, entering))
            return
        ring = self._rings.get(tid)
        if ring is None:
            ring = self._rings[tid] = deque(maxlen=self.window)
        ring.append((index, kind, target, site))
        if kind in SYNC_KINDS:
            log = self._sync.get(tid)
            if log is None:
                log = self._sync[tid] = deque(maxlen=self.sync_window)
            log.append((index, kind, target))
        self.events_recorded += 1

    # -- capture (report time) ----------------------------------------------

    def _context(self, tid: int, pivot: int) -> Dict:
        """Events around trace position ``pivot`` still held in tid's ring."""
        ring = self._rings.get(tid)
        before: List[Dict] = []
        after: List[Dict] = []
        retained = False
        if ring:
            for index, kind, target, site in ring:
                if index <= pivot:
                    if index == pivot:
                        retained = True
                    before.append(
                        {"vt": index, "kind": kind, "target": target, "site": site}
                    )
                elif len(after) < self.context_after:
                    after.append(
                        {"vt": index, "kind": kind, "target": target, "site": site}
                    )
        keep = self.context_before + 1  # the access itself plus its prefix
        return {
            "tid": tid,
            "events": before[-keep:] + after,
            "complete": retained,
        }

    def capture(self, race) -> Dict:
        """Flight-recorder context for both accesses of a reported race.

        Called from ``RunObserver.on_race`` immediately after the racing
        (second) access was analyzed, so the second context is always
        complete; the first access may have aged out of its thread's
        ring, in which case its ``complete`` flag is False and the
        nearest surviving events are returned instead.
        """
        second = self._context(race.second_tid, race.index)
        first: Optional[Dict] = None
        if race.first_index >= 0:
            first = self._context(race.first_tid, race.first_index)
        return {"first": first, "second": second, "window": self.window}


class SyncIndex:
    """Per-thread synchronization operations plus the sampling square wave.

    The witness substrate: built either from a full in-memory trace
    (exact) or from a :class:`FlightRecorder`'s bounded sync logs.
    """

    def __init__(
        self,
        sync_by_tid: Dict[int, List[Tuple[int, str, int]]],
        sampling_marks: List[Tuple[int, bool]],
        source: str,
        complete: bool,
    ) -> None:
        self._sync = sync_by_tid
        self.sampling_marks = list(sampling_marks)
        self.source = source
        self.complete = complete

    @classmethod
    def from_trace(cls, events) -> "SyncIndex":
        """Exact index over a full event sequence."""
        builder = SyncIndexBuilder()
        for index, event in enumerate(events):
            builder.add(index, event)
        return builder.build()

    @classmethod
    def from_builder(cls, builder: "SyncIndexBuilder") -> "SyncIndex":
        """Exact index accumulated incrementally (streaming ingestion)."""
        return builder.build()

    @classmethod
    def from_recorder(cls, recorder: FlightRecorder) -> "SyncIndex":
        """Bounded index over a flight recorder's sync logs."""
        sync = {tid: list(log) for tid, log in recorder._sync.items()}
        return cls(
            sync, recorder.sampling_marks, source="flight-recorder", complete=False
        )

    # -- sync queries --------------------------------------------------------

    def releases_between(self, tid: int, lo: int, hi: int) -> List[Tuple[int, str, int]]:
        """Release-like ops by ``tid`` with virtual time in ``(lo, hi)``."""
        return [
            op
            for op in self._sync.get(tid, ())
            if lo < op[0] < hi and op[1] in RELEASE_LIKE
        ]

    def acquires_between(self, tid: int, lo: int, hi: int) -> List[Tuple[int, str, int]]:
        """Acquire-like ops by ``tid`` with virtual time in ``(lo, hi)``."""
        return [
            op
            for op in self._sync.get(tid, ())
            if lo < op[0] < hi and op[1] in ACQUIRE_LIKE
        ]

    # -- sampling attribution ------------------------------------------------

    def periods(self) -> List[Tuple[int, Optional[int]]]:
        """Sampling periods as (begin vt, end vt) pairs; a period still
        open at the end of the trace has end ``None``."""
        out: List[Tuple[int, Optional[int]]] = []
        open_at: Optional[int] = None
        for vt, entering in self.sampling_marks:
            if entering and open_at is None:
                open_at = vt
            elif not entering and open_at is not None:
                out.append((open_at, vt))
                open_at = None
        if open_at is not None:
            out.append((open_at, None))
        return out

    def period_of(self, index: int) -> Optional[int]:
        """Ordinal (0-based) of the sampling period containing ``index``."""
        if index < 0:
            return None
        for ordinal, (begin, end) in enumerate(self.periods()):
            if begin <= index and (end is None or index < end):
                return ordinal
        return None


class SyncIndexBuilder:
    """Incrementally accumulate an *exact* :class:`SyncIndex`.

    The streaming ingestion path (``repro.net.shard``) sees a session's
    events chunk by chunk and cannot keep the full trace, but it can
    afford this builder: sync operations are a few percent of a trace,
    so holding all of them stays far below holding every access.  Feed
    every event with its *global* trace position before analyzing it,
    then :meth:`build`.  The result is indistinguishable from
    :meth:`SyncIndex.from_trace` over the concatenated trace — which is
    what makes streamed race reports byte-identical to offline ones.
    """

    __slots__ = ("_sync", "_marks", "events_indexed")

    def __init__(self) -> None:
        self._sync: Dict[int, List[Tuple[int, str, int]]] = {}
        self._marks: List[Tuple[int, bool]] = []
        self.events_indexed = 0

    def add(self, index: int, event) -> None:
        """Index one event at global trace position ``index``."""
        kind = event.kind
        if kind == SBEGIN or kind == SEND:
            entering = kind == SBEGIN
            marks = self._marks
            if not marks or marks[-1][1] != entering:
                marks.append((index, entering))
        elif kind in SYNC_KINDS:
            self._sync.setdefault(event.tid, []).append(
                (index, kind, event.target)
            )
        self.events_indexed += 1

    def add_chunk(self, start: int, events) -> int:
        """Index a chunk whose first event sits at position ``start``;
        returns the position one past the chunk's last event."""
        index = start
        for event in events:
            self.add(index, event)
            index += 1
        return index

    def build(self) -> SyncIndex:
        """Snapshot the accumulated state as an exact index."""
        return SyncIndex(
            {tid: list(ops) for tid, ops in self._sync.items()},
            self._marks,
            source="trace",
            complete=True,
        )


def _op_dicts(ops: List[Tuple[int, str, int]], cap: int = 6) -> List[Dict]:
    return [{"vt": vt, "kind": kind, "target": target} for vt, kind, target in ops[:cap]]


def extract_witness(race, sync: SyncIndex) -> Dict:
    """Happens-before evidence for one reported race.

    Looks for a single release→acquire edge between the two accesses:
    a release-like operation by the first thread after its access,
    matched with an acquire-like operation on the same object by the
    second thread before the report.  Three verdicts:

    * ``"no-release"`` — the first thread performed no release-like
      operation in the window: no happens-before path can exist, the
      strongest possible confirmation.
    * ``"sync-gap"`` — both threads synchronized, but on disjoint
      objects; no single edge connects the accesses.  (A multi-hop path
      through a third thread is not searched; FASTTRACK's vector clocks
      already rule one out for precise detectors.)
    * ``"ordering-edge"`` — a connecting edge *was* found, so the
      accesses are ordered and the report is suspect (imprecise
      detectors, or clocks frozen by PACER's non-sampling rules).
    """
    i, j = race.first_index, race.index
    a, b = race.first_tid, race.second_tid
    lo = i if i >= 0 else -1
    rels = sync.releases_between(a, lo, j)
    acqs = sync.acquires_between(b, lo, j)

    edge: Optional[Dict] = None
    for k, rkind, rtarget in rels:
        if rkind == FORK and rtarget == b:
            # fork(a -> b) after the first access orders it before all of b
            edge = {"kind": "fork", "target": rtarget, "release_vt": k,
                    "acquire_vt": k}
            break
        want = _PAIRED.get(rkind)
        if want is None:
            continue
        for m, akind, atarget in acqs:
            if m > k and akind == want and atarget == rtarget:
                edge = {"kind": f"{rkind}->{akind}", "target": rtarget,
                        "release_vt": k, "acquire_vt": m}
                break
        if edge is not None:
            break
    if edge is None:
        for m, akind, atarget in acqs:
            if akind == JOIN and atarget == a:
                # join(b <- a): everything a did before terminating — the
                # first access included — happens before the report
                edge = {"kind": "join", "target": a, "release_vt": m,
                        "acquire_vt": m}
                break

    if edge is not None:
        verdict = "ordering-edge"
        summary = (
            f"suspicious: {edge['kind']} on {edge['target']} "
            f"(vt {edge['release_vt']}->{edge['acquire_vt']}) orders the "
            f"accesses; a precise detector would not report this pair"
        )
    elif not rels:
        verdict = "no-release"
        summary = (
            f"t{a} performed no release/fork/volatile-write between the racy "
            f"access (vt {i}) and the report (vt {j}): no happens-before "
            f"edge was possible"
        )
    else:
        verdict = "sync-gap"
        rel_objs = sorted({t for _, _, t in rels})
        acq_objs = sorted({t for _, _, t in acqs})
        acq_desc = f"acquired {acq_objs}" if acq_objs else "acquired nothing"
        summary = (
            f"sync gap: t{a} released {rel_objs} but t{b} {acq_desc} "
            f"between vt {i} and vt {j} — no common object connects the "
            f"accesses"
        )

    sampling: Optional[Dict] = None
    if sync.sampling_marks:
        sampling = {
            "first_period": sync.period_of(i),
            "second_period": sync.period_of(j),
            "n_periods": len(sync.periods()),
        }

    return {
        "verdict": verdict,
        "summary": summary,
        "source": sync.source,
        "complete": sync.complete,
        "releases_after_first": _op_dicts(rels),
        "acquires_before_second": _op_dicts(acqs),
        "edge": edge,
        "sampling": sampling,
    }
