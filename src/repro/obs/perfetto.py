"""Chrome trace-event / Perfetto JSON export.

Renders one detector run as a trace loadable in ``ui.perfetto.dev`` (or
``chrome://tracing``): sampling periods as spans, per-batch dispatch as
slices, scheduler thread lifetimes as per-thread spans, and the probe
samples as counter tracks.

Timestamps are **virtual**: one microsecond per trace event (detector
tracks) or per scheduler step (scheduler tracks).  Virtual time is what
PACER's claims are stated in — "overhead proportional to r" is a
statement about work per *event*, not per wall second — and it makes the
exported trace deterministic.  Wall-clock nanoseconds, where measured,
ride along in span ``args`` (``wall_ns``, ``ns_per_event``) so a profile
still shows where real time goes inside the batched hot loops.

The JSON object format is the Trace Event Format's; only the event
phases below are emitted:

* ``M`` — process/thread names,
* ``X`` — complete spans (``ts`` + ``dur``),
* ``C`` — counter samples (``args`` maps series name to value),
* ``i`` — instants (GC pulses, timed-wait clock jumps),
* ``s``/``f`` — flow start/finish pairs (race arrows linking the first
  and second access of each reported race across thread tracks).

:func:`validate_chrome_trace` checks those structural rules; the test
suite and the CI smoke job run every exported trace through it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "PID_DETECTOR",
    "PID_SCHEDULER",
    "PID_RACES",
    "chrome_trace",
    "counter_event",
    "instant_event",
    "matrix_trace_events",
    "race_flow_events",
    "span_event",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: process ids used in exported traces
PID_DETECTOR = 1
PID_SCHEDULER = 2
PID_RACES = 3

#: detector-process track (tid) layout
TID_PHASES = 0
TID_SAMPLING = 1
TID_DISPATCH = 2


def meta_event(name: str, value: str, pid: int, tid: int = 0) -> Dict:
    return {
        "ph": "M",
        "name": name,
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": value},
    }


def span_event(
    name: str,
    ts: int,
    dur: int,
    pid: int,
    tid: int,
    cat: str = "repro",
    args: Optional[Mapping] = None,
) -> Dict:
    return {
        "ph": "X",
        "name": name,
        "cat": cat,
        "ts": ts,
        "dur": max(dur, 1),  # zero-width spans are invisible in the UI
        "pid": pid,
        "tid": tid,
        "args": dict(args or {}),
    }


def counter_event(name: str, ts: int, value, pid: int = PID_DETECTOR) -> Dict:
    return {
        "ph": "C",
        "name": name,
        "cat": "repro",
        "ts": ts,
        "pid": pid,
        "args": {"value": value},
    }


def instant_event(
    name: str, ts: int, pid: int, tid: int = 0, args: Optional[Mapping] = None
) -> Dict:
    return {
        "ph": "i",
        "name": name,
        "cat": "repro",
        "ts": ts,
        "pid": pid,
        "tid": tid,
        "s": "t",  # thread-scoped instant
        "args": dict(args or {}),
    }


def process_metadata() -> List[Dict]:
    """Name the fixed processes/tracks every exported run shares."""
    return [
        meta_event("process_name", "detector", PID_DETECTOR),
        meta_event("thread_name", "phases", PID_DETECTOR, TID_PHASES),
        meta_event("thread_name", "sampling", PID_DETECTOR, TID_SAMPLING),
        meta_event("thread_name", "dispatch", PID_DETECTOR, TID_DISPATCH),
        meta_event("process_name", "scheduler", PID_SCHEDULER),
    ]


def chrome_trace(events: Iterable[Dict], other_data: Optional[Mapping] = None) -> Dict:
    """Wrap trace events in the JSON-object-format envelope."""
    doc = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if other_data:
        doc["otherData"] = dict(other_data)
    return doc


def write_chrome_trace(path, events: Iterable[Dict], other_data=None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events, other_data), fh, sort_keys=True)
        fh.write("\n")


def matrix_trace_events(cells) -> List[Dict]:
    """Spans for a whole experiment matrix, one track per detector.

    ``cells`` is an iterable of ``(task, stats)`` pairs (see
    ``repro.analysis.parallel``).  Each trial becomes a span whose width
    is its event count, laid head-to-tail per (workload, detector) track
    — a coverage map of the matrix, not a timing profile.
    """
    events: List[Dict] = [meta_event("process_name", "matrix", PID_DETECTOR)]
    tracks: Dict[Tuple[str, str], int] = {}
    cursors: Dict[int, int] = {}
    for task, stats in cells:
        key = (task.workload, task.detector)
        tid = tracks.get(key)
        if tid is None:
            tid = tracks[key] = len(tracks) + 1
            events.append(
                meta_event("thread_name", f"{key[0]}/{key[1]}", PID_DETECTOR, tid)
            )
        ts = cursors.get(tid, 0)
        rate = "-" if task.rate is None else f"{task.rate:.2%}"
        events.append(
            span_event(
                f"{task.workload}/{task.detector} seed={task.seed}",
                ts,
                stats.events,
                PID_DETECTOR,
                tid,
                cat="trial",
                args={
                    "seed": task.seed,
                    "rate": rate,
                    "events": stats.events,
                    "races": stats.races,
                    "distinct": stats.distinct_races,
                },
            )
        )
        cursors[tid] = ts + max(stats.events, 1)
    return events


def race_flow_events(races, site_name=None, limit: int = 256) -> List[Dict]:
    """Flow arrows linking the two accesses of each reported race.

    Emits, per race with known trace positions, a tiny span at each
    access on a per-thread track in the ``races`` process plus an
    ``s``/``f`` flow pair with a shared id — ui.perfetto.dev draws the
    pair as an arrow from the first access to the second across thread
    tracks.  Races whose first access position is unknown (``-1``, e.g.
    detectors that never learn it) are skipped; ``limit`` bounds the
    arrow count so pathological runs stay loadable.
    """
    if site_name is None:
        site_name = str
    events: List[Dict] = []
    named: set = set()
    emitted = 0
    for n, race in enumerate(races):
        i = getattr(race, "first_index", -1)
        j = getattr(race, "index", -1)
        if i < 0 or j < 0:
            continue
        if emitted >= limit:
            break
        emitted += 1
        if not events:
            events.append(meta_event("process_name", "races", PID_RACES))
        for tid in (race.first_tid, race.second_tid):
            if tid not in named:
                named.add(tid)
                events.append(
                    meta_event("thread_name", f"t{tid}", PID_RACES, tid)
                )
        name = (
            f"race[{race.kind}] {site_name(race.first_site)} -> "
            f"{site_name(race.second_site)}"
        )
        args = {
            "var": str(race.var),
            "kind": race.kind,
            "first_site": str(race.first_site),
            "second_site": str(race.second_site),
        }
        events.append(
            span_event(name, i, 1, PID_RACES, race.first_tid, cat="race",
                       args=dict(args, access="first"))
        )
        events.append(
            span_event(name, j, 1, PID_RACES, race.second_tid, cat="race",
                       args=dict(args, access="second"))
        )
        flow_id = n + 1
        events.append(
            {"ph": "s", "name": name, "cat": "race", "id": flow_id,
             "ts": i, "pid": PID_RACES, "tid": race.first_tid}
        )
        events.append(
            {"ph": "f", "name": name, "cat": "race", "id": flow_id,
             "ts": j, "pid": PID_RACES, "tid": race.second_tid,
             "bp": "e"}  # bind to the enclosing access span
        )
    return events


# -- validation ---------------------------------------------------------------

_REQUIRED_BY_PHASE = {
    "M": ("name", "pid", "args"),
    "X": ("name", "ts", "dur", "pid", "tid"),
    "C": ("name", "ts", "pid", "args"),
    "i": ("name", "ts", "pid"),
    "s": ("name", "ts", "pid", "tid", "id"),
    "f": ("name", "ts", "pid", "tid", "id"),
}


def validate_chrome_trace(doc) -> List[str]:
    """Structural validation against the trace-event JSON object format.

    Returns a list of human-readable problems; an empty list means the
    document is loadable.  Checks the envelope, per-phase required
    fields, numeric/non-negative timestamps and durations, and that
    counter samples carry numeric values.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _REQUIRED_BY_PHASE:
            problems.append(f"{where}: unknown or missing phase {ph!r}")
            continue
        for key in _REQUIRED_BY_PHASE[ph]:
            if key not in ev:
                problems.append(f"{where}: phase {ph!r} missing {key!r}")
        for key in ("ts", "dur"):
            value = ev.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or value < 0
            ):
                problems.append(f"{where}: {key}={value!r} must be a number >= 0")
        for key in ("pid", "tid"):
            value = ev.get(key)
            if value is not None and not isinstance(value, int):
                problems.append(f"{where}: {key}={value!r} must be an int")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter needs non-empty args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: counter args must be numeric")
    return problems
