"""repro — a reproduction of PACER: Proportional Detection of Data Races.

PACER (Bond, Coons & McKinley, PLDI 2010) is a sampling-based, precise
dynamic data-race detector whose detection probability for every race
equals its sampling rate, with time and space overheads proportional to
that rate.

Public entry points:

* :class:`repro.PacerDetector` — the paper's contribution.
* :class:`repro.FastTrackDetector`, :class:`repro.GenericDetector` — the
  precise baselines it builds on.
* :mod:`repro.trace` — the event model, happens-before oracle, and trace
  generators.
* :mod:`repro.sim` — the concurrent-program simulator and Table 2
  workloads.
* :mod:`repro.analysis` — detection-rate experiments and table rendering.
"""

from .core.pacer import PacerDetector
from .core.sampling import (
    BiasCorrectedController,
    FixedRateController,
    ScriptedController,
)
from .core.stats import CostModel, OpCounters
from .detectors.base import Detector, NullDetector, Race, distinct_races
from .detectors.djit import DjitPlusDetector
from .detectors.eraser import EraserDetector
from .detectors.fasttrack import FastTrackDetector
from .detectors.generic import GenericDetector
from .detectors.goldilocks import GoldilocksDetector
from .detectors.literace import LiteRaceDetector

__version__ = "1.0.0"

__all__ = [
    "PacerDetector",
    "FastTrackDetector",
    "GenericDetector",
    "DjitPlusDetector",
    "GoldilocksDetector",
    "LiteRaceDetector",
    "EraserDetector",
    "NullDetector",
    "Detector",
    "Race",
    "distinct_races",
    "FixedRateController",
    "BiasCorrectedController",
    "ScriptedController",
    "CostModel",
    "OpCounters",
    "__version__",
]
