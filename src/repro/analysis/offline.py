"""LiteRace's native *offline* mode (paper §2.3).

LiteRace logs synchronization plus the sampled subset of accesses and
checks for races offline "if desired, e.g., if an execution fails".
:func:`record_sampled_log` performs the logging pass (full
synchronization, bursty-sampled accesses) and returns the reduced log;
any precise detector can then analyze it offline.  The paper's
criticisms are directly observable on the result: the log still needs
O(n) synchronization analysis, and its size tracks the data touched, not
the sampling rate.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..detectors.fasttrack import FastTrackDetector
from ..detectors.literace import LiteRaceDetector
from ..trace.events import ACCESS_KINDS, Event
from ..trace.trace import Trace

__all__ = ["record_sampled_log", "analyze_offline"]


class _Recorder(LiteRaceDetector):
    """Reuses LiteRace's sampling decisions, but records instead of
    analyzing: sampled accesses are appended to the log, skipped ones are
    dropped, everything else passes through."""

    def __init__(self, burst_length: int, min_rate: float, seed: Optional[int]):
        super().__init__(burst_length=burst_length, min_rate=min_rate, seed=seed)
        self.log = []

    def read(self, tid: int, var: int, site: int = 0) -> None:
        if self._instrumenting(tid):
            self.sampled_accesses += 1
            self.log.append(Event("rd", tid, var, site))
        else:
            self.skipped_accesses += 1

    def write(self, tid: int, var: int, site: int = 0) -> None:
        if self._instrumenting(tid):
            self.sampled_accesses += 1
            self.log.append(Event("wr", tid, var, site))
        else:
            self.skipped_accesses += 1


def record_sampled_log(
    events: Iterable[Event],
    burst_length: int = 1000,
    min_rate: float = 0.001,
    seed: Optional[int] = None,
) -> Tuple[Trace, float]:
    """Run LiteRace's logging pass over a trace.

    Returns ``(log, effective_rate)``: the reduced log contains *all*
    synchronization and method events (so no happens-before edge is
    lost) plus the sampled accesses.
    """
    recorder = _Recorder(burst_length, min_rate, seed)
    for event in events:
        if event.kind in ACCESS_KINDS:
            recorder.apply(event)
        else:
            recorder.apply(event)
            recorder.log.append(event)
    return Trace(recorder.log), recorder.effective_rate


def analyze_offline(log: Trace, detector=None):
    """Analyze a recorded log offline (FASTTRACK by default)."""
    detector = detector if detector is not None else FastTrackDetector()
    detector.run(log)
    return detector
