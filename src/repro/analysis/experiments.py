"""Experiment drivers for the paper's evaluation (§5).

The central object is :func:`run_trial`, which executes one workload
trial under one detector configuration via the managed runtime, and
:class:`DetectionExperiment`, which reproduces the §5.1 methodology:

1. run N fully-sampled (r=100%) trials; the *evaluation races* are the
   injected races detected in at least half of them;
2. for each sampling rate r, run ``numTrials_r`` PACER trials and
   measure, per evaluation race, dynamic and distinct detection rates
   relative to the fully-sampled baseline (Figures 3-5).

Race identity: the workloads dedicate one variable per injected race
(``RACY_VAR_BASE + race_id``), so a reported race maps to its race id
directly — robust across trials and detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..core.pacer import PacerDetector
from ..core.sampling import BiasCorrectedController, SamplingController
from ..detectors.base import Detector, Race
from ..detectors.fasttrack import FastTrackDetector
from ..sim.runtime import Runtime, RuntimeConfig
from ..sim.workloads.base import RACY_VAR_BASE, WorkloadSpec, build_program
from ..util.config import num_trials_for_rate, scaled_trials

__all__ = [
    "race_id_of",
    "TrialResult",
    "run_trial",
    "DetectionExperiment",
    "RateAccuracy",
]


def race_id_of(race: Race) -> Optional[int]:
    """Map a reported race to its injected race id (None if background)."""
    if race.var >= RACY_VAR_BASE and race.var < RACY_VAR_BASE + 100_000:
        return race.var - RACY_VAR_BASE
    return None


@dataclass
class TrialResult:
    """Outcome of one workload trial under one detector."""

    detector: Detector
    dynamic_counts: Dict[int, int]  # race id -> dynamic reports this trial
    effective_rate: float
    events: int
    threads_started: int
    max_live_threads: int
    snapshots: list

    @property
    def detected_ids(self) -> Set[int]:
        return set(self.dynamic_counts)


def run_trial(
    spec: WorkloadSpec,
    detector: Detector,
    trial_seed: int,
    controller: Optional[SamplingController] = None,
    config: Optional[RuntimeConfig] = None,
) -> TrialResult:
    """Run one trial of ``spec`` under ``detector`` in the managed runtime."""
    program = build_program(spec, trial_seed=trial_seed)
    runtime = Runtime(
        program,
        detector,
        controller=controller,
        config=config,
        seed=trial_seed,
    )
    runtime.run()
    counts: Dict[int, int] = {}
    for race in detector.races:
        rid = race_id_of(race)
        if rid is not None:
            counts[rid] = counts.get(rid, 0) + 1
    return TrialResult(
        detector=detector,
        dynamic_counts=counts,
        effective_rate=runtime.effective_sampling_rate,
        events=runtime.events,
        threads_started=runtime.threads_started,
        max_live_threads=runtime.max_live_threads,
        snapshots=runtime.snapshots,
    )


@dataclass
class RateAccuracy:
    """Accuracy of one sampling rate against the r=100% baseline."""

    rate: float
    trials: int
    effective_rates: List[float]
    #: per evaluation race: mean dynamic reports per trial
    dynamic_mean: Dict[int, float]
    #: per evaluation race: fraction of trials in which it was detected
    distinct_mean: Dict[int, float]

    def dynamic_detection_rate(self, baseline: Dict[int, float]) -> float:
        """Unweighted mean over races of (dynamic at r) / (dynamic at 100%)."""
        ratios = [
            self.dynamic_mean.get(rid, 0.0) / base
            for rid, base in baseline.items()
            if base > 0
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def distinct_detection_rate(self, baseline: Dict[int, float]) -> float:
        """Unweighted mean over races of (distinct at r) / (distinct at 100%)."""
        ratios = [
            self.distinct_mean.get(rid, 0.0) / base
            for rid, base in baseline.items()
            if base > 0
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def per_race_rates(self, race_ids: Iterable[int]) -> List[float]:
        """Distinct detection probability per race, for Figure 5."""
        return [self.distinct_mean.get(rid, 0.0) for rid in race_ids]

    @property
    def mean_effective_rate(self) -> float:
        if not self.effective_rates:
            return 0.0
        return sum(self.effective_rates) / len(self.effective_rates)


class DetectionExperiment:
    """The §5.1/§5.2 methodology for one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        full_trials: int = 50,
        threshold_fraction: float = 0.5,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.spec = spec
        self.full_trials = scaled_trials(full_trials, minimum=4)
        self.threshold_fraction = threshold_fraction
        self.config = config
        self.baseline_results: List[TrialResult] = []
        self.evaluation_races: List[int] = []
        #: per evaluation race: mean dynamic reports per fully-sampled trial
        self.baseline_dynamic: Dict[int, float] = {}
        #: per evaluation race: fraction of fully-sampled trials detecting it
        self.baseline_distinct: Dict[int, float] = {}

    # -- baseline ------------------------------------------------------------

    def run_baseline(
        self, detector_factory: Callable[[], Detector] = FastTrackDetector
    ) -> None:
        """Run the fully-sampled trials and pick the evaluation races."""
        occurrences: Dict[int, int] = {}
        dynamic_totals: Dict[int, int] = {}
        for trial in range(self.full_trials):
            result = run_trial(
                self.spec, detector_factory(), trial, config=self.config
            )
            self.baseline_results.append(result)
            for rid, count in result.dynamic_counts.items():
                occurrences[rid] = occurrences.get(rid, 0) + 1
                dynamic_totals[rid] = dynamic_totals.get(rid, 0) + count
        threshold = self.threshold_fraction * self.full_trials
        self.evaluation_races = sorted(
            rid for rid, n in occurrences.items() if n >= threshold
        )
        self.baseline_dynamic = {
            rid: dynamic_totals[rid] / self.full_trials
            for rid in self.evaluation_races
        }
        self.baseline_distinct = {
            rid: occurrences[rid] / self.full_trials
            for rid in self.evaluation_races
        }

    def occurrence_counts(self) -> Dict[int, int]:
        """Race id -> number of fully-sampled trials detecting it."""
        counts: Dict[int, int] = {}
        for result in self.baseline_results:
            for rid in result.detected_ids:
                counts[rid] = counts.get(rid, 0) + 1
        return counts

    # -- sampled runs ------------------------------------------------------------

    def run_rate(
        self,
        rate: float,
        trials: Optional[int] = None,
        seed_base: int = 10_000,
    ) -> RateAccuracy:
        """Run PACER at one sampling rate; returns per-race accuracy."""
        if not self.evaluation_races:
            raise RuntimeError("run_baseline() first")
        n = trials if trials is not None else num_trials_for_rate(rate)
        dynamic_totals: Dict[int, int] = {}
        distinct_totals: Dict[int, int] = {}
        effective: List[float] = []
        for k in range(n):
            trial_seed = seed_base + k
            import random as _random

            controller = BiasCorrectedController(
                rate, rng=_random.Random(trial_seed * 7919 + int(rate * 1e6))
            )
            result = run_trial(
                self.spec,
                PacerDetector(),
                trial_seed,
                controller=controller,
                config=self.config,
            )
            effective.append(result.effective_rate)
            for rid, count in result.dynamic_counts.items():
                if rid in self.baseline_dynamic:
                    dynamic_totals[rid] = dynamic_totals.get(rid, 0) + count
                    distinct_totals[rid] = distinct_totals.get(rid, 0) + 1
        return RateAccuracy(
            rate=rate,
            trials=n,
            effective_rates=effective,
            dynamic_mean={rid: c / n for rid, c in dynamic_totals.items()},
            distinct_mean={rid: c / n for rid, c in distinct_totals.items()},
        )
