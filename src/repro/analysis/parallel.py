"""Sharded parallel experiment runner.

The evaluation matrix — (workload × detector × sampling rate × seed) —
is embarrassingly parallel, but only if each trial is deterministic on
its own: PACER's accuracy claims (§5) are statements about *distributions
over seeds*, so a run that changes results when fanned across processes
would be unusable as evidence.  This module makes the fan-out safe by
construction:

* every trial is described by a picklable, frozen :class:`TrialTask`;
* all randomness derives from :func:`task_seed`, a CRC-based hash of the
  task's own fields (never Python's builtin ``hash``, which varies with
  ``PYTHONHASHSEED``);
* workers ship back :class:`~repro.core.stats.CoreStats` — the
  deterministic result core, with wall-clock excluded from equality —
  keyed by task index, so output order is independent of the number of
  jobs and of shard scheduling.

``run_matrix(tasks, jobs=N)`` therefore returns *the same list* for any
``N``; the determinism regression tests pin this.  Fan-out runs under
the crash-isolated supervisor (:mod:`repro.analysis.supervisor`), which
adds per-trial timeouts, bounded retries, and poison-task quarantine on
top of the same determinism contract; checkpoint/resume journaling
lives in :mod:`repro.analysis.checkpoint`.
"""

from __future__ import annotations

import os
import sys
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.pacer import PacerDetector
from ..core.sampling import BiasCorrectedController
from ..core.stats import CoreStats, PerfCounters
from ..detectors import (
    Detector,
    DjitPlusDetector,
    EraserDetector,
    FastTrackDetector,
    GenericDetector,
    GoldilocksDetector,
    LiteRaceDetector,
    NullDetector,
)
from ..detectors.base import Race
from ..sim.runtime import Runtime, RuntimeConfig
from ..sim.workloads.base import WORKLOADS, build_program

__all__ = [
    "TrialTask",
    "DETECTOR_FACTORIES",
    "task_seed",
    "expand_matrix",
    "run_trial_task",
    "trial_metrics",
    "run_matrix",
    "merge_matrix",
    "matrix_report",
    "matrix_coverage",
    "default_jobs",
    "require_complete",
]

#: name -> detector factory taking an optional ``backend`` keyword
#: (picklable by name, not object)
DETECTOR_FACTORIES: Dict[str, Callable[..., Detector]] = {
    "pacer": PacerDetector,
    "fasttrack": FastTrackDetector,
    "generic": GenericDetector,
    "djit": DjitPlusDetector,
    "goldilocks": GoldilocksDetector,
    "literace": LiteRaceDetector,
    "eraser": EraserDetector,
    "none": NullDetector,
}


@dataclass(frozen=True)
class TrialTask:
    """One cell of the experiment matrix: everything a worker needs."""

    workload: str
    detector: str
    rate: Optional[float]  # PACER sampling rate; None for always-on
    seed: int
    scale: float = 1.0
    #: state backend name; None resolves to the process-wide default.
    #: Deliberately excluded from :func:`task_seed` — both backends must
    #: reproduce the same trial, which the differential suite asserts.
    backend: Optional[str] = None


def task_seed(task: TrialTask) -> int:
    """Deterministic per-trial RNG seed, stable across processes.

    Derived with CRC32 over the task's canonical text form; Python's
    builtin ``hash`` is off-limits here because string hashing is
    randomized per interpreter unless ``PYTHONHASHSEED`` is pinned.
    """
    rate_part = "none" if task.rate is None else f"{task.rate:.6f}"
    text = f"{task.workload}|{task.detector}|{rate_part}|{task.seed}|{task.scale:.6f}"
    return (zlib.crc32(text.encode("ascii")) << 16) ^ task.seed


def expand_matrix(
    workloads: Iterable[str],
    detectors: Iterable[str],
    rates: Iterable[Optional[float]],
    seeds: Iterable[int],
    scale: float = 1.0,
    backend: Optional[str] = None,
) -> List[TrialTask]:
    """The full cartesian matrix, in deterministic row-major order.

    ``rates`` entries other than ``None`` only apply to the ``pacer``
    detector; for always-on detectors the rate axis collapses to one
    trial (rate ``None``) instead of duplicating identical runs.
    """
    tasks: List[TrialTask] = []
    for workload in workloads:
        for detector in detectors:
            det_rates = list(rates) if detector == "pacer" else [None]
            for rate in det_rates:
                for seed in seeds:
                    tasks.append(
                        TrialTask(workload, detector, rate, seed, scale, backend)
                    )
    return tasks


def _race_sig(race: Race) -> Tuple:
    """Full dynamic signature of one race report (exact comparisons)."""
    return (
        race.index,
        race.first_index,
        race.var,
        race.kind,
        race.first_tid,
        race.first_site,
        race.second_tid,
        race.second_site,
    )


def run_trial_task(task: TrialTask) -> CoreStats:
    """Execute one trial and distill it into a :class:`CoreStats`.

    Pure function of the task: no module-level RNG, no environment
    dependence, so it yields identical results in-process and in any
    worker process.
    """
    import random

    spec = WORKLOADS[task.workload].scaled(task.scale)
    factory = DETECTOR_FACTORIES[task.detector]
    detector = factory(backend=task.backend)
    controller = None
    if task.rate is not None:
        if task.detector != "pacer":
            raise ValueError(f"rate only applies to pacer, not {task.detector!r}")
        controller = BiasCorrectedController(
            task.rate, rng=random.Random(task_seed(task))
        )
    runtime = Runtime(
        build_program(spec, trial_seed=task.seed),
        detector,
        controller=controller,
        config=RuntimeConfig(track_memory=False),
        seed=task.seed,
    )
    start = time.perf_counter_ns()
    runtime.run()
    elapsed = time.perf_counter_ns() - start
    perf = PerfCounters(events=runtime.events, elapsed_ns=elapsed)
    perf.merge(detector.perf)
    metrics = trial_metrics(runtime, detector)
    return CoreStats(
        workload=task.workload,
        detector=task.detector,
        rate=task.rate,
        seed=task.seed,
        events=runtime.events,
        races=len(detector.races),
        race_sigs=tuple(_race_sig(r) for r in detector.races),
        distinct_keys=tuple(sorted(detector.distinct_races)),
        effective_rate=runtime.effective_sampling_rate,
        counters=detector.counters.snapshot(),
        perf=perf,
        metrics=metrics,
    )


def trial_metrics(runtime: Runtime, detector: Detector) -> Dict[str, int]:
    """Deterministic end-of-run observability metrics for one trial.

    Everything here is a function of (workload, detector, rate, seed) —
    never of wall-clock time — so shipped between shards and merged with
    :func:`repro.obs.metrics.merge_metric_dicts` the result is
    byte-identical for any ``--jobs`` value.  ``max_``-prefixed keys
    take the maximum under merge; the rest sum.
    """
    gc_log = runtime.gc_log
    periods = sum(
        1
        for i, (_, sampling) in enumerate(gc_log)
        if sampling and (i == 0 or not gc_log[i - 1][1])
    )
    return {
        "events": runtime.events,
        "gc_count": len(gc_log),
        "sampling_periods": periods,
        "sync_total": runtime.sync_total,
        "sync_sampled": runtime.sync_sampled,
        "context_switches": runtime.context_switches,
        "scheduler_steps": runtime.scheduler_steps,
        "threads_started": runtime.threads_started,
        "max_live_threads": runtime.max_live_threads,
        "footprint_words_final": detector.footprint_words(),
        "live_vars_final": detector.tracked_variables,
        "max_clock_entries": detector.max_clock_entries(),
    }


def _run_shard(shard: List[Tuple[int, TrialTask]]) -> List[Tuple[int, CoreStats]]:
    """Run one indexed shard in-process (kept for API compatibility;
    the supervisor now dispatches trials individually)."""
    return [(index, run_trial_task(task)) for index, task in shard]


def default_jobs() -> int:
    """Job count from ``REPRO_JOBS`` (default 1: sequential, no pool).

    An unparsable value is *announced*, not swallowed: silently running
    a supposed ``REPRO_JOBS=8x`` campaign sequentially wastes hours.
    """
    raw = os.environ.get("REPRO_JOBS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        print(
            f"repro: ignoring unparsable REPRO_JOBS={raw!r} "
            f"(want an integer); running with 1 job",
            file=sys.stderr,
        )
        return 1


def require_complete(
    tasks: Sequence[TrialTask],
    results: Sequence[Optional[CoreStats]],
    allowed_missing: Iterable[int] = (),
) -> None:
    """Raise unless every non-quarantined task produced a result.

    The error names each dropped trial's (workload, detector, rate,
    seed) — an index alone is useless three hours into a campaign.
    """
    allowed = set(allowed_missing)
    dropped = [
        (i, tasks[i])
        for i, stats in enumerate(results)
        if stats is None and i not in allowed
    ]
    if dropped:
        names = ", ".join(
            f"#{i} (workload={t.workload!r}, detector={t.detector!r}, "
            f"rate={t.rate}, seed={t.seed})"
            for i, t in dropped
        )
        raise RuntimeError(f"matrix dropped {len(dropped)} task(s): {names}")


def run_matrix(
    tasks: Sequence[TrialTask],
    jobs: int = 1,
    shards_per_job: int = 4,
) -> List[CoreStats]:
    """Run the matrix, optionally fanned across supervised workers.

    With ``jobs > 1`` trials run under the crash-isolated supervisor
    (:func:`repro.analysis.supervisor.run_supervised`) in strict mode:
    worker deaths and wedged trials are retried transparently, and a
    trial that cannot complete raises
    :class:`~repro.analysis.supervisor.MatrixIncompleteError` naming the
    dropped (workload, detector, rate, seed) — never a silent gap.
    Results are sewn back in task-index order, so the returned list is
    identical for any ``jobs`` value and any retry/completion schedule,
    which the determinism tests assert.  ``shards_per_job`` is accepted
    for backward compatibility; the supervisor schedules per trial, so
    shard geometry no longer exists to matter.
    """
    del shards_per_job  # superseded by per-trial supervision
    if jobs <= 1 or len(tasks) <= 1:
        results: List[CoreStats] = [run_trial_task(task) for task in tasks]
        return results
    # local import: supervisor imports this module for TrialTask et al.
    from .supervisor import SupervisorConfig, run_supervised

    outcome = run_supervised(
        tasks,
        SupervisorConfig(jobs=jobs, task_timeout=None, quarantine=False),
    )
    require_complete(tasks, outcome.results)
    return [stats for stats in outcome.results if stats is not None]


def matrix_report(
    tasks: Sequence[TrialTask],
    results: Sequence[CoreStats],
    source: str = "matrix",
) -> Dict:
    """One merged race-report document for a whole matrix run.

    Built from each trial's ``race_sigs`` (the deterministic result core
    workers already ship — no flight recorder crosses process
    boundaries) and folded in task order, so like the merged metrics the
    document is byte-identical for any ``--jobs`` value.
    """
    # imported here to keep module import light and cycle-free
    from ..obs.reports import merge_reports, report_from_sigs

    docs = [
        report_from_sigs(
            stats.race_sigs,
            source=source,
            detector=task.detector,
            backend=task.backend,
            rate=task.rate,
            events=stats.events,
        )
        for task, stats in zip(tasks, results)
    ]
    return merge_reports(docs, source=source)


#: baseline preference order for the proportionality audit: the first
#: always-on *precise* detector present in the matrix anchors the
#: denominator (what a full-rate run would have reported)
_AUDIT_BASELINES = ("fasttrack", "djit", "generic", "goldilocks")


def matrix_coverage(
    tasks: Sequence[TrialTask],
    results: Sequence[CoreStats],
    source: str = "matrix",
) -> Dict:
    """One merged coverage document for a whole matrix run.

    Per-trial ``repro/coverage-report/v1`` documents (from the counters
    and race signatures workers already ship) fold into one global
    accounting, extended with two matrix-only sections:

    * ``curve`` — one row per (workload, detector, rate) cell: trials,
      events, dynamic races, and the sync-op-weighted effective rate —
      the live rate-vs-detection curve data behind the paper's
      Figure 3–5 proportionality plots;
    * ``audit`` — for every sampled-detector cell that shares a
      workload with an always-on precise baseline in the same matrix:
      the paper's Figure 3 dynamic detection ratio.  The baseline's
      per-trial dynamic race count ``k`` gives the cell's detection
      opportunities (``k * trials``); PACER's guarantee says each is
      reported with probability ``r``, so the observed fraction's
      Wilson 95% interval should contain the cell's effective rate —
      the same claim :mod:`~repro.analysis.experiments` checks offline
      (``dynamic_detection_rate`` tracking ``mean_effective_rate``).

    Everything derives from ``CoreStats`` in deterministic group order,
    so the document is byte-identical for any ``--jobs`` value and any
    state backend.
    """
    # imported here to keep module import light and cycle-free
    from ..obs.quality import (
        coverage_from_sigs,
        effective_rate_ci,
        merge_coverage,
        sync_op_split,
    )
    from .statistics import wilson_interval

    docs = [
        coverage_from_sigs(
            stats.race_sigs,
            source=source,
            detector=task.detector,
            workload=task.workload,
            nominal_rate=task.rate,
            counters=stats.counters,
            events=stats.events,
        )
        for task, stats in zip(tasks, results)
    ]
    merged = merge_coverage(docs, source=source)

    groups: Dict[Tuple, List[CoreStats]] = {}
    for task, stats in zip(tasks, results):
        key = (task.workload, task.detector, task.rate)
        groups.setdefault(key, []).append(stats)

    curve: List[Dict] = []
    cells: Dict[Tuple, Dict] = {}
    for key in sorted(groups, key=str):
        workload, detector, rate = key
        group = groups[key]
        sampled = 0
        total = 0
        for stats in group:
            s, t = sync_op_split(stats.counters)
            sampled += s
            total += t
        eff, _ = effective_rate_ci(sampled, total)
        row = {
            "workload": workload,
            "detector": detector,
            "rate": rate,
            "trials": len(group),
            "events": sum(s.events for s in group),
            "dynamic_races": sum(s.races for s in group),
            "sync_sampled": sampled,
            "sync_total": total,
            "effective_rate": round(eff, 9),
        }
        curve.append(row)
        cells[key] = row

    audit: List[Dict] = []
    for row in curve:
        if row["rate"] is None:
            continue
        baseline_row = None
        for name in _AUDIT_BASELINES:
            baseline_row = cells.get((row["workload"], name, None))
            if baseline_row is not None:
                break
        if baseline_row is None:
            continue
        trials = row["trials"]
        detected = row["dynamic_races"]
        baseline_races = baseline_row["dynamic_races"]
        # Figure 3's metric: the baseline saw k dynamic races per trial,
        # so this cell had ~k*trials detection opportunities, each
        # reported with probability r — the observed fraction's Wilson
        # interval should contain the effective rate
        occurrences = baseline_races / baseline_row["trials"]
        slots = round(occurrences * trials)
        fraction = None
        ci = None
        consistent = None
        if slots > 0:
            fraction = round(detected / slots, 9)
            lo, hi = wilson_interval(min(detected, slots), slots)
            ci = [round(lo, 9), round(hi, 9)]
            consistent = lo <= row["effective_rate"] <= hi
        audit.append(
            {
                "workload": row["workload"],
                "detector": row["detector"],
                "rate": row["rate"],
                "baseline": baseline_row["detector"],
                "detected": detected,
                "trials": trials,
                "baseline_races": baseline_races,
                "occurrences_per_trial": round(occurrences, 9),
                "expected_occurrences": slots,
                "observed_fraction": fraction,
                "effective_rate": row["effective_rate"],
                "ci95": ci,
                "consistent": consistent,
            }
        )

    merged["curve"] = curve
    merged["audit"] = audit
    return merged


def merge_matrix(
    tasks: Sequence[TrialTask],
    results: Sequence[CoreStats],
    by: Tuple[str, ...] = ("workload", "detector", "rate"),
) -> Dict[Tuple, CoreStats]:
    """Group per-trial results and merge each group's :class:`CoreStats`.

    ``by`` names TrialTask fields; the default folds the seed axis, one
    merged record per (workload, detector, rate) cell.
    """
    groups: Dict[Tuple, List[CoreStats]] = {}
    for task, stats in zip(tasks, results):
        key = tuple(getattr(task, field) for field in by)
        groups.setdefault(key, []).append(stats)
    return {key: CoreStats.merge(group) for key, group in groups.items()}
