"""Checkpoint journal: crash-safe progress for long matrix campaigns.

A full evaluation matrix is hours of CPU; losing it to a power cut (or
an OOM-killed driver) at trial 4990/5000 is not acceptable for a §5
re-run.  ``repro matrix --checkpoint PATH`` therefore journals every
completed trial, and ``--resume`` replays the journal and runs only the
remainder — with the guarantee that the resumed run's merged metrics and
race report are *byte-identical* to an uninterrupted run, which the
deterministic-resume regression pins across both state backends.

Journal format (JSONL, one object per line):

* line 1 — header::

      {"schema": "repro/matrix-checkpoint/v1",
       "fingerprint": "<sha256 of the canonical task list>",
       "tasks": N, "crc": <crc32>}

* each further line — one completed trial::

      {"index": i, "stats": {<CoreStats as JSON>}, "crc": <crc32>}

Every record carries a CRC32 computed over its own canonical JSON text
(sorted keys, compact separators, ``crc`` key removed), so a torn write,
a bit flip, or a hand-edited line is detected per record:
:meth:`CheckpointJournal.resume` accepts a journal whose *final* record
is damaged (the torn tail of an interrupted append — that trial simply
reruns) but rejects corruption anywhere earlier, which can only mean the
file was tampered with or the disk is lying.

Writes go through atomic write-temp-rename (``os.replace``), so readers
— including a resuming run racing a crashed one's leftovers — only ever
observe a complete, well-formed journal.  The fingerprint binds a
journal to the exact task matrix that produced it: resuming with
different workloads/detectors/rates/seeds/scale/backend raises
:class:`CheckpointMismatch` instead of silently mixing experiments.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..core.stats import CoreStats, PerfCounters
from .parallel import TrialTask

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointJournal",
    "matrix_fingerprint",
    "stats_to_doc",
    "stats_from_doc",
]

CHECKPOINT_SCHEMA = "repro/matrix-checkpoint/v1"


class CheckpointError(ValueError):
    """A journal that is structurally unusable (corrupt, wrong schema)."""


class CheckpointMismatch(CheckpointError):
    """A journal written for a different task matrix than the one resuming."""


def matrix_fingerprint(tasks: Sequence[TrialTask]) -> str:
    """SHA-256 over the canonical text of the full task list.

    Covers every field of every task — including ``backend``, which is
    deliberately *excluded* from per-trial seeding: two backends produce
    identical results, but a journal must still only resume the exact
    campaign that wrote it.
    """
    import hashlib

    lines = [
        f"{t.workload}|{t.detector}|"
        f"{'none' if t.rate is None else format(t.rate, '.9f')}|"
        f"{t.seed}|{t.scale:.9f}|{t.backend or ''}"
        for t in tasks
    ]
    return hashlib.sha256("\n".join(lines).encode("ascii")).hexdigest()


# -- CoreStats <-> JSON --------------------------------------------------------

def _sig_to_list(sig) -> list:
    return [list(part) if isinstance(part, (tuple, list)) else part for part in sig]


def _sig_from_list(doc) -> tuple:
    return tuple(tuple(part) if isinstance(part, list) else part for part in doc)


def stats_to_doc(stats: CoreStats) -> Dict[str, object]:
    """Serialize one :class:`CoreStats` to a JSON-ready dict."""
    return {
        "workload": stats.workload,
        "detector": stats.detector,
        "rate": stats.rate,
        "seed": stats.seed,
        "events": stats.events,
        "races": stats.races,
        "race_sigs": [_sig_to_list(sig) for sig in stats.race_sigs],
        "distinct_keys": [_sig_to_list(key) for key in stats.distinct_keys],
        "effective_rate": stats.effective_rate,
        "counters": dict(stats.counters),
        "perf": {
            "events": stats.perf.events,
            "elapsed_ns": stats.perf.elapsed_ns,
            "batches": stats.perf.batches,
            "max_batch": stats.perf.max_batch,
        },
        "metrics": dict(stats.metrics),
    }


def stats_from_doc(doc: Dict[str, object]) -> CoreStats:
    """Rebuild a :class:`CoreStats` from :func:`stats_to_doc` output.

    Round-trips exactly: tuples are restored from JSON lists, so the
    result compares equal to the original (equality already excludes
    wall-clock perf by design).
    """
    perf_doc = doc.get("perf") or {}
    return CoreStats(
        workload=doc["workload"],
        detector=doc["detector"],
        rate=doc["rate"],
        seed=doc["seed"],
        events=doc["events"],
        races=doc["races"],
        race_sigs=tuple(_sig_from_list(sig) for sig in doc["race_sigs"]),
        distinct_keys=tuple(_sig_from_list(key) for key in doc["distinct_keys"]),
        effective_rate=doc["effective_rate"],
        counters=dict(doc["counters"]),
        perf=PerfCounters(
            events=perf_doc.get("events", 0),
            elapsed_ns=perf_doc.get("elapsed_ns", 0),
            batches=perf_doc.get("batches", 0),
            max_batch=perf_doc.get("max_batch", 0),
        ),
        metrics=dict(doc.get("metrics") or {}),
    )


# -- record framing ------------------------------------------------------------

def _canonical(record: Dict[str, object]) -> str:
    body = {k: v for k, v in record.items() if k != "crc"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _seal(record: Dict[str, object]) -> str:
    """Attach the record CRC and render the journal line."""
    text = _canonical(record)
    record = dict(record)
    record["crc"] = zlib.crc32(text.encode("utf-8"))
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _open_record(line: str, lineno: int) -> Dict[str, object]:
    """Parse and CRC-verify one journal line."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"journal line {lineno} is not JSON: {exc}") from None
    if not isinstance(record, dict) or "crc" not in record:
        raise CheckpointError(f"journal line {lineno} has no crc field")
    expected = zlib.crc32(_canonical(record).encode("utf-8"))
    if record["crc"] != expected:
        raise CheckpointError(
            f"journal line {lineno} fails its CRC "
            f"(stored {record['crc']}, computed {expected})"
        )
    return record


class CheckpointJournal:
    """An append-only journal of completed (task index, CoreStats) pairs.

    Create one with :meth:`create` (new campaign) or :meth:`resume`
    (continue an interrupted one); feed every completed trial to
    :meth:`record`.  Each append rewrites the journal to a temp file and
    atomically renames it over the old one, so the on-disk state is
    always a complete prefix of the campaign.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fingerprint: str,
        total: int,
        completed: Optional[Dict[int, CoreStats]] = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.total = total
        self.completed: Dict[int, CoreStats] = dict(completed or {})
        header = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": fingerprint,
            "tasks": total,
        }
        self._lines: List[str] = [_seal(header)]
        for index in sorted(self.completed):
            self._lines.append(
                _seal({"index": index, "stats": stats_to_doc(self.completed[index])})
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def create(cls, path: Union[str, Path], tasks: Sequence[TrialTask]) -> "CheckpointJournal":
        """Start a fresh journal for ``tasks`` (overwrites any old file)."""
        journal = cls(path, matrix_fingerprint(tasks), len(tasks))
        journal._flush()
        return journal

    @classmethod
    def resume(cls, path: Union[str, Path], tasks: Sequence[TrialTask]) -> "CheckpointJournal":
        """Load a journal and verify it belongs to exactly ``tasks``.

        Tolerates a damaged *final* line (a torn append from the
        interrupted run — that trial reruns); any earlier damage raises
        :class:`CheckpointError`.
        """
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
        if not lines:
            raise CheckpointError(f"checkpoint {path} is empty")
        header = _open_record(lines[0], 1)
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {path} has schema {header.get('schema')!r}, "
                f"want {CHECKPOINT_SCHEMA!r}"
            )
        fingerprint = matrix_fingerprint(tasks)
        if header.get("fingerprint") != fingerprint:
            raise CheckpointMismatch(
                f"checkpoint {path} was written for a different task matrix "
                f"(journal fingerprint {str(header.get('fingerprint'))[:12]}…, "
                f"this run {fingerprint[:12]}…); refusing to mix campaigns"
            )
        if header.get("tasks") != len(tasks):
            raise CheckpointMismatch(
                f"checkpoint {path} covers {header.get('tasks')} tasks, "
                f"this run has {len(tasks)}"
            )
        completed: Dict[int, CoreStats] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = _open_record(line, lineno)
            except CheckpointError:
                if lineno == len(lines):
                    break  # torn tail: the interrupted append; rerun that trial
                raise
            index = record.get("index")
            if not isinstance(index, int) or not 0 <= index < len(tasks):
                raise CheckpointError(
                    f"journal line {lineno} names task index {index!r}, "
                    f"outside this matrix of {len(tasks)}"
                )
            completed[index] = stats_from_doc(record["stats"])
        return cls(path, fingerprint, len(tasks), completed)

    # -- appends ---------------------------------------------------------------

    def record(self, index: int, stats: CoreStats) -> None:
        """Journal one completed trial (atomic rewrite + rename)."""
        if index in self.completed:
            return
        self.completed[index] = stats
        self._lines.append(_seal({"index": index, "stats": stats_to_doc(stats)}))
        self._flush()

    def _flush(self) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self._lines))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    @property
    def remaining(self) -> int:
        return self.total - len(self.completed)
