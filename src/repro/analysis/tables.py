"""Plain-text table and series rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["render_table", "render_series", "fmt", "mean", "stdev"]

Cell = Union[str, int, float, None]


def fmt(value: Cell, digits: int = 2) -> str:
    """Format one cell: floats to ``digits`` places, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    digits: int = 2,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[fmt(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[Cell], ys: Sequence[Cell], digits: int = 3
) -> str:
    """Render an (x, y) series as one labelled line per point."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {fmt(x, digits)} -> {fmt(y, digits)}")
    return "\n".join(lines)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5
