"""Crash-isolated shard supervisor for the experiment matrix.

The original runner handed shards to ``Pool.imap_unordered`` and hoped:
one segfaulted worker or one wedged trial aborted the whole campaign,
and a silently dropped task surfaced only as an index in an exception.
This supervisor replaces the bare pool with explicit worker management
built for multi-hour §5 matrices:

* **Crash isolation** — each worker is its own process driven over a
  duplex pipe; a worker that dies (any exit, any signal) costs exactly
  the one in-flight trial, which is retried on a respawned worker.
* **Wall-clock timeouts** — a trial that exceeds ``task_timeout`` gets
  its worker killed and is retried; a hang never stalls the campaign.
* **Bounded retries, deterministic backoff** — a failed trial is
  rescheduled up to ``max_attempts`` times with delay
  ``min(cap, base·2^(attempt-1))``; the backoff schedule is a pure
  function of the attempt number, never of randomness.
* **Poison-task quarantine** — a trial that fails on every attempt is
  excluded from the results, recorded in a structured quarantine
  section (task identity + full failure history), and *never aborts the
  run*.  With ``quarantine=False`` the same condition instead raises
  :class:`MatrixIncompleteError` naming each dropped trial's
  (workload, detector, rate, seed) — the strict mode ``run_matrix``
  uses, where silent loss must be loud.
* **Result integrity** — every completed trial is checked against its
  task's identity (workload/detector/rate/seed); a corrupted result is
  treated as one more failure and retried, not merged.

Because every trial is a pure function of its :class:`TrialTask`,
retried and reordered completions reassemble — by task index — into the
*exact same* ``CoreStats`` list a failure-free sequential run produces;
the determinism regressions extend the existing ``--jobs`` pins to
crash/hang/retry schedules via the deterministic fault injector
(:mod:`repro.util.faults`).

Retry/timeout/quarantine accounting lands in a
:class:`~repro.obs.metrics.MetricsRegistry` (``supervisor_*`` series)
carried on the :class:`SupervisorOutcome`, and surfaces in the
quarantine report document (``repro/quarantine/v1``).
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.stats import CoreStats
from ..obs.metrics import MetricsRegistry
from ..util.faults import FaultPlan, execute_fault
from .parallel import TrialTask, run_trial_task, task_seed

__all__ = [
    "QUARANTINE_SCHEMA",
    "FailureRecord",
    "MatrixIncompleteError",
    "PipeWorker",
    "QuarantineRecord",
    "SupervisorConfig",
    "SupervisorOutcome",
    "backoff_delay",
    "run_supervised",
]

QUARANTINE_SCHEMA = "repro/quarantine/v1"

#: failure kinds a supervisor can observe (and a fault plan can inject)
FAILURE_KINDS = ("crash", "timeout", "raise", "corrupt-result")


class MatrixIncompleteError(RuntimeError):
    """Strict mode: tasks were dropped after exhausting their retries."""

    def __init__(self, records: Sequence["QuarantineRecord"]) -> None:
        self.records = list(records)
        names = ", ".join(
            f"(workload={r.workload!r}, detector={r.detector!r}, "
            f"rate={r.rate}, seed={r.seed})"
            for r in self.records
        )
        super().__init__(
            f"matrix dropped {len(self.records)} task(s) after retries: {names}"
        )


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for one supervised run; defaults suit CI-scale matrices."""

    jobs: int = 1
    #: per-trial wall-clock budget in seconds; None disables the timeout
    task_timeout: Optional[float] = 300.0
    #: total tries per task (first run + retries)
    max_attempts: int = 3
    #: deterministic backoff: min(cap, base * 2**(attempt-1)) seconds
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: True: exhausted tasks are quarantined and reported; False: they
    #: raise :class:`MatrixIncompleteError` naming each dropped trial
    quarantine: bool = True
    #: deterministic fault plan shipped to every worker (tests/chaos CI)
    fault_plan: Optional[FaultPlan] = None


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Delay before retry number ``attempt+1`` — pure, no jitter."""
    if base <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (attempt - 1)))


@dataclass(frozen=True)
class FailureRecord:
    """One observed failure of one attempt."""

    kind: str  # one of FAILURE_KINDS
    attempt: int
    detail: str
    exitcode: Optional[int] = None

    def to_doc(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "kind": self.kind,
            "attempt": self.attempt,
            "detail": self.detail,
        }
        if self.exitcode is not None:
            doc["exitcode"] = self.exitcode
        return doc


@dataclass(frozen=True)
class QuarantineRecord:
    """A poison task: its identity plus the full failure history."""

    index: int
    workload: str
    detector: str
    rate: Optional[float]
    seed: int
    attempts: int
    failures: Tuple[FailureRecord, ...]

    @classmethod
    def for_task(
        cls, index: int, task: TrialTask, failures: Sequence[FailureRecord]
    ) -> "QuarantineRecord":
        return cls(
            index=index,
            workload=task.workload,
            detector=task.detector,
            rate=task.rate,
            seed=task.seed,
            attempts=len(failures),
            failures=tuple(failures),
        )

    def to_doc(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "workload": self.workload,
            "detector": self.detector,
            "rate": self.rate,
            "seed": self.seed,
            "attempts": self.attempts,
            "failures": [f.to_doc() for f in self.failures],
        }


@dataclass
class SupervisorOutcome:
    """Everything a supervised run produced, surviving and not."""

    #: per-task results in task order; None exactly at quarantined indices
    results: List[Optional[CoreStats]]
    quarantine: List[QuarantineRecord]
    #: supervisor_* retry/timeout/quarantine counters
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r is not None)

    def surviving_pairs(
        self, tasks: Sequence[TrialTask]
    ) -> List[Tuple[TrialTask, CoreStats]]:
        """(task, stats) for every completed trial, in task order."""
        return [
            (task, stats)
            for task, stats in zip(tasks, self.results)
            if stats is not None
        ]

    def quarantine_doc(self) -> Dict[str, object]:
        """The structured quarantine section (``repro/quarantine/v1``)."""
        return {
            "schema": QUARANTINE_SCHEMA,
            "total_tasks": len(self.results),
            "completed": self.completed,
            "quarantined": [
                r.to_doc() for r in sorted(self.quarantine, key=lambda r: r.index)
            ],
            "counters": self.registry.snapshot()["counters"],
        }


# -- worker side ---------------------------------------------------------------


def _run_with_faults(
    index: int, attempt: int, task: TrialTask, plan: Optional[FaultPlan]
) -> CoreStats:
    """One trial, with the fault plan consulted first.

    ``crash``/``hang``/``raise`` faults actuate *before* the trial (the
    work is lost, exactly like a real mid-trial death as far as the
    supervisor can see); ``corrupt`` runs the trial then damages the
    result's identity so the supervisor's integrity check must catch it.
    """
    rule = None
    if plan is not None:
        rule = plan.match(index, task_seed(task), attempt)
    if rule is not None and rule.kind != "corrupt":
        execute_fault(rule)
    stats = run_trial_task(task)
    if rule is not None and rule.kind == "corrupt":
        stats = replace(stats, seed=stats.seed ^ 0x5EED)
    return stats


def _worker_main(conn, plan: Optional[FaultPlan]) -> None:
    """Worker loop: run trials off the pipe until told to stop."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            return
        if msg[0] == "stop":
            return
        _, index, attempt, task = msg
        try:
            stats = _run_with_faults(index, attempt, task, plan)
        except Exception as exc:
            conn.send(("fail", index, attempt, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", index, attempt, stats))


# -- parent side ---------------------------------------------------------------


class PipeWorker:
    """One long-lived worker process driven over a duplex pipe.

    The crash-isolation primitive shared by the supervisor and the
    telemetry shard tier (:mod:`repro.net.shard`): a daemon process
    running ``main(conn, *args)``, where ``main`` loops on ``conn.recv()``
    until it receives ``("stop",)``.  The parent talks over ``conn`` and
    owns the lifecycle — :meth:`stop` for a graceful shutdown,
    :meth:`kill` when the worker is wedged or mid-task, :meth:`exitcode`
    to learn how a dead worker died.
    """

    def __init__(self, ctx, main: Callable, args: Tuple = ()) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=main, args=(child_conn,) + tuple(args), daemon=True
        )
        self.process.start()
        child_conn.close()

    def alive(self) -> bool:
        return self.process.is_alive()

    def exitcode(self) -> Optional[int]:
        self.process.join(timeout=5.0)
        return self.process.exitcode

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()


class _Worker(PipeWorker):
    """A :class:`PipeWorker` running trials, plus in-flight bookkeeping."""

    def __init__(self, ctx, plan: Optional[FaultPlan]) -> None:
        super().__init__(ctx, _worker_main, (plan,))
        #: (index, attempt, deadline) while a trial is in flight
        self.busy: Optional[Tuple[int, int, float]] = None

    def dispatch(
        self, index: int, attempt: int, task: TrialTask, timeout: Optional[float]
    ) -> None:
        deadline = float("inf") if not timeout else time.monotonic() + timeout
        self.conn.send(("run", index, attempt, task))
        self.busy = (index, attempt, deadline)


def _identity_ok(task: TrialTask, stats: CoreStats) -> bool:
    return (
        stats.workload == task.workload
        and stats.detector == task.detector
        and stats.rate == task.rate
        and stats.seed == task.seed
    )


def run_supervised(
    tasks: Sequence[TrialTask],
    config: SupervisorConfig = SupervisorConfig(),
    completed: Optional[Dict[int, CoreStats]] = None,
    on_result: Optional[Callable[[int, CoreStats], None]] = None,
) -> SupervisorOutcome:
    """Run the matrix under full supervision.

    ``completed`` pre-fills results for task indices a checkpoint
    journal already holds (those trials are never scheduled);
    ``on_result`` fires once per *newly* completed trial, in completion
    order — the checkpoint journal appends from it.
    """
    results: List[Optional[CoreStats]] = [None] * len(tasks)
    if completed:
        for index, stats in completed.items():
            if not 0 <= index < len(tasks):
                raise ValueError(f"completed index {index} outside matrix")
            results[index] = stats
    registry = MetricsRegistry()
    failures: Dict[int, List[FailureRecord]] = {}
    quarantine: List[QuarantineRecord] = []

    # (ready_time, index, attempt): a min-heap doubles as the backoff queue
    pending: List[Tuple[float, int, int]] = [
        (0.0, index, 1) for index in range(len(tasks)) if results[index] is None
    ]
    heapq.heapify(pending)
    outcome = SupervisorOutcome(results, quarantine, registry)
    if not pending:
        return outcome

    def note_failure(
        index: int, attempt: int, kind: str, detail: str, exitcode: Optional[int] = None
    ) -> None:
        failures.setdefault(index, []).append(
            FailureRecord(kind, attempt, detail, exitcode)
        )
        registry.counter("supervisor_failures_total", kind=kind).inc()
        if kind == "timeout":
            registry.counter("supervisor_timeouts_total").inc()
        if attempt < config.max_attempts:
            registry.counter("supervisor_retries_total").inc()
            delay = backoff_delay(attempt, config.backoff_base, config.backoff_cap)
            heapq.heappush(pending, (time.monotonic() + delay, index, attempt + 1))
        else:
            registry.counter("supervisor_quarantined_total").inc()
            quarantine.append(
                QuarantineRecord.for_task(index, tasks[index], failures[index])
            )

    ctx = get_context("spawn" if os.name == "nt" else "fork")
    n_workers = max(1, min(config.jobs, len(pending)))
    workers: List[_Worker] = [
        _Worker(ctx, config.fault_plan) for _ in range(n_workers)
    ]

    from multiprocessing.connection import wait as connection_wait

    try:
        while pending or any(w.busy is not None for w in workers):
            now = time.monotonic()
            # hand ready tasks to idle workers
            for slot, worker in enumerate(workers):
                if worker.busy is not None or not pending:
                    continue
                if pending[0][0] > now:
                    break  # head still backing off; nothing else is readier
                _, index, attempt = heapq.heappop(pending)
                try:
                    worker.dispatch(index, attempt, tasks[index], config.task_timeout)
                except (BrokenPipeError, OSError):
                    # worker died while idle (not this task's fault):
                    # respawn and requeue without charging an attempt
                    registry.counter("supervisor_worker_restarts_total").inc()
                    worker.kill()
                    workers[slot] = _Worker(ctx, config.fault_plan)
                    heapq.heappush(pending, (now, index, attempt))

            busy = [w for w in workers if w.busy is not None]
            if not busy:
                if pending:
                    time.sleep(max(0.0, min(0.5, pending[0][0] - time.monotonic())))
                continue

            # wake on the first completion, death, or deadline
            next_deadline = min(w.busy[2] for w in busy)
            wait_for = max(0.01, min(1.0, next_deadline - time.monotonic()))
            ready = connection_wait([w.conn for w in busy], timeout=wait_for)

            for slot, worker in enumerate(workers):
                if worker.busy is None:
                    continue
                index, attempt, deadline = worker.busy
                if worker.conn in ready:
                    try:
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        # worker process died mid-trial
                        exitcode = worker.exitcode()
                        note_failure(
                            index, attempt, "crash",
                            f"worker exited with code {exitcode} while running "
                            f"task {index} (attempt {attempt})",
                            exitcode=exitcode,
                        )
                        registry.counter("supervisor_worker_restarts_total").inc()
                        worker.kill()
                        workers[slot] = _Worker(ctx, config.fault_plan)
                        continue
                    kind, msg_index, msg_attempt = msg[0], msg[1], msg[2]
                    if (msg_index, msg_attempt) != (index, attempt):
                        # stale reply from before a kill; should be impossible
                        continue  # pragma: no cover
                    worker.busy = None
                    if kind == "ok":
                        stats = msg[3]
                        if not _identity_ok(tasks[index], stats):
                            note_failure(
                                index, attempt, "corrupt-result",
                                f"result identity mismatch: got "
                                f"({stats.workload!r}, {stats.detector!r}, "
                                f"{stats.rate}, {stats.seed}), want "
                                f"({tasks[index].workload!r}, "
                                f"{tasks[index].detector!r}, "
                                f"{tasks[index].rate}, {tasks[index].seed})",
                            )
                        else:
                            results[index] = stats
                            registry.counter("supervisor_tasks_completed_total").inc()
                            if on_result is not None:
                                on_result(index, stats)
                    else:  # ("fail", index, attempt, detail)
                        note_failure(index, attempt, "raise", msg[3])
                elif time.monotonic() > deadline:
                    note_failure(
                        index, attempt, "timeout",
                        f"task {index} exceeded its {config.task_timeout}s "
                        f"wall-clock budget (attempt {attempt})",
                    )
                    registry.counter("supervisor_worker_restarts_total").inc()
                    worker.kill()
                    workers[slot] = _Worker(ctx, config.fault_plan)
    finally:
        for worker in workers:
            if worker.busy is not None:
                worker.kill()
            else:
                worker.stop()

    if not config.quarantine and quarantine:
        raise MatrixIncompleteError(sorted(quarantine, key=lambda r: r.index))
    return outcome
