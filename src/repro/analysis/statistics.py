"""Statistical helpers for detection-rate experiments.

The paper's accuracy claims are statistical ("detection rate equals the
sampling rate"); with scaled-down trial counts, interval estimates say
whether a measured rate is *consistent with* proportionality rather than
just eyeballing means.  Pure-Python implementations (no scipy needed at
runtime, though the results are cross-checked against scipy in the
tests when it is available).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = [
    "wilson_interval",
    "binomial_ci_contains",
    "mean_confidence_interval",
    "proportionality_consistent",
]

#: two-sided z for 95% confidence
Z95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved for small trial counts and extreme proportions (unlike
    the normal approximation), which is exactly the regime detection-rate
    experiments live in.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    lo = max(0.0, centre - half)
    hi = min(1.0, centre + half)
    # at the boundaries the interval endpoints are exactly 0 and 1;
    # ``centre - half`` can stray by an ulp and break endpoint checks
    # like "is rate 0 consistent with 0 detections"
    if successes == 0:
        lo = 0.0
    if successes == trials:
        hi = 1.0
    return (lo, hi)


def binomial_ci_contains(
    successes: int, trials: int, rate: float, z: float = Z95
) -> bool:
    """True if ``rate`` lies inside the Wilson interval of the sample."""
    lo, hi = wilson_interval(successes, trials, z)
    return lo <= rate <= hi


def mean_confidence_interval(
    values: Sequence[float], z: float = Z95
) -> Tuple[float, float, float]:
    """(mean, lo, hi): a z-based confidence interval for a sample mean."""
    values = list(values)
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mu = sum(values) / n
    if n == 1:
        return (mu, mu, mu)
    var = sum((v - mu) ** 2 for v in values) / (n - 1)
    half = z * math.sqrt(var / n)
    return (mu, mu - half, mu + half)


def proportionality_consistent(
    detections: int,
    trials: int,
    effective_rate: float,
    occurrences_per_trial: float = 1.0,
    z: float = Z95,
) -> bool:
    """Is a per-race detection count consistent with PACER's guarantee?

    A race occurring ``occurrences_per_trial`` times per run and sampled
    at ``effective_rate`` should be detected per trial with probability
    ``1 - (1 - r)^k``; this checks the observed detection frequency's
    Wilson interval against that prediction.
    """
    predicted = 1.0 - (1.0 - effective_rate) ** max(occurrences_per_trial, 0.0)
    lo, hi = wilson_interval(detections, trials, z)
    return lo <= predicted <= hi
