"""Experiment drivers, metrics, and table rendering for the evaluation."""

from .experiments import (
    DetectionExperiment,
    RateAccuracy,
    TrialResult,
    race_id_of,
    run_trial,
)
from .statistics import (
    binomial_ci_contains,
    mean_confidence_interval,
    proportionality_consistent,
    wilson_interval,
)
from .tables import fmt, mean, render_series, render_table, stdev

__all__ = [
    "DetectionExperiment",
    "RateAccuracy",
    "TrialResult",
    "race_id_of",
    "run_trial",
    "render_table",
    "render_series",
    "fmt",
    "mean",
    "stdev",
    "wilson_interval",
    "binomial_ci_contains",
    "mean_confidence_interval",
    "proportionality_consistent",
]
