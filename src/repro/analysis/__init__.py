"""Experiment drivers, metrics, and table rendering for the evaluation."""

from .experiments import (
    DetectionExperiment,
    RateAccuracy,
    TrialResult,
    race_id_of,
    run_trial,
)
from .checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatch,
    matrix_fingerprint,
)
from .parallel import (
    DETECTOR_FACTORIES,
    TrialTask,
    default_jobs,
    expand_matrix,
    merge_matrix,
    require_complete,
    run_matrix,
    run_trial_task,
    task_seed,
)
from .supervisor import (
    MatrixIncompleteError,
    SupervisorConfig,
    SupervisorOutcome,
    run_supervised,
)
from .statistics import (
    binomial_ci_contains,
    mean_confidence_interval,
    proportionality_consistent,
    wilson_interval,
)
from .tables import fmt, mean, render_series, render_table, stdev

__all__ = [
    "DetectionExperiment",
    "RateAccuracy",
    "TrialResult",
    "race_id_of",
    "run_trial",
    "TrialTask",
    "DETECTOR_FACTORIES",
    "task_seed",
    "expand_matrix",
    "run_trial_task",
    "run_matrix",
    "merge_matrix",
    "default_jobs",
    "require_complete",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatch",
    "matrix_fingerprint",
    "MatrixIncompleteError",
    "SupervisorConfig",
    "SupervisorOutcome",
    "run_supervised",
    "render_table",
    "render_series",
    "fmt",
    "mean",
    "stdev",
    "wilson_interval",
    "binomial_ci_contains",
    "mean_confidence_interval",
    "proportionality_consistent",
]
