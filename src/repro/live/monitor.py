"""Online race detection for real Python ``threading`` programs.

The GIL serializes Python bytecodes, so true memory races are rare in
pure Python — but *logical* races (unsynchronized check-then-act,
read-modify-write) are real bugs, and the happens-before analysis that
finds them is identical.  This module instruments real threads, locks,
and shared variables and feeds any :class:`~repro.detectors.base.Detector`
(PACER included) online.

Usage::

    from repro.live import RaceMonitor

    mon = RaceMonitor()                 # FASTTRACK by default
    counter = mon.shared("counter", 0)
    lock = mon.lock("counter_lock")

    def bump():
        with lock:                      # comment this out -> race reported
            counter.set(counter.get() + 1)

    threads = [mon.thread(bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print(mon.detector.races)

Access *sites* default to the caller's ``file:line``, so race reports
point at real source locations.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from ..detectors.base import Detector, SiteId
from ..detectors.fasttrack import FastTrackDetector
from ..obs.quality import build_coverage
from ..obs.reports import build_report, render_report_table
from ..obs.provenance import SyncIndex
from ..trace.events import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    SBEGIN,
    SEND,
    VOL_READ,
    VOL_WRITE,
    WRITE,
)

__all__ = ["RaceMonitor", "SharedVar", "TrackedLock", "TrackedThread"]


class RaceMonitor:
    """Bridges real ``threading`` activity into a race detector.

    All detector calls are serialized by an internal mutex, so the
    analysis itself never races.  Thread ids, variable ids, and lock ids
    are interned; access *sites* are real ``file:line`` strings (the
    :class:`~repro.detectors.base.Race` site type admits both ints and
    strings), so race reports point straight at source locations.

    Pass ``observer=RunObserver(...)`` to plug a live run into the same
    observability stack as offline runs: :meth:`finalize` then emits the
    standard ``detector_runs``/``events``/``races`` metrics, and an
    observer carrying a :class:`~repro.obs.provenance.FlightRecorder`
    captures per-race context that :meth:`race_report` turns into the
    structured ``repro/race-report/v1`` document.
    """

    def __init__(
        self,
        detector: Optional[Detector] = None,
        observer=None,
    ) -> None:
        self.detector = detector if detector is not None else FastTrackDetector()
        self.observer = observer
        if observer is not None:
            observer.attach(self.detector)
        self._mutex = threading.Lock()
        self._tids: Dict[int, int] = {}  # threading ident -> detector tid
        self._next_tid = 0
        self._vars: Dict[str, int] = {}
        self._locks: Dict[str, int] = {}
        self._vols: Dict[str, int] = {}
        self._sites: Dict[Tuple[str, int], str] = {}
        self._site_names: Dict[str, str] = {}

    # -- interning ----------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._mutex:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._next_tid
                self._next_tid += 1
                self._tids[ident] = tid
            return tid

    def _intern(self, table: Dict[str, int], name: str, base: int) -> int:
        with self._mutex:
            if name not in table:
                table[name] = base + len(table)
            return table[name]

    def _site(self, depth: int = 2) -> str:
        frame = sys._getframe(depth)
        key = (frame.f_code.co_filename, frame.f_lineno)
        with self._mutex:
            site = self._sites.get(key)
            if site is None:
                site = f"{key[0]}:{key[1]}"
                self._sites[key] = site
                self._site_names[site] = site
            return site

    def site_name(self, site: SiteId) -> str:
        """Source location (``file:line``) for a reported site."""
        if isinstance(site, str):
            return site
        return self._site_names.get(site, f"site#{site}")

    # -- factories ------------------------------------------------------------

    def shared(self, name: str, initial: Any = None) -> "SharedVar":
        """A tracked shared variable (reads/writes are analyzed)."""
        return SharedVar(self, self._intern(self._vars, name, 0), initial)

    def lock(self, name: str) -> "TrackedLock":
        """A tracked reentrant lock (acquire/release create HB edges)."""
        return TrackedLock(self, self._intern(self._locks, name, 100_000))

    def volatile(self, name: str, initial: Any = None) -> "VolatileVar":
        """A tracked volatile variable (java-style release/acquire)."""
        return VolatileVar(self, self._intern(self._vols, name, 200_000), initial)

    def thread(
        self, target: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> "TrackedThread":
        """A tracked thread (start/join create fork/join HB edges)."""
        return TrackedThread(self, target, args, kwargs)

    # -- event entry points (serialized) -----------------------------------------

    def _pre_event(self, kind: str, tid: int, target: int, site: SiteId) -> int:
        """Per-event bookkeeping before dispatch (mutex held).

        The typed detector methods don't advance ``_events_seen`` on
        their own (offline, ``apply`` does it), so the monitor advances
        the virtual clock here — live races then carry real trace
        indices — and mirrors the event into the observer's flight
        recorder, exactly like the offline recorded path.  Returns the
        race count before dispatch, for :meth:`_post_event`.
        """
        det = self.detector
        obs = self.observer
        if obs is not None:
            rec = getattr(obs, "recorder", None)
            if rec is not None:
                rec.record(det._events_seen, kind, tid, target, site)
        det._events_seen += 1
        return len(det.races)

    def _post_event(self, known: int) -> None:
        """Fire ``on_race`` for any race the dispatch just appended."""
        obs = self.observer
        if obs is None:
            return
        det = self.detector
        races = det.races
        if len(races) > known:
            for race in races[known:]:
                obs.on_race(det, race)

    def on_read(self, var: int, site: SiteId) -> None:
        tid = self._tid()
        with self._mutex:
            known = self._pre_event(READ, tid, var, site)
            self.detector.read(tid, var, site)
            self._post_event(known)

    def on_write(self, var: int, site: SiteId) -> None:
        tid = self._tid()
        with self._mutex:
            known = self._pre_event(WRITE, tid, var, site)
            self.detector.write(tid, var, site)
            self._post_event(known)

    def on_acquire(self, lock: int) -> None:
        tid = self._tid()
        with self._mutex:
            self._pre_event(ACQUIRE, tid, lock, 0)
            self.detector.acquire(tid, lock)

    def on_release(self, lock: int) -> None:
        tid = self._tid()
        with self._mutex:
            self._pre_event(RELEASE, tid, lock, 0)
            self.detector.release(tid, lock)

    def on_fork(self, child_ident: int) -> None:
        parent = self._tid()
        with self._mutex:
            child = self._tids.get(child_ident)
            if child is None:
                child = self._next_tid
                self._next_tid += 1
                self._tids[child_ident] = child
            self._pre_event(FORK, parent, child, 0)
            self.detector.fork(parent, child)

    def on_join(self, child_ident: int) -> None:
        tid = self._tid()
        with self._mutex:
            child = self._tids.get(child_ident)
            if child is not None:
                self._pre_event(JOIN, tid, child, 0)
                self.detector.join(tid, child)

    def on_vol_read(self, vol: int) -> None:
        tid = self._tid()
        with self._mutex:
            self._pre_event(VOL_READ, tid, vol, 0)
            self.detector.vol_read(tid, vol)

    def on_vol_write(self, vol: int) -> None:
        tid = self._tid()
        with self._mutex:
            self._pre_event(VOL_WRITE, tid, vol, 0)
            self.detector.vol_write(tid, vol)

    # -- reporting ----------------------------------------------------------

    def finalize(self) -> None:
        """Flush the observer: emits the standard end-of-run metrics
        (``detector_runs``, ``events``, ``races``) just like an offline
        :meth:`~repro.detectors.base.Detector.run`.  Idempotent; no-op
        without an observer."""
        obs = self.observer
        if obs is None:
            return
        with self._mutex:
            obs.finalize(self.detector, self.detector._events_seen)

    def race_report(self) -> Dict[str, Any]:
        """The live run as a structured ``repro/race-report/v1`` document.

        Witnesses come from the observer's flight recorder when one is
        attached (``source: "recorder"`` — bounded, like online tools),
        and per-race event context from the contexts captured at report
        time.
        """
        det = self.detector
        obs = self.observer
        sync = None
        contexts = None
        if obs is not None:
            rec = getattr(obs, "recorder", None)
            if rec is not None:
                sync = SyncIndex.from_recorder(rec)
            contexts = obs.race_contexts or None
        with self._mutex:
            return build_report(
                det.races,
                source="live",
                detector=det.name,
                backend=det.backend_name,
                events=det._events_seen,
                contexts=contexts,
                sync=sync,
                site_name=self.site_name,
            )

    def describe_races(self) -> str:
        """Human-readable race report with source locations."""
        return render_report_table(self.race_report())

    def coverage_report(
        self, nominal_rate: Optional[float] = None
    ) -> Dict[str, Any]:
        """The live run's detection-quality accounting as one
        ``repro/coverage-report/v1`` document.

        Sampling marks come from the observer's square wave (fed by
        ``begin_sampling``/``end_sampling``, e.g. via a
        :class:`SamplingDriver`), falling back to the flight recorder's
        marks; counters and races come straight off the detector —
        exactly the evidence offline analysis uses, so live and offline
        coverage agree on the same event sequence.  ``nominal_rate`` is
        the configured sampling rate as a fraction (a driver's
        ``rate``), or None when the run has no dial.
        """
        det = self.detector
        obs = self.observer
        marks = []
        if obs is not None:
            marks = obs.sampling_marks
            if not marks:
                rec = getattr(obs, "recorder", None)
                if rec is not None:
                    marks = rec.sampling_marks
        with self._mutex:
            return build_coverage(
                source="live",
                detector=det.name,
                nominal_rate=nominal_rate,
                counters=det.counters.snapshot(),
                marks=marks,
                races=det.races,
                events=det._events_seen,
            )


class SharedVar:
    """A tracked shared variable; ``get``/``set`` feed the detector."""

    __slots__ = ("_monitor", "_var", "_value")

    def __init__(self, monitor: RaceMonitor, var: int, initial: Any) -> None:
        self._monitor = monitor
        self._var = var
        self._value = initial

    def get(self) -> Any:
        self._monitor.on_read(self._var, self._monitor._site())
        return self._value

    def set(self, value: Any) -> None:
        self._monitor.on_write(self._var, self._monitor._site())
        self._value = value


class VolatileVar:
    """A tracked volatile: reads acquire, writes release (JMM-style)."""

    __slots__ = ("_monitor", "_vol", "_value")

    def __init__(self, monitor: RaceMonitor, vol: int, initial: Any) -> None:
        self._monitor = monitor
        self._vol = vol
        self._value = initial

    def get(self) -> Any:
        self._monitor.on_vol_read(self._vol)
        return self._value

    def set(self, value: Any) -> None:
        self._value = value
        self._monitor.on_vol_write(self._vol)


class TrackedLock:
    """A reentrant lock whose acquire/release create HB edges."""

    def __init__(self, monitor: RaceMonitor, lock_id: int) -> None:
        self._monitor = monitor
        self._id = lock_id
        self._lock = threading.RLock()

    def acquire(self) -> None:
        self._lock.acquire()
        self._monitor.on_acquire(self._id)

    def release(self) -> None:
        self._monitor.on_release(self._id)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class TrackedThread:
    """A thread wrapper emitting fork/join happens-before edges."""

    def __init__(
        self,
        monitor: RaceMonitor,
        target: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> None:
        self._monitor = monitor
        self._started = threading.Event()
        self._forked = threading.Event()
        self._ident: Optional[int] = None

        def runner() -> None:
            self._ident = threading.get_ident()
            self._started.set()
            # Wait for the parent to record the fork edge, so no child
            # access can be analyzed before the happens-before edge exists.
            self._forked.wait()
            target(*args, **kwargs)

        self._thread = threading.Thread(target=runner)

    def start(self) -> None:
        self._thread.start()
        self._started.wait()
        assert self._ident is not None
        self._monitor.on_fork(self._ident)
        self._forked.set()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)
        if self._ident is not None and not self._thread.is_alive():
            self._monitor.on_join(self._ident)

    def is_alive(self) -> bool:
        return self._thread.is_alive()


class SamplingDriver:
    """Drives PACER's global sampling periods for live programs.

    The simulator toggles sampling at GC boundaries; real Python has no
    GC-boundary hook with the right granularity, so this driver uses a
    wall-clock period (the paper's mechanism is "toggle at periodic
    safepoints with probability r" — the clock stands in for the
    safepoint).  Start it around the threaded section::

        mon = RaceMonitor(detector=PacerDetector())
        driver = SamplingDriver(mon, rate=0.03, period_s=0.005)
        driver.start()
        ...run threads...
        driver.stop()

    All toggles go through the monitor's mutex, so they serialize with
    the analysis exactly like the paper's global sampling flag.
    """

    def __init__(
        self,
        monitor: RaceMonitor,
        rate: float,
        period_s: float = 0.005,
        rng: Optional[Any] = None,
    ) -> None:
        import random as _random

        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self._monitor = monitor
        self.rate = rate
        self.period_s = period_s
        self._rng = rng or _random.Random()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.periods = 0
        self.sampled_periods = 0

    def _toggle_once(self) -> None:
        detector = self._monitor.detector
        sample = self._rng.random() < self.rate
        self.periods += 1
        with self._monitor._mutex:
            self._mark(sample)
            if sample:
                self.sampled_periods += 1
                detector.begin_sampling()
            else:
                detector.end_sampling()

    def _mark(self, entering: bool) -> None:
        """Mirror the sampling transition into the flight recorder (mutex
        held), so live witnesses carry sampling attribution too."""
        obs = self._monitor.observer
        if obs is not None:
            rec = getattr(obs, "recorder", None)
            if rec is not None:
                rec.record(
                    self._monitor.detector._events_seen,
                    SBEGIN if entering else SEND,
                    0,
                    0,
                    0,
                )

    def _loop(self) -> None:
        while not self._stop.wait(self.period_s):
            self._toggle_once()

    def start(self) -> "SamplingDriver":
        # decide the first period immediately, so short-lived threaded
        # sections still fall under the intended sampling regime
        self._toggle_once()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        with self._monitor._mutex:
            self._mark(False)
            self._monitor.detector.end_sampling()

    def __enter__(self) -> "SamplingDriver":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
