"""Online race detection for real Python ``threading`` programs.

The GIL serializes Python bytecodes, so true memory races are rare in
pure Python — but *logical* races (unsynchronized check-then-act,
read-modify-write) are real bugs, and the happens-before analysis that
finds them is identical.  This module instruments real threads, locks,
and shared variables and feeds any :class:`~repro.detectors.base.Detector`
(PACER included) online.

Usage::

    from repro.live import RaceMonitor

    mon = RaceMonitor()                 # FASTTRACK by default
    counter = mon.shared("counter", 0)
    lock = mon.lock("counter_lock")

    def bump():
        with lock:                      # comment this out -> race reported
            counter.set(counter.get() + 1)

    threads = [mon.thread(bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print(mon.detector.races)

Access *sites* default to the caller's ``file:line``, so race reports
point at real source locations.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from ..detectors.base import Detector
from ..detectors.fasttrack import FastTrackDetector

__all__ = ["RaceMonitor", "SharedVar", "TrackedLock", "TrackedThread"]


class RaceMonitor:
    """Bridges real ``threading`` activity into a race detector.

    All detector calls are serialized by an internal mutex, so the
    analysis itself never races.  Thread ids, variable ids, lock ids,
    and site ids are interned; :meth:`site_name` maps a site id back to
    ``file:line`` for reporting.
    """

    def __init__(self, detector: Optional[Detector] = None) -> None:
        self.detector = detector if detector is not None else FastTrackDetector()
        self._mutex = threading.Lock()
        self._tids: Dict[int, int] = {}  # threading ident -> detector tid
        self._next_tid = 0
        self._vars: Dict[str, int] = {}
        self._locks: Dict[str, int] = {}
        self._vols: Dict[str, int] = {}
        self._sites: Dict[Tuple[str, int], int] = {}
        self._site_names: Dict[int, str] = {}

    # -- interning ----------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._mutex:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._next_tid
                self._next_tid += 1
                self._tids[ident] = tid
            return tid

    def _intern(self, table: Dict[str, int], name: str, base: int) -> int:
        with self._mutex:
            if name not in table:
                table[name] = base + len(table)
            return table[name]

    def _site(self, depth: int = 2) -> int:
        frame = sys._getframe(depth)
        key = (frame.f_code.co_filename, frame.f_lineno)
        with self._mutex:
            site = self._sites.get(key)
            if site is None:
                site = 1 + len(self._sites)
                self._sites[key] = site
                self._site_names[site] = f"{key[0]}:{key[1]}"
            return site

    def site_name(self, site: int) -> str:
        """Source location (``file:line``) for a reported site id."""
        return self._site_names.get(site, f"site#{site}")

    # -- factories ------------------------------------------------------------

    def shared(self, name: str, initial: Any = None) -> "SharedVar":
        """A tracked shared variable (reads/writes are analyzed)."""
        return SharedVar(self, self._intern(self._vars, name, 0), initial)

    def lock(self, name: str) -> "TrackedLock":
        """A tracked reentrant lock (acquire/release create HB edges)."""
        return TrackedLock(self, self._intern(self._locks, name, 100_000))

    def volatile(self, name: str, initial: Any = None) -> "VolatileVar":
        """A tracked volatile variable (java-style release/acquire)."""
        return VolatileVar(self, self._intern(self._vols, name, 200_000), initial)

    def thread(
        self, target: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> "TrackedThread":
        """A tracked thread (start/join create fork/join HB edges)."""
        return TrackedThread(self, target, args, kwargs)

    # -- event entry points (serialized) -----------------------------------------

    def on_read(self, var: int, site: int) -> None:
        tid = self._tid()
        with self._mutex:
            self.detector.read(tid, var, site)

    def on_write(self, var: int, site: int) -> None:
        tid = self._tid()
        with self._mutex:
            self.detector.write(tid, var, site)

    def on_acquire(self, lock: int) -> None:
        tid = self._tid()
        with self._mutex:
            self.detector.acquire(tid, lock)

    def on_release(self, lock: int) -> None:
        tid = self._tid()
        with self._mutex:
            self.detector.release(tid, lock)

    def on_fork(self, child_ident: int) -> None:
        parent = self._tid()
        with self._mutex:
            child = self._tids.get(child_ident)
            if child is None:
                child = self._next_tid
                self._next_tid += 1
                self._tids[child_ident] = child
            self.detector.fork(parent, child)

    def on_join(self, child_ident: int) -> None:
        tid = self._tid()
        with self._mutex:
            child = self._tids.get(child_ident)
            if child is not None:
                self.detector.join(tid, child)

    def on_vol_read(self, vol: int) -> None:
        tid = self._tid()
        with self._mutex:
            self.detector.vol_read(tid, vol)

    def on_vol_write(self, vol: int) -> None:
        tid = self._tid()
        with self._mutex:
            self.detector.vol_write(tid, vol)

    def describe_races(self) -> str:
        """Human-readable race report with source locations."""
        lines = []
        for race in self.detector.races:
            lines.append(
                f"race[{race.kind}] t{race.first_tid} at "
                f"{self.site_name(race.first_site)} vs t{race.second_tid} at "
                f"{self.site_name(race.second_site)}"
            )
        return "\n".join(lines)


class SharedVar:
    """A tracked shared variable; ``get``/``set`` feed the detector."""

    __slots__ = ("_monitor", "_var", "_value")

    def __init__(self, monitor: RaceMonitor, var: int, initial: Any) -> None:
        self._monitor = monitor
        self._var = var
        self._value = initial

    def get(self) -> Any:
        self._monitor.on_read(self._var, self._monitor._site())
        return self._value

    def set(self, value: Any) -> None:
        self._monitor.on_write(self._var, self._monitor._site())
        self._value = value


class VolatileVar:
    """A tracked volatile: reads acquire, writes release (JMM-style)."""

    __slots__ = ("_monitor", "_vol", "_value")

    def __init__(self, monitor: RaceMonitor, vol: int, initial: Any) -> None:
        self._monitor = monitor
        self._vol = vol
        self._value = initial

    def get(self) -> Any:
        self._monitor.on_vol_read(self._vol)
        return self._value

    def set(self, value: Any) -> None:
        self._value = value
        self._monitor.on_vol_write(self._vol)


class TrackedLock:
    """A reentrant lock whose acquire/release create HB edges."""

    def __init__(self, monitor: RaceMonitor, lock_id: int) -> None:
        self._monitor = monitor
        self._id = lock_id
        self._lock = threading.RLock()

    def acquire(self) -> None:
        self._lock.acquire()
        self._monitor.on_acquire(self._id)

    def release(self) -> None:
        self._monitor.on_release(self._id)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class TrackedThread:
    """A thread wrapper emitting fork/join happens-before edges."""

    def __init__(
        self,
        monitor: RaceMonitor,
        target: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> None:
        self._monitor = monitor
        self._started = threading.Event()
        self._forked = threading.Event()
        self._ident: Optional[int] = None

        def runner() -> None:
            self._ident = threading.get_ident()
            self._started.set()
            # Wait for the parent to record the fork edge, so no child
            # access can be analyzed before the happens-before edge exists.
            self._forked.wait()
            target(*args, **kwargs)

        self._thread = threading.Thread(target=runner)

    def start(self) -> None:
        self._thread.start()
        self._started.wait()
        assert self._ident is not None
        self._monitor.on_fork(self._ident)
        self._forked.set()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)
        if self._ident is not None and not self._thread.is_alive():
            self._monitor.on_join(self._ident)

    def is_alive(self) -> bool:
        return self._thread.is_alive()


class SamplingDriver:
    """Drives PACER's global sampling periods for live programs.

    The simulator toggles sampling at GC boundaries; real Python has no
    GC-boundary hook with the right granularity, so this driver uses a
    wall-clock period (the paper's mechanism is "toggle at periodic
    safepoints with probability r" — the clock stands in for the
    safepoint).  Start it around the threaded section::

        mon = RaceMonitor(detector=PacerDetector())
        driver = SamplingDriver(mon, rate=0.03, period_s=0.005)
        driver.start()
        ...run threads...
        driver.stop()

    All toggles go through the monitor's mutex, so they serialize with
    the analysis exactly like the paper's global sampling flag.
    """

    def __init__(
        self,
        monitor: RaceMonitor,
        rate: float,
        period_s: float = 0.005,
        rng: Optional[Any] = None,
    ) -> None:
        import random as _random

        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self._monitor = monitor
        self.rate = rate
        self.period_s = period_s
        self._rng = rng or _random.Random()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.periods = 0
        self.sampled_periods = 0

    def _toggle_once(self) -> None:
        detector = self._monitor.detector
        sample = self._rng.random() < self.rate
        self.periods += 1
        with self._monitor._mutex:
            if sample:
                self.sampled_periods += 1
                detector.begin_sampling()
            else:
                detector.end_sampling()

    def _loop(self) -> None:
        while not self._stop.wait(self.period_s):
            self._toggle_once()

    def start(self) -> "SamplingDriver":
        # decide the first period immediately, so short-lived threaded
        # sections still fall under the intended sampling regime
        self._toggle_once()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        with self._monitor._mutex:
            self._monitor.detector.end_sampling()

    def __enter__(self) -> "SamplingDriver":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
