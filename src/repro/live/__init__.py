"""Online instrumentation for real Python ``threading`` programs."""

from .monitor import RaceMonitor, SamplingDriver, SharedVar, TrackedLock, TrackedThread

__all__ = ["RaceMonitor", "SamplingDriver", "SharedVar", "TrackedLock", "TrackedThread"]
