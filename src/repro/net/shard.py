"""The detector worker tier: one detector per session, sharded by name.

Sessions are *wholly owned* by one shard — the session name hashes
(CRC32, like :func:`repro.analysis.parallel.task_seed`, because builtin
string hashing is randomized per process) onto a worker, and every chunk
of that session's events is analyzed by that worker's detector.
Happens-before edges never cross session boundaries (each session is its
own monitored program with its own thread/variable/lock namespaces), so
ownership sharding loses nothing: the union of per-shard reports *is*
the answer.

Workers are the supervisor's long-lived pipe-connected processes
(:class:`repro.analysis.supervisor.PipeWorker`) running
:func:`_shard_main`: a request/response loop over ``open`` / ``events``
/ ``sites`` / ``finalize`` / ``drop`` / ``ping`` / ``stop`` messages.
Each session inside a worker is a :class:`SessionHost` — a detector with
an attached :class:`~repro.obs.observer.RunObserver`, flight recorder,
and an *exact* incremental
:class:`~repro.obs.provenance.SyncIndexBuilder`, which is what makes a
streamed session's ``repro/race-report/v1`` report byte-identical
(modulo source/session metadata) to offline ``repro analyze`` over the
concatenated trace.

:class:`ShardPool` is the parent-side handle.  It is thread-safe (the
server talks to it from one thread per connection; a per-shard lock
serializes each pipe), runs either in ``process`` mode (real workers)
or ``inline`` mode (same :class:`SessionHost` code in-process — for
protocol tests and single-process serving), and turns a dead worker
into a :class:`ShardCrashed` the server recovers from by respawning and
replaying the session spools.  Fault injection for the chaos suite:
``crash_plan`` makes a given shard's *first* worker process die
(``os._exit``) before applying its Nth chunk — first spawn only, so the
recovery replay cannot crash-loop — and ``chunk_delay`` slows a shard
down to exercise credit-based backpressure end to end.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence

from ..analysis.parallel import DETECTOR_FACTORIES
from ..analysis.supervisor import PipeWorker
from ..obs.observer import RunObserver
from ..obs.provenance import DEFAULT_WINDOW, FlightRecorder, SyncIndexBuilder
from ..obs.quality import build_coverage, sync_op_split
from ..obs.reports import build_report
from ..obs.tracing import PID_SHARD_BASE, SpanRecorder, chunk_flow_id
from ..util.faults import CRASH_EXIT_CODE

__all__ = [
    "SessionHost",
    "ShardCrashed",
    "ShardError",
    "ShardPool",
    "shard_of",
]


def shard_of(session: str, n_shards: int) -> int:
    """Deterministic session -> shard assignment (process-independent)."""
    return zlib.crc32(session.encode("utf-8")) % n_shards


class ShardError(RuntimeError):
    """A worker rejected a request (bad session, detector error, ...)."""


class ShardCrashed(RuntimeError):
    """A worker process died; its sessions need respawn-and-replay."""

    def __init__(self, shard: int, detail: str) -> None:
        self.shard = shard
        super().__init__(f"shard {shard} crashed: {detail}")


# -- worker side ---------------------------------------------------------------


class SessionHost:
    """One streaming session's full detector stack inside a worker.

    Mirrors exactly what ``repro analyze --report-out`` builds for an
    in-memory trace: the same detector factory, an observer with a
    flight recorder (so the per-event *recorded* run loop is taken and
    race contexts are captured at report time), and an exact sync index
    — fed incrementally with global event indices before each chunk is
    analyzed, precisely when the offline path would have recorded them.
    """

    def __init__(
        self,
        session: str,
        detector_name: str = "fasttrack",
        backend: Optional[str] = None,
        window: int = DEFAULT_WINDOW,
        trace_id: int = 0,
    ) -> None:
        factory = DETECTOR_FACTORIES.get(detector_name)
        if factory is None:
            raise ShardError(
                f"unknown detector {detector_name!r} "
                f"(choices: {', '.join(sorted(DETECTOR_FACTORIES))})"
            )
        self.session = session
        self.detector = factory(backend=backend)
        self.recorder = FlightRecorder(window=window)
        self.observer = RunObserver(recorder=self.recorder)
        self.observer.attach(self.detector)
        self.sync_builder = SyncIndexBuilder()
        self.chunks_applied = 0
        self.site_names: Dict[int, str] = {}
        #: wire-propagated trace id (0 = tracing off for this session)
        self.trace_id = trace_id

    def apply(self, events: Sequence) -> int:
        """Analyze one chunk; returns the session's total race count."""
        start = self.detector._events_seen
        self.sync_builder.add_chunk(start, events)
        self.detector.run(events)
        self.chunks_applied += 1
        return len(self.detector.races)

    def add_sites(self, sites: Dict[int, str]) -> None:
        self.site_names.update(sites)

    def finalize_doc(self) -> Dict:
        """Finalize (re-entrantly) and snapshot the session's results.

        Safe to call repeatedly — after a disconnect, again after a
        resume brought more events, and on every live query: the
        observer's finalize refreshes absolute totals, and the report is
        rebuilt from scratch each time.
        """
        det = self.detector
        self.observer.finalize(det)
        site_name = None
        if self.site_names:
            names = self.site_names
            site_name = lambda site: names.get(site)  # noqa: E731
        report = build_report(
            det.races,
            source="telemetry",
            detector=det.name,
            backend=det.backend_name,
            rate=None,
            events=det.perf.events,
            contexts=self.observer.race_contexts,
            sync=self.sync_builder.build(),
            site_name=site_name,
        )
        coverage = build_coverage(
            source="telemetry",
            detector=det.name,
            nominal_rate=None,
            counters=det.counters.snapshot(),
            marks=self.observer.sampling_marks,
            races=det.races,
            events=det.perf.events,
        )
        return {
            "session": self.session,
            "report": report,
            "coverage": coverage,
            "events": det.perf.events,
            "races": len(det.races),
            "distinct_races": len(det.distinct_races),
            "counters": det.counters.snapshot(),
            "metrics": self.observer.registry.snapshot(),
            "footprint_words": det.obs_sample().get("footprint_words", 0),
            "chunks": self.chunks_applied,
        }


class _HostTable:
    """The op dispatch shared by worker processes and inline mode.

    Holds the worker's :class:`~repro.obs.tracing.SpanRecorder` (one per
    shard process, pid ``PID_SHARD_BASE + shard``): each applied chunk
    becomes a span on the owning session's track, spool replays are
    labeled as such, and the span that applies a traced chunk closes the
    client's ``chunk-sent`` flow arrow.  Span cost is per *chunk*, not
    per event, so the detector hot loops are untouched.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, shard: int = 0) -> None:
        self.window = window
        self.shard = shard
        self.hosts: Dict[str, SessionHost] = {}
        self.recorder = SpanRecorder(pid=PID_SHARD_BASE + shard)
        self._tids: Dict[str, int] = {}

    def _tid(self, session: str) -> int:
        tid = self._tids.get(session)
        if tid is None:
            tid = self._tids[session] = len(self._tids) + 1
            self.recorder.thread_name(tid, session)
        return tid

    def open(self, session: str, detector: str, backend: Optional[str],
             trace_id: int = 0) -> None:
        # idempotent: replay after a crash re-opens existing sessions
        if session not in self.hosts:
            self.hosts[session] = SessionHost(
                session, detector, backend=backend, window=self.window,
                trace_id=trace_id,
            )

    def events(self, session: str, events: Sequence, meta=None) -> tuple:
        host = self.hosts.get(session)
        if host is None:
            raise ShardError(f"no open session {session!r} on this shard")
        meta = meta or {}
        start = self.recorder.begin()
        races = host.apply(events)
        sent_ns = meta.get("sent_ns", 0)
        lag_us = -1
        if sent_ns:
            lag_us = max((time.monotonic_ns() - sent_ns) // 1000, 0)
        replay = bool(meta.get("replay"))
        seq = meta.get("seq")
        flow_in = None
        if host.trace_id and seq is not None and not replay:
            flow_in = chunk_flow_id(host.trace_id, seq)
        args = {"session": session, "events": len(events)}
        if seq is not None:
            args["seq"] = seq
        if lag_us >= 0:
            args["lag_us"] = lag_us
        self.recorder.span(
            "replay-chunk" if replay else "apply-chunk",
            start,
            tid=self._tid(session),
            cat="shard",
            args=args,
            flow_in=flow_in,
        )
        # one counter sample per applied chunk (never per event): the
        # merged service trace grows an "effective_rate" counter track
        # per session, plotting sampling coverage over wall-clock time
        sampled, total = sync_op_split(host.detector.counters.snapshot())
        self.recorder.counter(
            "effective_rate",
            round(sampled / total, 6) if total else 0.0,
            tid=self._tid(session),
        )
        return races, lag_us

    def sites(self, session: str, sites: Dict[int, str]) -> None:
        host = self.hosts.get(session)
        if host is None:
            raise ShardError(f"no open session {session!r} on this shard")
        host.add_sites(sites)

    def finalize(self, session: str) -> Dict:
        host = self.hosts.get(session)
        if host is None:
            raise ShardError(f"no open session {session!r} on this shard")
        return host.finalize_doc()

    def drop(self, session: str) -> None:
        self.hosts.pop(session, None)

    def trace_group(self) -> Dict:
        """This worker's span batch for the merged service trace."""
        return {
            "pid": self.recorder.pid,
            "name": f"shard{self.shard}",
            "events": self.recorder.snapshot(),
            "dropped": self.recorder.dropped,
        }


def _shard_main(
    conn,
    shard: int = 0,
    crash_after: Optional[int] = None,
    chunk_delay: float = 0.0,
    window: int = DEFAULT_WINDOW,
) -> None:
    """Worker loop: serve session ops off the pipe until told to stop.

    ``crash_after=N`` kills the process (``CRASH_EXIT_CODE``) upon
    receiving its Nth ``events`` message, *before* analyzing the chunk —
    the parent sees EOF mid-request, exactly like a real worker death,
    and the not-yet-applied chunk is the one the server must retry.
    """
    table = _HostTable(window=window, shard=shard)
    events_messages = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            return
        op = msg[0]
        if op == "stop":
            return
        try:
            if op == "open":
                table.open(msg[1], msg[2], msg[3], msg[4] if len(msg) > 4 else 0)
                conn.send(("ok", None))
            elif op == "events":
                if chunk_delay > 0.0:
                    time.sleep(chunk_delay)
                events_messages += 1
                if crash_after is not None and events_messages >= crash_after:
                    os._exit(CRASH_EXIT_CODE)
                meta = msg[3] if len(msg) > 3 else None
                conn.send(("ok", table.events(msg[1], msg[2], meta)))
            elif op == "sites":
                table.sites(msg[1], msg[2])
                conn.send(("ok", None))
            elif op == "finalize":
                conn.send(("ok", table.finalize(msg[1])))
            elif op == "drop":
                table.drop(msg[1])
                conn.send(("ok", None))
            elif op == "ping":
                conn.send(("ok", "pong"))
            elif op == "trace":
                conn.send(("ok", table.trace_group()))
            else:
                conn.send(("fail", f"unknown shard op {op!r}"))
        except Exception as exc:
            conn.send(("fail", f"{type(exc).__name__}: {exc}"))


# -- parent side ---------------------------------------------------------------


class _InlineShard:
    """Same dispatch as a worker process, executed in-process."""

    def __init__(
        self,
        chunk_delay: float = 0.0,
        window: int = DEFAULT_WINDOW,
        shard: int = 0,
    ) -> None:
        self.table = _HostTable(window=window, shard=shard)
        self.chunk_delay = chunk_delay

    def call(self, msg):
        op = msg[0]
        try:
            if op == "open":
                return self.table.open(
                    msg[1], msg[2], msg[3], msg[4] if len(msg) > 4 else 0
                )
            if op == "events":
                if self.chunk_delay > 0.0:
                    time.sleep(self.chunk_delay)
                return self.table.events(
                    msg[1], msg[2], msg[3] if len(msg) > 3 else None
                )
            if op == "sites":
                return self.table.sites(msg[1], msg[2])
            if op == "finalize":
                return self.table.finalize(msg[1])
            if op == "drop":
                return self.table.drop(msg[1])
            if op == "ping":
                return "pong"
            if op == "trace":
                return self.table.trace_group()
        except ShardError:
            raise
        except Exception as exc:
            raise ShardError(f"{type(exc).__name__}: {exc}") from exc
        raise ShardError(f"unknown shard op {op!r}")

    def stop(self) -> None:
        self.table.hosts.clear()


class ShardPool:
    """Parent-side handle on the detector worker tier.

    ``mode="process"`` spawns one :class:`PipeWorker` per shard;
    ``mode="inline"`` runs the identical dispatch in-process (no
    isolation, no crash recovery — but byte-identical analysis, which
    the parity suite exploits to pin both paths).  All public methods
    are thread-safe; a dead worker surfaces as :class:`ShardCrashed`
    and :meth:`recover` brings up a *clean* replacement (any injected
    crash plan applies to a shard's first process only) and replays the
    caller's session state before any other request can interleave.
    """

    def __init__(
        self,
        n_shards: int = 2,
        mode: str = "process",
        window: int = DEFAULT_WINDOW,
        chunk_delay: float = 0.0,
        crash_plan: Optional[Dict[int, int]] = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if mode not in ("process", "inline"):
            raise ValueError(f"mode must be 'process' or 'inline', got {mode!r}")
        self.n_shards = n_shards
        self.mode = mode
        self.window = window
        self.chunk_delay = chunk_delay
        self.worker_restarts = 0
        #: restarts per shard, for health/quarantine gauges
        self.restarts_by_shard: List[int] = [0] * n_shards
        self._locks = [threading.Lock() for _ in range(n_shards)]
        self._stopped = False
        if mode == "inline":
            self._inline: List[_InlineShard] = [
                _InlineShard(chunk_delay=chunk_delay, window=window, shard=shard)
                for shard in range(n_shards)
            ]
            self._workers: List[Optional[PipeWorker]] = []
        else:
            self._ctx = get_context("spawn" if os.name == "nt" else "fork")
            crash_plan = crash_plan or {}
            self._workers = [
                self._spawn(shard, crash_plan.get(shard))
                for shard in range(n_shards)
            ]

    def _spawn(self, shard: int, crash_after: Optional[int]) -> PipeWorker:
        return PipeWorker(
            self._ctx,
            _shard_main,
            (shard, crash_after, self.chunk_delay, self.window),
        )

    def shard_of(self, session: str) -> int:
        return shard_of(session, self.n_shards)

    # -- request/response ----------------------------------------------------

    def _roundtrip(self, shard: int, msg):
        """One request/response on the shard pipe (shard lock held)."""
        worker = self._workers[shard]
        try:
            worker.conn.send(msg)
            reply = worker.conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            exitcode = worker.exitcode()
            raise ShardCrashed(
                shard,
                f"worker exited with code {exitcode} during "
                f"{msg[0]!r} ({type(exc).__name__})",
            ) from None
        if reply[0] == "fail":
            raise ShardError(reply[1])
        return reply[1]

    def _call(self, shard: int, msg):
        with self._locks[shard]:
            if self.mode == "inline":
                return self._inline[shard].call(msg)
            return self._roundtrip(shard, msg)

    def recover(self, shard: int, replay) -> bool:
        """Respawn a dead shard worker and rebuild its state atomically.

        Holds the shard's pipe lock for the whole respawn + replay, so
        no other request can reach the fresh worker before its sessions
        are rebuilt.  ``replay(call)`` receives a function that issues
        raw shard messages on the new worker.  Returns False when the
        worker turned out to be alive — another thread already recovered
        it — in which case the caller just retries its request.  The
        replacement worker never carries an injected crash plan, so a
        replay cannot crash-loop.
        """
        if self.mode == "inline":
            return False
        with self._locks[shard]:
            worker = self._workers[shard]
            if worker.alive():
                return False
            worker.kill()
            self._workers[shard] = self._spawn(shard, None)
            self.worker_restarts += 1
            self.restarts_by_shard[shard] += 1
            replay(lambda msg: self._roundtrip(shard, msg))
            return True

    # -- session ops ---------------------------------------------------------

    def open_session(
        self,
        session: str,
        detector: str = "fasttrack",
        backend: Optional[str] = None,
        trace_id: int = 0,
    ) -> None:
        self._call(
            self.shard_of(session), ("open", session, detector, backend, trace_id)
        )

    def apply(self, session: str, events: Sequence, meta: Optional[Dict] = None):
        """Analyze one chunk.

        Returns ``(races, lag_us)``: the session's race count so far and
        the end-to-end chunk lag in microseconds (``-1`` when the chunk
        carried no ``sent_ns`` timestamp).  ``meta`` forwards tracing
        context to the worker: ``{"seq", "sent_ns", "replay"}``.
        """
        return self._call(
            self.shard_of(session), ("events", session, list(events), meta)
        )

    def add_sites(self, session: str, sites: Dict[int, str]) -> None:
        self._call(self.shard_of(session), ("sites", session, dict(sites)))

    def finalize(self, session: str) -> Dict:
        return self._call(self.shard_of(session), ("finalize", session))

    def drop(self, session: str) -> None:
        self._call(self.shard_of(session), ("drop", session))

    def ping(self, shard: int) -> bool:
        return self._call(shard, ("ping",)) == "pong"

    def alive(self, shard: int) -> bool:
        """Liveness without a pipe round trip (process-table check)."""
        if self.mode == "inline":
            return not self._stopped
        return self._workers[shard].alive()

    def trace(self, shard: int) -> Dict:
        """The shard worker's span batch (pid, name, events, dropped)."""
        return self._call(shard, ("trace",))

    def trace_groups(self) -> List[Dict]:
        """Span batches from every live shard; dead shards are skipped.

        A crashed-and-not-yet-recovered worker holds no spans worth
        waiting for; the caller still gets every healthy shard's view.
        """
        groups: List[Dict] = []
        for shard in range(self.n_shards):
            try:
                groups.append(self.trace(shard))
            except (ShardCrashed, ShardError):  # pragma: no cover - race
                continue
        return groups

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self.mode == "inline":
            for shard in self._inline:
                shard.stop()
            return
        for worker in self._workers:
            worker.stop()
