"""The ``repro/telemetry/v1`` wire protocol — sans-IO codec and messages.

Everything here is pure bytes-in/objects-out, with no sockets, threads,
or clocks, so the conformance and fuzz suites can drive the exact code
the server and client run without any IO plumbing.

Frame layout (all integers little-endian)::

    u32   length     (= 1 + len(payload) + 4; bounded by max_frame)
    u8    type       (one of the FRAME_* constants)
    ...   payload    (JSON for control frames; varint seq + binio v2
                      bytes for EVENTS)
    u32   crc32      (over the type byte plus the payload)

The CRC trailer mirrors the binio v2 trace format: a flipped bit or a
silently shortened stream is caught even when the damage still parses.
EVENTS payloads embed a complete binio-v2 document (magic, version,
count, CRC), so event data is integrity-checked twice — once per frame
in flight, once per chunk at rest in the server's replay spool.

Error contract: **every** malformed input maps to a *named* subclass of
:class:`ProtocolError` — never a hang, never a bare ``ValueError`` or
``KeyError``.  ``tests/test_net_protocol.py`` fuzzes this promise with
hypothesis plus the fault-injection helpers from :mod:`repro.util.faults`.

Session lifecycle (client → server unless noted)::

    HELLO {schema, session, detector, backend?, resume?}
      → HELLO_ACK {session, resume_seq, credits}     (server)
      → ERROR {code, detail}                         (server, then close)
    SITES {sites: {id: name}}          incremental site-name table
    EVENTS <seq, sent_ns, binio v2 events>   consumes one credit
      → CREDIT {ack, credits}          (server: durable seq + replenish)
    HEARTBEAT {nonce}                  → HEARTBEAT {nonce}  (echo)
    SPANS {pid, name, dropped, events} client-side trace spans (optional)
    QUERY {trace?}                     → REPORT {report, sessions, metrics}
    CLOSE {seq}                        → CLOSE_ACK {summary}

Observability rides the same frames: HELLO_ACK carries a server-assigned
``trace_id`` (used to derive cross-process flow-arrow ids), each EVENTS
chunk carries the sender's monotonic ``sent_ns`` timestamp (zero when
tracing is off) so the shard worker can histogram end-to-end chunk lag,
and a client may ship its buffered spans in a SPANS frame before CLOSE
so ``repro serve --trace-out`` merges client, front-tier, and
shard-worker spans into one Perfetto document.

Backpressure is credit-based: the server grants an initial window in
HELLO_ACK, each EVENTS frame spends one credit, and the server returns
credits only after the chunk is durably applied (shard-acked and
spooled).  A client with zero credits must block, which bounds server
memory at ``credits x max_frame`` bytes per connection.

Reconnect-with-resume: EVENTS frames carry a per-session sequence
number.  On reconnect the client sends HELLO with ``resume: true``; the
server answers with ``resume_seq`` — the last durably applied sequence —
and the client retransmits everything newer from its unacked buffer.
Duplicates (``seq <= resume_seq``) are acknowledged and dropped, so
delivery is exactly-once end to end.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..trace.binio import dumps_binary, loads_binary
from ..trace.events import Event
from ..trace.trace import TraceError, TraceFormatError

__all__ = [
    "PROTOCOL_SCHEMA",
    "DEFAULT_MAX_FRAME",
    "DEFAULT_CREDITS",
    "FRAME_NAMES",
    "Frame",
    "FrameDecoder",
    "ProtocolError",
    "FrameTooLarge",
    "FrameCorrupt",
    "FrameTruncated",
    "UnknownFrameType",
    "PayloadError",
    "HandshakeError",
    "SessionStateError",
    "ServerBusy",
    "SessionEvicted",
    "Hello",
    "HelloAck",
    "EventsChunk",
    "Credit",
    "Heartbeat",
    "Close",
    "CloseAck",
    "ErrorMessage",
    "Query",
    "Report",
    "Sites",
    "Spans",
    "decode_message",
    "encode_message",
]

#: versioned handshake identifier; bump the suffix on incompatible change
PROTOCOL_SCHEMA = "repro/telemetry/v1"

#: hard ceiling on one frame's wire size (length field), server default
DEFAULT_MAX_FRAME = 1 << 20

#: default credit window granted in HELLO_ACK
DEFAULT_CREDITS = 8

_LEN_BYTES = 4
_CRC_BYTES = 4
_MIN_LENGTH = 1 + _CRC_BYTES  # type byte + CRC, empty payload

# -- frame types ---------------------------------------------------------------

FRAME_HELLO = 1
FRAME_HELLO_ACK = 2
FRAME_EVENTS = 3
FRAME_CREDIT = 4
FRAME_HEARTBEAT = 5
FRAME_CLOSE = 6
FRAME_CLOSE_ACK = 7
FRAME_ERROR = 8
FRAME_QUERY = 9
FRAME_REPORT = 10
FRAME_SITES = 11
FRAME_SPANS = 12

FRAME_NAMES: Dict[int, str] = {
    FRAME_HELLO: "hello",
    FRAME_HELLO_ACK: "hello-ack",
    FRAME_EVENTS: "events",
    FRAME_CREDIT: "credit",
    FRAME_HEARTBEAT: "heartbeat",
    FRAME_CLOSE: "close",
    FRAME_CLOSE_ACK: "close-ack",
    FRAME_ERROR: "error",
    FRAME_QUERY: "query",
    FRAME_REPORT: "report",
    FRAME_SITES: "sites",
    FRAME_SPANS: "spans",
}


# -- named errors --------------------------------------------------------------


class ProtocolError(Exception):
    """Base of every telemetry protocol failure; ``code`` names it.

    ``retry_after`` is advisory: a server that sheds load stamps the
    seconds a well-behaved client should back off before reconnecting
    (zero everywhere else).  It rides the ERROR frame's optional
    ``retry_after`` field, so every named error can carry it.
    """

    code = "protocol"
    retry_after = 0.0


class FrameTooLarge(ProtocolError):
    """A frame length beyond the negotiated maximum (or absurdly huge)."""

    code = "frame-too-large"


class FrameCorrupt(ProtocolError):
    """A structurally impossible frame or a CRC32 mismatch."""

    code = "frame-corrupt"


class FrameTruncated(ProtocolError):
    """The stream ended mid-frame (EOF with a partial frame buffered)."""

    code = "frame-truncated"


class UnknownFrameType(ProtocolError):
    """A frame type byte outside the ``repro/telemetry/v1`` alphabet."""

    code = "unknown-frame-type"


class PayloadError(ProtocolError):
    """A known frame type whose payload does not decode."""

    code = "bad-payload"


class HandshakeError(ProtocolError):
    """A HELLO that cannot open (or resume) a session."""

    code = "handshake"


class SessionStateError(ProtocolError):
    """A frame that is illegal in the session's current state."""

    code = "session-state"


class ServerBusy(ProtocolError):
    """The server refused admission: at capacity, overloaded, or draining.

    Unlike :class:`HandshakeError` (the request itself is wrong), BUSY
    means *try again later*: the session name and configuration are fine,
    the server just cannot take it right now.  ``retry_after`` carries
    the server's suggested backoff.
    """

    code = "busy"


class SessionEvicted(ProtocolError):
    """The server evicted this session (quota exceeded or too slow).

    The session's applied progress is kept and spooled; a later resume
    reattaches.  ``retry_after`` carries the server's suggested backoff.
    """

    code = "evicted"


#: code string -> exception class, for reconstructing server-sent errors
ERROR_CLASSES: Dict[str, type] = {
    cls.code: cls
    for cls in (
        ProtocolError,
        FrameTooLarge,
        FrameCorrupt,
        FrameTruncated,
        UnknownFrameType,
        PayloadError,
        HandshakeError,
        SessionStateError,
        ServerBusy,
        SessionEvicted,
    )
}


def error_for_code(
    code: str, detail: str, retry_after: float = 0.0
) -> ProtocolError:
    """Rebuild the named error a peer reported in an ERROR frame."""
    exc = ERROR_CLASSES.get(code, ProtocolError)(detail)
    if retry_after:
        exc.retry_after = retry_after
    return exc


# -- frame codec ---------------------------------------------------------------


class Frame(Tuple):
    """(type, payload) — kept as a tiny named tuple-alike."""

    __slots__ = ()

    def __new__(cls, frame_type: int, payload: bytes) -> "Frame":
        return super().__new__(cls, (frame_type, payload))

    @property
    def type(self) -> int:
        return self[0]

    @property
    def payload(self) -> bytes:
        return self[1]

    @property
    def name(self) -> str:
        return FRAME_NAMES.get(self.type, f"type#{self.type}")


def encode_frame(frame_type: int, payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame: length, type, payload, CRC32 trailer."""
    body = bytes([frame_type]) + payload
    length = len(body) + _CRC_BYTES
    if length > max_frame:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds the {max_frame}-byte maximum"
        )
    return (
        length.to_bytes(_LEN_BYTES, "little")
        + body
        + zlib.crc32(body).to_bytes(_CRC_BYTES, "little")
    )


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed`` returns every complete frame the new bytes finish and keeps
    the remainder buffered; ``close`` raises :class:`FrameTruncated` if
    the stream ended mid-frame.  All failures are named
    :class:`ProtocolError` subclasses, and parsing work per call is
    linear in the buffered bytes — no input can make it loop or recurse.
    """

    __slots__ = ("max_frame", "buffer", "bytes_consumed", "buffer_high")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        if max_frame < _LEN_BYTES + _MIN_LENGTH:
            raise ValueError(f"max_frame {max_frame} below minimum frame size")
        self.max_frame = max_frame
        self.buffer = bytearray()
        #: total payload bytes successfully consumed (for metrics)
        self.bytes_consumed = 0
        #: high-water mark of the receive buffer (bounded-memory evidence)
        self.buffer_high = 0

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data`` and return every frame it completes."""
        buf = self.buffer
        buf += data
        if len(buf) > self.buffer_high:
            self.buffer_high = len(buf)
        frames: List[Frame] = []
        pos = 0
        end = len(buf)
        while end - pos >= _LEN_BYTES:
            length = int.from_bytes(buf[pos : pos + _LEN_BYTES], "little")
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte maximum"
                )
            if length < _MIN_LENGTH:
                raise FrameCorrupt(
                    f"declared frame length {length} below the {_MIN_LENGTH}-byte "
                    f"minimum (type byte + CRC32)"
                )
            if end - pos - _LEN_BYTES < length:
                break  # incomplete: wait for more bytes
            body_start = pos + _LEN_BYTES
            crc_start = body_start + length - _CRC_BYTES
            body = bytes(buf[body_start:crc_start])
            stored = int.from_bytes(buf[crc_start : crc_start + _CRC_BYTES], "little")
            computed = zlib.crc32(body)
            if stored != computed:
                raise FrameCorrupt(
                    f"frame CRC32 mismatch: stored 0x{stored:08x}, "
                    f"computed 0x{computed:08x}"
                )
            frame_type = body[0]
            if frame_type not in FRAME_NAMES:
                raise UnknownFrameType(f"unknown frame type {frame_type}")
            frames.append(Frame(frame_type, body[1:]))
            pos = crc_start + _CRC_BYTES
            self.bytes_consumed += _LEN_BYTES + length
        if pos:
            del buf[:pos]
            if len(buf) > self.buffer_high:  # pragma: no cover - shrank
                self.buffer_high = len(buf)
        return frames

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self.buffer)

    def close(self) -> None:
        """Signal EOF; a partial buffered frame is a truncation error."""
        if self.buffer:
            raise FrameTruncated(
                f"stream ended with {len(self.buffer)} byte(s) of an "
                f"incomplete frame buffered"
            )


def decode_all(data: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> List[Frame]:
    """Parse a complete byte string into frames (EOF-checked)."""
    decoder = FrameDecoder(max_frame=max_frame)
    frames = decoder.feed(data)
    decoder.close()
    return frames


# -- varint helpers (EVENTS seq prefix; same encoding as binio) ----------------


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    end = len(data)
    while True:
        if pos >= end:
            raise PayloadError(f"truncated varint at payload byte {pos}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise PayloadError(f"varint longer than 64 bits at payload byte {pos}")


# -- messages ------------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Client opening (or resuming) a session."""

    session: str
    detector: str = "fasttrack"
    backend: Optional[str] = None
    resume: bool = False
    schema: str = PROTOCOL_SCHEMA


@dataclass(frozen=True)
class HelloAck:
    """Server accepting a session.

    ``trace_id`` is the server-assigned id for wire-propagated tracing:
    distinct per session (stable across resume), used by both ends to
    derive cross-process flow-arrow ids.  Zero means unassigned.
    """

    session: str
    resume_seq: int
    credits: int
    trace_id: int = 0


@dataclass(frozen=True)
class EventsChunk:
    """One sequenced chunk of trace events.

    ``sent_ns`` is the sender's monotonic-clock nanosecond timestamp at
    send time (zero when tracing is disabled); the shard worker that
    applies the chunk subtracts it from its own monotonic clock to
    observe end-to-end chunk lag.
    """

    seq: int
    events: Tuple[Event, ...]
    sent_ns: int = 0


@dataclass(frozen=True)
class Credit:
    """Server: chunk ``ack`` is durably applied; spend ``credits`` more."""

    ack: int
    credits: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness ping; the peer echoes the nonce back."""

    nonce: int = 0


@dataclass(frozen=True)
class Close:
    """Client: all chunks through ``seq`` sent; finalize the session."""

    seq: int


@dataclass(frozen=True)
class CloseAck:
    """Server: the session's final accounting."""

    summary: Dict


@dataclass(frozen=True)
class ErrorMessage:
    """A named protocol error, shipped before the sender closes.

    ``retry_after`` (seconds, advisory) is only meaningful on
    load-shedding codes (``busy``, ``evicted``); zero means "no advice"
    and is omitted from the wire for compatibility with old peers.
    """

    error_code: str
    detail: str
    retry_after: float = 0.0

    def to_exception(self) -> ProtocolError:
        return error_for_code(self.error_code, self.detail, self.retry_after)


@dataclass(frozen=True)
class Query:
    """Ask the server for its live merged report and session roster.

    ``trace`` additionally requests the merged service trace document
    (``doc["trace"]``) — off by default because span collection across
    shard workers is the expensive part of a query.
    """

    trace: bool = False


@dataclass(frozen=True)
class Report:
    """Server answer to QUERY."""

    doc: Dict


@dataclass(frozen=True)
class Sites:
    """Incremental site-name table (live shim sessions)."""

    sites: Dict[int, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Spans:
    """Client-recorded trace spans, shipped once before CLOSE.

    ``events`` are Chrome trace-event dicts from a
    :class:`~repro.obs.tracing.SpanRecorder`; ``pid``/``name`` identify
    the sending process's track in the merged service trace and
    ``dropped`` counts spans lost to the recorder's bound.
    """

    pid: int
    name: str
    events: Tuple[Dict, ...] = ()
    dropped: int = 0


Message = Union[
    Hello, HelloAck, EventsChunk, Credit, Heartbeat, Close, CloseAck,
    ErrorMessage, Query, Report, Sites, Spans,
]


# -- encoding ------------------------------------------------------------------


def _json_payload(doc: Dict) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_message(msg: Message, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message into a complete wire frame."""
    if isinstance(msg, Hello):
        doc: Dict = {
            "schema": msg.schema,
            "session": msg.session,
            "detector": msg.detector,
            "resume": msg.resume,
        }
        if msg.backend is not None:
            doc["backend"] = msg.backend
        return encode_frame(FRAME_HELLO, _json_payload(doc), max_frame)
    if isinstance(msg, HelloAck):
        return encode_frame(
            FRAME_HELLO_ACK,
            _json_payload(
                {
                    "session": msg.session,
                    "resume_seq": msg.resume_seq,
                    "credits": msg.credits,
                    "trace_id": msg.trace_id,
                }
            ),
            max_frame,
        )
    if isinstance(msg, EventsChunk):
        out = bytearray()
        _write_varint(out, msg.seq)
        _write_varint(out, msg.sent_ns)
        out += dumps_binary(msg.events)
        return encode_frame(FRAME_EVENTS, bytes(out), max_frame)
    if isinstance(msg, Credit):
        return encode_frame(
            FRAME_CREDIT,
            _json_payload({"ack": msg.ack, "credits": msg.credits}),
            max_frame,
        )
    if isinstance(msg, Heartbeat):
        return encode_frame(
            FRAME_HEARTBEAT, _json_payload({"nonce": msg.nonce}), max_frame
        )
    if isinstance(msg, Close):
        return encode_frame(FRAME_CLOSE, _json_payload({"seq": msg.seq}), max_frame)
    if isinstance(msg, CloseAck):
        return encode_frame(
            FRAME_CLOSE_ACK, _json_payload({"summary": msg.summary}), max_frame
        )
    if isinstance(msg, ErrorMessage):
        doc = {"code": msg.error_code, "detail": msg.detail}
        if msg.retry_after:
            doc["retry_after"] = msg.retry_after
        return encode_frame(FRAME_ERROR, _json_payload(doc), max_frame)
    if isinstance(msg, Query):
        doc = {"trace": True} if msg.trace else {}
        return encode_frame(FRAME_QUERY, _json_payload(doc), max_frame)
    if isinstance(msg, Report):
        return encode_frame(FRAME_REPORT, _json_payload(msg.doc), max_frame)
    if isinstance(msg, Sites):
        return encode_frame(
            FRAME_SITES,
            _json_payload({"sites": {str(k): v for k, v in msg.sites.items()}}),
            max_frame,
        )
    if isinstance(msg, Spans):
        return encode_frame(
            FRAME_SPANS,
            _json_payload(
                {
                    "pid": msg.pid,
                    "name": msg.name,
                    "dropped": msg.dropped,
                    "events": list(msg.events),
                }
            ),
            max_frame,
        )
    raise TypeError(f"cannot encode message {msg!r}")


# -- decoding ------------------------------------------------------------------


def _json_doc(frame: Frame) -> Dict:
    try:
        doc = json.loads(frame.payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PayloadError(f"{frame.name} payload is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise PayloadError(
            f"{frame.name} payload must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    return doc


def _field(frame: Frame, doc: Dict, key: str, kind: type):
    value = doc.get(key)
    if kind is int and isinstance(value, bool):
        raise PayloadError(f"{frame.name} field {key!r} must be {kind.__name__}")
    if not isinstance(value, kind):
        raise PayloadError(
            f"{frame.name} field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _nonneg(frame: Frame, doc: Dict, key: str) -> int:
    value = _field(frame, doc, key, int)
    if value < 0:
        raise PayloadError(f"{frame.name} field {key!r} must be >= 0, got {value}")
    return value


def decode_message(frame: Frame) -> Message:
    """Parse one frame's payload into a typed message.

    Every malformed payload raises a named :class:`ProtocolError`
    subclass: :class:`PayloadError` for undecodable bytes or wrong field
    types, :class:`HandshakeError` for a HELLO with the wrong schema.
    """
    ftype = frame.type
    if ftype == FRAME_EVENTS:
        seq, pos = _read_varint(frame.payload, 0)
        sent_ns, pos = _read_varint(frame.payload, pos)
        try:
            trace = loads_binary(bytes(frame.payload[pos:]), validate=False)
        except (TraceFormatError, TraceError) as exc:
            raise PayloadError(f"events payload: {exc}") from None
        return EventsChunk(seq=seq, events=tuple(trace.events), sent_ns=sent_ns)
    if ftype == FRAME_HELLO:
        doc = _json_doc(frame)
        schema = doc.get("schema")
        if schema != PROTOCOL_SCHEMA:
            raise HandshakeError(
                f"unsupported schema {schema!r} (this peer speaks "
                f"{PROTOCOL_SCHEMA!r})"
            )
        session = _field(frame, doc, "session", str)
        if not session:
            raise HandshakeError("session name must be non-empty")
        detector = doc.get("detector", "fasttrack")
        if not isinstance(detector, str):
            raise PayloadError("hello field 'detector' must be str")
        backend = doc.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise PayloadError("hello field 'backend' must be str or absent")
        resume = doc.get("resume", False)
        if not isinstance(resume, bool):
            raise PayloadError("hello field 'resume' must be bool")
        return Hello(
            session=session, detector=detector, backend=backend, resume=resume
        )
    if ftype == FRAME_HELLO_ACK:
        doc = _json_doc(frame)
        trace_id = doc.get("trace_id", 0)
        if not isinstance(trace_id, int) or isinstance(trace_id, bool) or trace_id < 0:
            raise PayloadError(
                f"hello-ack field 'trace_id' must be an int >= 0, got {trace_id!r}"
            )
        return HelloAck(
            session=_field(frame, doc, "session", str),
            resume_seq=_nonneg(frame, doc, "resume_seq"),
            credits=_nonneg(frame, doc, "credits"),
            trace_id=trace_id,
        )
    if ftype == FRAME_CREDIT:
        doc = _json_doc(frame)
        return Credit(
            ack=_nonneg(frame, doc, "ack"),
            credits=_nonneg(frame, doc, "credits"),
        )
    if ftype == FRAME_HEARTBEAT:
        doc = _json_doc(frame)
        return Heartbeat(nonce=_nonneg(frame, doc, "nonce"))
    if ftype == FRAME_CLOSE:
        doc = _json_doc(frame)
        return Close(seq=_nonneg(frame, doc, "seq"))
    if ftype == FRAME_CLOSE_ACK:
        doc = _json_doc(frame)
        return CloseAck(summary=_field(frame, doc, "summary", dict))
    if ftype == FRAME_ERROR:
        doc = _json_doc(frame)
        retry_after = doc.get("retry_after", 0.0)
        if (
            isinstance(retry_after, bool)
            or not isinstance(retry_after, (int, float))
            or retry_after < 0
        ):
            raise PayloadError(
                f"error field 'retry_after' must be a number >= 0, "
                f"got {retry_after!r}"
            )
        return ErrorMessage(
            error_code=_field(frame, doc, "code", str),
            detail=_field(frame, doc, "detail", str),
            retry_after=float(retry_after),
        )
    if ftype == FRAME_QUERY:
        doc = _json_doc(frame)
        trace = doc.get("trace", False)
        if not isinstance(trace, bool):
            raise PayloadError("query field 'trace' must be bool")
        return Query(trace=trace)
    if ftype == FRAME_REPORT:
        return Report(doc=_json_doc(frame))
    if ftype == FRAME_SITES:
        doc = _json_doc(frame)
        table = _field(frame, doc, "sites", dict)
        sites: Dict[int, str] = {}
        for key, name in table.items():
            try:
                site = int(key)
            except (TypeError, ValueError):
                raise PayloadError(f"sites key {key!r} is not an int") from None
            if not isinstance(name, str):
                raise PayloadError(f"sites name for {key!r} must be str")
            sites[site] = name
        return Sites(sites=sites)
    if ftype == FRAME_SPANS:
        doc = _json_doc(frame)
        events = doc.get("events", [])
        if not isinstance(events, list) or not all(
            isinstance(ev, dict) for ev in events
        ):
            raise PayloadError("spans field 'events' must be a list of objects")
        return Spans(
            pid=_nonneg(frame, doc, "pid"),
            name=_field(frame, doc, "name", str),
            events=tuple(events),
            dropped=_nonneg(frame, doc, "dropped"),
        )
    raise UnknownFrameType(f"unknown frame type {ftype}")


def chunk_events(
    events: Sequence[Event], chunk_size: int, first_seq: int = 1
) -> Iterable[EventsChunk]:
    """Split an event sequence into sequenced EVENTS chunks."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    seq = first_seq
    for start in range(0, len(events), chunk_size):
        yield EventsChunk(seq=seq, events=tuple(events[start : start + chunk_size]))
        seq += 1
