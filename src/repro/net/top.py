"""``repro top`` — the live operator console over a telemetry server.

Builds a compact, *versioned* view (``repro/top-status/v1``) out of the
server's ``repro/telemetry-status/v1`` query document: session counts,
event/chunk throughput (rates need two samples, so ``--once`` reports
``null``), race totals, the detection-quality panel (effective sampling
rate, estimated true race count, and coverage deficit from the merged
``repro/coverage-report/v1`` document), per-shard health (up / restarts /
quarantined / queue depth / owned sessions), protocol-error taxonomy,
and the backpressure picture (receive-buffer high-water mark, credit
stalls, chunk lag percentiles-by-proxy via histogram mean).

Two consumers, one builder:

* :func:`render_top` — the refreshing terminal dashboard
  (``repro top --address ...``);
* ``repro top --once --json`` — one schema-stable JSON document for
  scripting and CI (:func:`validate_top_status` pins the shape; the
  *keys* never depend on state backend, shard mode, or traffic).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

__all__ = [
    "TOP_SCHEMA",
    "build_top_status",
    "render_top",
    "validate_top_status",
]

TOP_SCHEMA = "repro/top-status/v1"


def _counter(metrics: Mapping, name: str) -> int:
    return int(metrics.get("counters", {}).get(name, 0))


def _gauge(metrics: Mapping, key: str) -> int:
    g = metrics.get("gauges", {}).get(key)
    return int(g["value"]) if g else 0


def _hist(metrics: Mapping, name: str) -> Dict:
    h = metrics.get("histograms", {}).get(name)
    count = int(h["count"]) if h else 0
    total = int(h["total"]) if h else 0
    return {
        "count": count,
        "total": total,
        "mean": (total / count) if count else None,
    }


def _rate(
    current: int, prev_status: Optional[Mapping], path: str,
    interval: Optional[float],
) -> Optional[float]:
    if prev_status is None or not interval or interval <= 0:
        return None
    previous = prev_status.get(path, {}).get("total")
    if not isinstance(previous, (int, float)):
        return None
    return max(current - previous, 0) / interval


def build_top_status(
    doc: Mapping,
    prev: Optional[Mapping] = None,
    interval: Optional[float] = None,
) -> Dict:
    """Fold one status document into a ``repro/top-status/v1`` object.

    ``prev`` is the *previous* top-status sample and ``interval`` the
    seconds between the two; rates are ``None`` without both (the
    ``--once`` contract: a single sample has no rate).  The key set is
    fixed — independent of backend, traffic, shard mode, or failures —
    so CI can diff documents structurally.
    """
    metrics = doc.get("metrics", {})
    server = doc.get("server", {})
    roster = doc.get("sessions", [])
    report = doc.get("report", {})
    n_shards = int(server.get("shards", 0))
    by_state = {"attached": 0, "detached": 0, "closed": 0}
    sessions_by_shard: Dict[int, int] = {}
    for entry in roster:
        state = entry.get("state")
        if state in by_state:
            by_state[state] += 1
        shard = int(entry.get("shard", 0))
        sessions_by_shard[shard] = sessions_by_shard.get(shard, 0) + 1
    errors_by_code = {}
    for key, value in metrics.get("counters", {}).items():
        if key.startswith("net_protocol_errors{code="):
            code = key[len("net_protocol_errors{code="):-1]
            errors_by_code[code] = int(value)
    events_total = _counter(metrics, "net_events_total")
    chunks_total = _counter(metrics, "net_chunks_total")
    coverage = doc.get("coverage") or {}
    cov_sync = coverage.get("sync", {})
    cov_est = coverage.get("estimate", {})
    cov_races = coverage.get("races", {})
    stall = _hist(metrics, "net_credit_stall_us")
    lag = _hist(metrics, "net_chunk_lag_us")
    shards = [
        {
            "shard": shard,
            "up": bool(_gauge(metrics, f"net_shard_up{{shard={shard}}}")),
            "restarts": _gauge(metrics, f"net_shard_restarts{{shard={shard}}}"),
            "quarantined": bool(
                _gauge(metrics, f"net_shard_quarantined{{shard={shard}}}")
            ),
            "queue_depth": _gauge(
                metrics, f"net_shard_queue_depth{{shard={shard}}}"
            ),
            "sessions": sessions_by_shard.get(shard, 0),
        }
        for shard in range(n_shards)
    ]
    return {
        "schema": TOP_SCHEMA,
        "address": doc.get("address", ""),
        "sessions": {
            "total": len(roster),
            "attached": by_state["attached"],
            "detached": by_state["detached"],
            "closed": by_state["closed"],
        },
        "events": {
            "total": events_total,
            "per_sec": _rate(events_total, prev, "events", interval),
        },
        "chunks": {
            "total": chunks_total,
            "per_sec": _rate(chunks_total, prev, "chunks", interval),
        },
        "races": {
            "dynamic": int(report.get("dynamic_races", 0)),
            "distinct": int(report.get("distinct_races", 0)),
        },
        "shards": shards,
        "quality": {
            "effective_rate": cov_sync.get("effective_rate"),
            "sync_sampled": int(cov_sync.get("sampled", 0)),
            "sync_total": int(cov_sync.get("total", 0)),
            "expected_detection": cov_est.get("expected_detection"),
            "coverage_deficit": cov_est.get("coverage_deficit"),
            "estimated_true_races": cov_est.get("true_dynamic"),
            "races_in_period": cov_races.get("first_in_period"),
        },
        "protocol_errors": {
            "total": sum(errors_by_code.values()),
            "by_code": {k: errors_by_code[k] for k in sorted(errors_by_code)},
        },
        "backpressure": {
            "rx_buffer_high": int(server.get("rx_buffer_high", 0)),
            "credit_stalls": stall["count"],
            "credit_stall_us_mean": stall["mean"],
            "chunk_lag_us_mean": lag["mean"],
            "duplicate_chunks": _counter(metrics, "net_duplicate_chunks"),
        },
        "server": {
            "worker_restarts": int(server.get("worker_restarts", 0)),
            "shards": n_shards,
            "shard_mode": str(server.get("shard_mode", "")),
            "lifecycle": str(server.get("lifecycle", "serving")),
        },
        "resilience": {
            "retries": _counter(metrics, "net_retries_total"),
            "shed_sessions": _counter(metrics, "net_shed_sessions"),
            "throttled_credits": _counter(metrics, "net_throttled_credits"),
            "drain_seconds": (server.get("resilience") or {}).get(
                "drain_seconds", 0
            ),
            "adopted_sessions": int(
                (server.get("resilience") or {}).get("adopted_sessions", 0)
            ),
            "spool_bytes": int(
                (server.get("resilience") or {}).get("spool_bytes", 0)
            ),
        },
    }


#: required key shape: path -> type (None = any JSON value incl. null)
_REQUIRED = {
    ("schema",): str,
    ("address",): str,
    ("sessions", "total"): int,
    ("sessions", "attached"): int,
    ("sessions", "detached"): int,
    ("sessions", "closed"): int,
    ("events", "total"): int,
    ("events", "per_sec"): None,
    ("chunks", "total"): int,
    ("chunks", "per_sec"): None,
    ("races", "dynamic"): int,
    ("races", "distinct"): int,
    ("shards",): list,
    ("quality", "effective_rate"): None,
    ("quality", "sync_sampled"): int,
    ("quality", "sync_total"): int,
    ("quality", "expected_detection"): None,
    ("quality", "coverage_deficit"): None,
    ("quality", "estimated_true_races"): None,
    ("quality", "races_in_period"): None,
    ("protocol_errors", "total"): int,
    ("protocol_errors", "by_code"): dict,
    ("backpressure", "rx_buffer_high"): int,
    ("backpressure", "credit_stalls"): int,
    ("backpressure", "credit_stall_us_mean"): None,
    ("backpressure", "chunk_lag_us_mean"): None,
    ("backpressure", "duplicate_chunks"): int,
    ("server", "worker_restarts"): int,
    ("server", "shards"): int,
    ("server", "shard_mode"): str,
    ("server", "lifecycle"): str,
    ("resilience", "retries"): int,
    ("resilience", "shed_sessions"): int,
    ("resilience", "throttled_credits"): int,
    ("resilience", "drain_seconds"): None,
    ("resilience", "adopted_sessions"): int,
    ("resilience", "spool_bytes"): int,
}

_SHARD_KEYS = {
    "shard": int,
    "up": bool,
    "restarts": int,
    "quarantined": bool,
    "queue_depth": int,
    "sessions": int,
}


def validate_top_status(doc) -> List[str]:
    """Structural validation of a ``repro/top-status/v1`` document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"top status must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != TOP_SCHEMA:
        problems.append(f"schema must be {TOP_SCHEMA!r}, got {doc.get('schema')!r}")
    for path, kind in _REQUIRED.items():
        node = doc
        for key in path:
            if not isinstance(node, dict) or key not in node:
                problems.append(f"missing key {'.'.join(path)}")
                node = None
                break
            node = node[key]
        if node is None or kind is None:
            continue
        if kind is int and isinstance(node, bool):
            problems.append(f"{'.'.join(path)} must be int, got bool")
        elif not isinstance(node, kind):
            problems.append(
                f"{'.'.join(path)} must be {kind.__name__}, "
                f"got {type(node).__name__}"
            )
    for i, shard in enumerate(doc.get("shards") or []):
        if not isinstance(shard, dict):
            problems.append(f"shards[{i}] must be an object")
            continue
        for key, kind in _SHARD_KEYS.items():
            if key not in shard:
                problems.append(f"shards[{i}] missing {key!r}")
            elif kind is int and isinstance(shard[key], bool):
                problems.append(f"shards[{i}].{key} must be int, got bool")
            elif not isinstance(shard[key], kind) and not (
                kind is bool and isinstance(shard[key], bool)
            ):
                problems.append(
                    f"shards[{i}].{key} must be {kind.__name__}, "
                    f"got {type(shard[key]).__name__}"
                )
    return problems


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}/s"


def _fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}s"
    if value >= 1_000:
        return f"{value / 1_000:.1f}ms"
    return f"{value:.0f}us"


def render_top(status: Mapping) -> str:
    """One dashboard frame as plain terminal text."""
    lines: List[str] = []
    sess = status["sessions"]
    ev = status["events"]
    ch = status["chunks"]
    races = status["races"]
    bp = status["backpressure"]
    lifecycle = status["server"].get("lifecycle", "serving")
    lines.append(
        f"repro top — {status['address']}  "
        f"[{status['server']['shard_mode']} x{status['server']['shards']}]"
        + ("" if lifecycle == "serving" else f"  ** {lifecycle.upper()} **")
    )
    lines.append(
        f"sessions {sess['total']} "
        f"(attached {sess['attached']}, detached {sess['detached']}, "
        f"closed {sess['closed']})   "
        f"events {ev['total']:,} @ {_fmt_rate(ev['per_sec'])}   "
        f"chunks {ch['total']:,} @ {_fmt_rate(ch['per_sec'])}"
    )
    lines.append(
        f"races {races['dynamic']} dynamic / {races['distinct']} distinct   "
        f"worker restarts {status['server']['worker_restarts']}"
    )
    qual = status["quality"]
    eff = qual["effective_rate"]
    est = qual["estimated_true_races"]
    lines.append(
        f"quality: effective rate "
        f"{'-' if eff is None else format(eff, '.2%')} "
        f"({qual['sync_sampled']:,}/{qual['sync_total']:,} sync ops)   "
        f"est true races {'-' if est is None else format(est, ',.1f')}   "
        f"deficit "
        f"{'-' if qual['coverage_deficit'] is None else format(qual['coverage_deficit'], '.2%')}"
    )
    lines.append("")
    lines.append("shard  up  restarts  quar  queue  sessions")
    for shard in status["shards"]:
        lines.append(
            f"{shard['shard']:>5}  {'ok' if shard['up'] else 'DOWN':<3} "
            f"{shard['restarts']:>8}  {'YES' if shard['quarantined'] else 'no':>4} "
            f"{shard['queue_depth']:>5}  {shard['sessions']:>8}"
        )
    lines.append("")
    lines.append(
        f"backpressure: rx high {bp['rx_buffer_high']:,}B   "
        f"credit stalls {bp['credit_stalls']} "
        f"(mean {_fmt_us(bp['credit_stall_us_mean'])})   "
        f"chunk lag mean {_fmt_us(bp['chunk_lag_us_mean'])}   "
        f"dup chunks {bp['duplicate_chunks']}"
    )
    res = status.get("resilience") or {}
    if any(res.get(k) for k in ("retries", "shed_sessions",
                                "throttled_credits", "adopted_sessions")):
        lines.append(
            f"resilience: retries {res.get('retries', 0)}   "
            f"shed {res.get('shed_sessions', 0)}   "
            f"throttled credits {res.get('throttled_credits', 0)}   "
            f"adopted {res.get('adopted_sessions', 0)}   "
            f"spool {res.get('spool_bytes', 0):,}B"
        )
    errs = status["protocol_errors"]
    if errs["total"]:
        by = ", ".join(f"{k}={v}" for k, v in errs["by_code"].items())
        lines.append(f"protocol errors: {errs['total']} ({by})")
    else:
        lines.append("protocol errors: none")
    return "\n".join(lines) + "\n"
