"""The self-healing telemetry client: reconnect-with-resume as policy.

:class:`~repro.net.client.TelemetryClient` already owns the *mechanism*
for lossless recovery — sequenced chunks, the unacked buffer, HELLO
``resume`` handshakes — but leaves the *policy* to the caller: nothing
reconnects automatically, so a single connection drop mid-stream raises
out of ``send_events``.  :class:`ResilientClient` wraps one client with
that policy:

* every transport or protocol failure (``OSError``, a corrupted or
  truncated frame, a superseded connection, a BUSY or eviction answer)
  triggers an automatic reconnect-with-resume and a retry of the
  interrupted operation from exactly where it stopped — chunk-aligned,
  so the server's duplicate suppression makes delivery exactly-once
  even when a frame died on the wire after being applied;
* reconnects back off exponentially with **seeded** jitter (a
  ``random.Random`` derived from the session name unless given), so a
  thousand clients dropped by one server restart do not stampede back
  in lockstep, and chaos tests replay the identical schedule;
* a server-advised ``retry_after`` (BUSY handshakes, evictions) floors
  the computed delay — overloaded servers get the quiet they asked for;
* the retry budget is bounded (``retries`` per operation): a server
  that is truly gone produces the *original* named error, not an
  infinite loop;
* the pending buffer stays bounded: the credit window already caps
  unacked chunks, and an optional ``max_pending`` forces a full drain
  whenever the buffer grows past it;
* ``close()`` is idempotent and exception-safe, and — unlike the raw
  client's — *completes the close handshake* under faults: a summary
  lost to a dying connection is re-fetched on a fresh resume.

Config errors never retry: an unknown detector/backend, a schema
mismatch, or resuming a session the server has never heard of is a
:class:`~repro.net.protocol.HandshakeError` and raises immediately.
The one exception is the ambiguous first connect — if our HELLO opened
a session but the ack died on the wire, the server answers the retry
with "already exists"; that is *this* client's session, so the retry
switches to ``resume`` instead of failing.

Every reconnect is recorded as a ``reconnect`` instant on the client's
span recorder; the server mines those from the shipped SPANS batch into
its ``net_retries_total`` counter, so operator dashboards see wire
instability without any per-session metric changing (parity holds).
"""

from __future__ import annotations

import random
import time
import zlib
from typing import Dict, List, Optional, Sequence

from ..trace.events import Event
from .client import DEFAULT_CHUNK_SIZE, TelemetryClient
from .protocol import (
    DEFAULT_MAX_FRAME,
    HandshakeError,
    HelloAck,
    ProtocolError,
)

__all__ = ["ResilientClient", "DEFAULT_RETRIES"]

#: default per-operation reconnect budget
DEFAULT_RETRIES = 8

#: backoff schedule defaults: base * 2^attempt, capped, jittered
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_MAX = 2.0


def _is_retryable(exc: Exception) -> bool:
    """Transient failures retry; config errors surface immediately."""
    if isinstance(exc, HandshakeError):
        return False
    return isinstance(exc, (OSError, ProtocolError))


class ResilientClient:
    """A :class:`TelemetryClient` that heals itself (see module doc).

    Drop-in for the raw client everywhere the repo uses one —
    ``repro stream``, :class:`~repro.net.client.TelemetryMonitor` — with
    the same operation surface plus the retry knobs.
    """

    def __init__(
        self,
        address: str,
        session: str,
        detector: str = "fasttrack",
        backend: Optional[str] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float = 30.0,
        trace: bool = True,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        seed: Optional[int] = None,
        max_pending: Optional[int] = None,
        client: Optional[TelemetryClient] = None,
    ) -> None:
        self.client = client or TelemetryClient(
            address, session, detector=detector, backend=backend,
            chunk_size=chunk_size, max_frame=max_frame, timeout=timeout,
            trace=trace,
        )
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_pending = max_pending
        if seed is None:
            seed = zlib.crc32(self.client.session.encode("utf-8"))
        self._rng = random.Random(seed)
        #: total reconnect attempts performed over this client's life
        self.retry_count = 0
        #: wall-clock seconds spent sleeping in backoff
        self.backoff_seconds = 0.0
        #: True once a HELLO(_ACK) round-trip established the session
        self._established = False
        self._closed = False

    # -- delegated read surface ----------------------------------------------

    @property
    def address(self) -> str:
        return self.client.address

    @property
    def session(self) -> str:
        return self.client.session

    @property
    def connected(self) -> bool:
        return self.client.connected

    @property
    def last_summary(self) -> Optional[Dict]:
        return self.client.last_summary

    @property
    def events_sent(self) -> int:
        return self.client.events_sent

    @property
    def credit_waits(self) -> int:
        return self.client.credit_waits

    @property
    def unacked(self) -> List:
        return self.client.unacked

    @property
    def recorder(self):
        return self.client.recorder

    @property
    def trace_id(self) -> int:
        return self.client.trace_id

    # -- the retry engine ----------------------------------------------------

    def _backoff(self, attempt: int, exc: Optional[Exception]) -> None:
        """Sleep the jittered exponential delay (floored by retry_after)."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + self._rng.random() / 2  # jitter in [0.5, 1.0)
        advised = getattr(exc, "retry_after", 0.0) or 0.0
        if advised > delay:
            delay = advised
        self.backoff_seconds += delay
        time.sleep(delay)

    def _reconnect(self, attempt: int, exc: Optional[Exception]) -> HelloAck:
        """One backoff + reconnect round; raises what connect raises."""
        self._backoff(attempt, exc)
        self.retry_count += 1
        self.client.abort()
        try:
            ack = self.client.connect(resume=self._established)
        except HandshakeError as handshake_exc:
            if (
                not self._established
                and "already exists" in str(handshake_exc)
            ):
                # our first HELLO opened the session but the ack died on
                # the wire — that half-open session is ours, resume it
                self._established = True
                ack = self.client.connect(resume=True)
            else:
                raise
        self._established = True
        if self.client.recorder is not None:
            self.client.recorder.instant(
                "reconnect",
                args={
                    "attempt": attempt + 1,
                    "cause": type(exc).__name__ if exc else "none",
                },
            )
        return ack

    def _recover(self, exc: Exception) -> None:
        """Reconnect-with-resume after ``exc``, spending the budget.

        Raises the *last* failure when the budget runs out, or ``exc``
        itself when it is not retryable (config errors stay loud).  The
        budget is per *non-progressing* attempt: a reconnect that died
        but shrank the unacked buffer (e.g. an evict-per-chunk server
        acking one retransmit per connection) resets the counter — only
        a wire that moves nothing at all exhausts it.
        """
        if not _is_retryable(exc):
            raise exc
        last: Exception = exc
        attempt = 0
        while attempt < self.retries:
            before = len(self.client.unacked)
            try:
                self._reconnect(attempt, last)
                return
            except Exception as retry_exc:  # noqa: BLE001 - re-raised below
                if not _is_retryable(retry_exc):
                    raise
                last = retry_exc
                if len(self.client.unacked) < before:
                    attempt = 0
                else:
                    attempt += 1
        raise last

    # -- operations ----------------------------------------------------------

    def connect(self, resume: bool = False) -> HelloAck:
        """Open the session, retrying transient connect failures."""
        if resume:
            self._established = True
        attempt = 0
        while True:
            try:
                self.client.abort()
                ack = self.client.connect(resume=self._established)
            except HandshakeError as exc:
                if not self._established and "already exists" in str(exc):
                    # our first HELLO opened the session but the ack
                    # died on the wire — that half-open session is ours
                    self._established = True
                    continue
                raise
            except (OSError, ProtocolError) as exc:
                if attempt >= self.retries:
                    raise
                self._backoff(attempt, exc)
                self.retry_count += 1
                attempt += 1
                continue
            self._established = True
            if attempt and self.client.recorder is not None:
                self.client.recorder.instant(
                    "reconnect", args={"attempt": attempt, "cause": "connect"}
                )
            return ack

    def send_events(self, events: Sequence[Event]) -> None:
        """Stream events; any wire death resumes from the lost chunk.

        Chunk boundaries are deterministic (fixed ``chunk_size``), and
        the raw client advances ``events_sent`` only per fully sent
        chunk, so slicing the input at ``events_sent - base`` restarts
        exactly at the first chunk the server might not have — whose
        sequence number then dedupes it if the server *did* get it.
        """
        events = list(events)
        base = self.client.events_sent
        while True:
            if not self.client.connected:
                self._recover(ProtocolError("client is not connected"))
            try:
                self.client.send_events(events[self.client.events_sent - base:])
                break
            except Exception as exc:  # noqa: BLE001 - _recover filters
                self._recover(exc)
        if (
            self.max_pending is not None
            and len(self.client.unacked) > self.max_pending
        ):
            self.drain()

    def send_sites(self, sites: Dict[int, str]) -> None:
        """Ship site names; retried like events (SITES is idempotent)."""
        if not sites:
            return
        while True:
            if not self.client.connected:
                self._recover(ProtocolError("client is not connected"))
            try:
                self.client.send_sites(sites)
                return
            except Exception as exc:  # noqa: BLE001 - _recover filters
                self._recover(exc)

    def drain(self) -> None:
        """Wait for every chunk's CREDIT, reconnecting as needed."""
        while self.client.unacked:
            if not self.client.connected:
                self._recover(ProtocolError("client is not connected"))
            try:
                self.client.drain()
            except Exception as exc:  # noqa: BLE001 - _recover filters
                self._recover(exc)

    def query(self, trace: bool = False) -> Dict:
        while True:
            if not self.client.connected:
                self._recover(ProtocolError("client is not connected"))
            try:
                return self.client.query(trace=trace)
            except Exception as exc:  # noqa: BLE001 - _recover filters
                self._recover(exc)

    def heartbeat(self, nonce: int = 1) -> None:
        self.client.heartbeat(nonce=nonce)

    def ship_spans(self) -> int:
        return self.client.ship_spans()

    def close(self) -> Dict:
        """Complete the close handshake, healing through failures.

        Unlike the raw client's exception-safe close (which gives up
        and returns the best-known summary), this one re-resumes and
        retries until the server's CLOSE_ACK summary actually arrives —
        or the retry budget is spent, in which case the last summary
        (possibly ``{}``) is returned rather than raising: by this
        point every chunk was durably applied or is still spooled
        server-side, so nothing is lost either way.
        """
        if self._closed:
            return self.client.last_summary or {}
        budget = self.retries
        while True:
            if not self.client.connected:
                try:
                    self._recover(ProtocolError("client is not connected"))
                except (OSError, ProtocolError):
                    self._closed = True
                    return self.client.last_summary or {}
            before = len(self.client.unacked)
            summary = self.client.close()
            if self.client.close_error is None:
                self._closed = True
                return summary
            exc = self.client.close_error
            if not _is_retryable(exc) or budget <= 0:
                self._closed = True
                return self.client.last_summary or {}
            if len(self.client.unacked) < before:
                budget = self.retries  # the wire moved: progress resets it
            else:
                budget -= 1

    def abort(self) -> None:
        """Drop the connection without CLOSE (no retries, no healing)."""
        self.client.abort()

    def __enter__(self) -> "ResilientClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        if exc[0] is None:
            self.close()
        else:
            self.abort()
