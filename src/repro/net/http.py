"""The observability HTTP sidecar: ``/metrics``, ``/status``, ``/healthz``.

A tiny stdlib HTTP server (``http.server.ThreadingHTTPServer`` on a
daemon thread) that exposes the telemetry server's state to standard
tooling without any new dependencies:

* ``GET /metrics`` — the merged metrics registry rendered in Prometheus
  text exposition format (:func:`repro.obs.prom.render_prometheus`).
  Cheap by default: it folds the per-session snapshots captured at the
  last finalize instead of re-finalizing every session per scrape; pass
  ``?refresh=1`` to force a full merge-tier fold first.
* ``GET /status`` — the live ``repro/telemetry-status/v1`` document as
  JSON (the same document QUERY serves on the wire), for ``repro top``
  and scripted dashboards that prefer HTTP to the framed protocol.
* ``GET /healthz`` — ``200 ok`` while the server is accepting; once a
  graceful drain begins it answers ``503 draining`` (and after a full
  stop, ``503 stopped``) so load balancers pull the instance *before*
  the listener closes.  The lifecycle string also rides ``/status`` as
  ``server.lifecycle``.

Enable it with ``ServerConfig(http="127.0.0.1:9464")`` or ``repro serve
--http``; port 0 binds an ephemeral port, published via
``TelemetryServer.http_address``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

__all__ = ["ObservabilityHTTPServer", "parse_http_address"]


def parse_http_address(address: str) -> tuple:
    """``host:port`` (or bare ``:port`` / ``port``) -> (host, port)."""
    address = address.strip()
    if address.startswith("http://"):
        address = address[len("http://"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = "", address
    host = host or "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"http address must be host:port, got {address!r}"
        ) from None


class _Handler(BaseHTTPRequestHandler):
    # the telemetry server is attached to the HTTPServer instance
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        pass  # scrapes are not server events; keep the log clean

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 - stdlib name
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        url = urlparse(self.path)
        try:
            if url.path == "/metrics":
                refresh = "refresh=1" in (url.query or "")
                body = telemetry.prometheus_text(refresh=refresh).encode("utf-8")
                self._reply(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif url.path == "/status":
                doc = telemetry.query_doc()
                body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
                self._reply(200, body, "application/json")
            elif url.path == "/healthz":
                lifecycle = getattr(telemetry, "lifecycle", "serving")
                if lifecycle == "serving":
                    self._reply(200, b"ok\n", "text/plain; charset=utf-8")
                else:
                    # draining/stopped: tell load balancers to stop
                    # routing while in-flight sessions finish
                    self._reply(
                        503,
                        f"{lifecycle}\n".encode("utf-8"),
                        "text/plain; charset=utf-8",
                    )
            else:
                self._reply(404, b"not found\n", "text/plain; charset=utf-8")
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(
                500,
                f"internal error: {exc}\n".encode("utf-8"),
                "text/plain; charset=utf-8",
            )


class ObservabilityHTTPServer:
    """The scrape endpoint, bound at construction, served on a daemon."""

    def __init__(self, telemetry, address: str) -> None:
        host, port = parse_http_address(address)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = telemetry  # type: ignore[attr-defined]
        bound_host, bound_port = self._httpd.server_address[:2]
        self.address = f"{bound_host}:{bound_port}"
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="telemetry-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
