"""The race-telemetry front tier: sockets, sessions, spools, merging.

One :class:`TelemetryServer` accepts ``repro/telemetry/v1`` connections
on a TCP or Unix socket, one thread per connection.  Each connection
drives a session through its lifecycle:

* **hello/ack** — register (or resume) the session, assign it to a
  shard (:func:`repro.net.shard.shard_of`), grant the initial credit
  window;
* **events** — verify the sequence number, ship the chunk to the
  session's shard worker, append it to the session's disk spool, then
  return the credit.  The order matters: a chunk is acknowledged
  (CREDIT with ``ack=seq``) only once it is both *analyzed* and
  *spooled*, so every acknowledged chunk survives a worker crash and
  every unacknowledged chunk is still owned by the client — exactly-once
  end to end;
* **close / disconnect** — finalize the session on its shard (the
  re-entrant finalize from :mod:`repro.obs.observer`, so a disconnect
  followed by a resume followed by another finalize never
  double-counts) and fold its report into the merge tier.

**Crash recovery.**  A dead shard worker surfaces as
:class:`~repro.net.shard.ShardCrashed`.  Recovery runs under the shard's
pipe lock (no other request can interleave): respawn a clean worker —
any injected crash plan applied to the first process only — re-open
every session owned by that shard, replay their spools, then let the
failed request retry its in-flight chunk.  Detector state is rebuilt
deterministically from the spools, so the post-crash report is
byte-identical to a crash-free run; the soak suite pins this.

**Merge tier.**  :meth:`TelemetryServer.query_doc` re-finalizes every
session (cheap, absolute-valued) and folds the per-session
``repro/race-report/v1`` documents with
:func:`repro.obs.reports.merge_reports` and the metrics snapshots with
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` — the same
deterministic folds the experiment matrix uses.  ``repro report
--follow`` and the QUERY frame serve this document live.

Memory is bounded by construction: frames are size-capped, the
per-connection receive buffer holds at most one partial frame (its
high-water mark is exported as a gauge), chunks go to a worker and a
spool file instead of accumulating, and detector metadata growth is the
same as offline analysis of the same trace.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..analysis.parallel import DETECTOR_FACTORIES
from ..core.backend import BACKENDS
from ..obs.metrics import MetricsRegistry
from ..obs.quality import merge_coverage
from ..obs.reports import merge_reports
from ..obs.tracing import (
    PID_FRONT,
    PID_MERGE,
    SpanRecorder,
    assemble_service_trace,
)
from ..trace.binio import dumps_binary, loads_binary
from .client import parse_address
from .protocol import (
    DEFAULT_CREDITS,
    DEFAULT_MAX_FRAME,
    Close,
    CloseAck,
    Credit,
    ErrorMessage,
    EventsChunk,
    FrameDecoder,
    FrameTooLarge,
    HandshakeError,
    Heartbeat,
    Hello,
    HelloAck,
    ProtocolError,
    Query,
    Report,
    ServerBusy,
    SessionEvicted,
    SessionStateError,
    Sites,
    Spans,
    decode_message,
    encode_message,
)
from .shard import ShardCrashed, ShardPool

__all__ = [
    "LATENCY_BUCKETS_US",
    "QUARANTINE_RESTARTS",
    "ServerConfig",
    "TelemetryServer",
    "STATUS_SCHEMA",
]

#: schema of the live status document served on QUERY
STATUS_SCHEMA = "repro/telemetry-status/v1"

_RECV_CHUNK = 65536

#: bucket bounds for the wall-clock latency histograms, in microseconds
#: (powers of four: 4 us up to ~67 s, 13 buckets + overflow)
LATENCY_BUCKETS_US = tuple(4 ** i for i in range(1, 14))

#: a shard whose worker restarted more than this many times is flagged
#: quarantined in the health gauges (observability only — recovery
#: itself never gives up on a shard)
QUARANTINE_RESTARTS = 3

#: session manifest a graceful drain writes into the spool directory so
#: a restarted server (same ``--spool-dir``) re-adopts every session
MANIFEST_NAME = "sessions.json"


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one server; the defaults suit tests and local use."""

    address: str = "tcp://127.0.0.1:0"
    n_shards: int = 2
    #: "process" = real PipeWorker processes; "inline" = in-process shards
    shard_mode: str = "process"
    #: initial credit window granted per session in HELLO_ACK
    credits: int = DEFAULT_CREDITS
    max_frame: int = DEFAULT_MAX_FRAME
    max_sessions: int = 64
    #: chunk spool directory for crash replay (default: a temp dir the
    #: server creates and removes on stop)
    spool_dir: Optional[str] = None
    #: flight-recorder window per session (matches offline analyze)
    window: Optional[int] = None
    #: fault injection: shard -> crash before that worker's Nth chunk
    crash_plan: Optional[Dict[int, int]] = None
    #: slow-shard injection: seconds of delay per chunk (backpressure)
    chunk_delay: float = 0.0
    #: append human-readable server events to this file (CI artifacts)
    log_path: Optional[str] = None
    #: ``host:port`` for the HTTP observability endpoint (``/metrics``
    #: Prometheus text, ``/status`` JSON, ``/healthz``); None = off
    http: Optional[str] = None
    #: per-session spool disk quota in bytes (None = unlimited); a
    #: session that outgrows it is *evicted* — its progress stays
    #: durably spooled and resumable, but the connection is told to
    #: go away (ERROR ``evicted`` + ``retry_after``)
    spool_quota_bytes: Optional[int] = None
    #: aggregate spool bytes across all sessions above which the server
    #: defends itself: new sessions get BUSY and credit grants are
    #: throttled by ``throttle_delay`` (None = off)
    memory_watermark_bytes: Optional[int] = None
    #: seconds an *attached* session may go frameless before the
    #: sweeper evicts its connection (None = off); the session itself
    #: stays resumable — only the slow socket is shed
    slow_client_timeout: Optional[float] = None
    #: advisory backoff stamped on BUSY and eviction errors
    busy_retry_after: float = 1.0
    #: sleep inserted before each credit grant above the watermark
    throttle_delay: float = 0.05
    #: max seconds :meth:`TelemetryServer.drain` waits for attached
    #: sessions to finish before evicting the stragglers
    drain_timeout: float = 10.0


class _Session:
    """Registry entry for one telemetry session."""

    __slots__ = (
        "name", "detector", "backend", "shard", "applied_seq",
        "spool_path", "attached", "closed", "site_names", "last_doc",
        "chunks", "owner", "lock", "trace_id", "last_frame_at",
        "spool_bytes",
    )

    def __init__(
        self, name: str, detector: str, backend: Optional[str],
        shard: int, spool_path: Path, trace_id: int = 0,
    ) -> None:
        self.name = name
        self.detector = detector
        self.backend = backend
        self.shard = shard
        self.applied_seq = 0
        self.spool_path = spool_path
        #: server-assigned wire-tracing id (stable across resume)
        self.trace_id = trace_id
        self.attached = False
        self.closed = False
        self.site_names: Dict[int, str] = {}
        self.last_doc: Optional[Dict] = None
        self.chunks = 0
        #: the socket currently attached to this session; a resume takes
        #: over from a half-dead connection, and only the owner detaches
        self.owner: Optional[object] = None
        #: serializes the check-apply-spool-ack sequence so a takeover
        #: can never interleave with the superseded connection's frames
        self.lock = threading.Lock()
        #: monotonic stamp of the last frame on the owning connection
        #: (slow-client sweeper input)
        self.last_frame_at = time.monotonic()
        #: bytes this session has spooled (disk-quota accounting)
        self.spool_bytes = 0


def _read_spool(path: Path) -> List[List]:
    """Every spooled chunk of a session, in append order."""
    chunks: List[List] = []
    if not path.exists():
        return chunks
    data = path.read_bytes()
    pos = 0
    while pos + 4 <= len(data):
        size = int.from_bytes(data[pos : pos + 4], "little")
        pos += 4
        chunks.append(list(loads_binary(data[pos : pos + size], validate=False).events))
        pos += size
    return chunks


class TelemetryServer:
    """A streaming race-detection server (see the module docstring)."""

    def __init__(self, config: ServerConfig = ServerConfig()) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self._pool: Optional[ShardPool] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conn_socks: List[socket.socket] = []
        self._sessions: Dict[str, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._log_lock = threading.Lock()
        self._stopping = threading.Event()
        self._spool_dir: Optional[Path] = None
        self._owns_spool = False
        self._unix_path: Optional[str] = None
        self.address = config.address
        #: high-water mark of any connection's receive buffer, in bytes
        self.rx_buffer_high = 0
        #: front-tier and merge-tier span recorders (always on; span
        #: cost is per frame/fold, never per event)
        self.recorder = SpanRecorder(pid=PID_FRONT)
        self.merge_recorder = SpanRecorder(pid=PID_MERGE)
        #: span batches shipped by clients in SPANS frames
        self._client_spans: List[Dict] = []
        self._spans_lock = threading.Lock()
        self._trace_counter = 0
        self._conn_counter = 0
        #: in-flight shard dispatches per shard (queue-depth gauges)
        self._queue_depth: List[int] = [0] * config.n_shards
        self._queue_lock = threading.Lock()
        self._http_server = None
        #: bound address of the HTTP observability endpoint, once started
        self.http_address: Optional[str] = None
        #: drain lifecycle: serving -> draining -> drained -> stopped
        self._lifecycle = "serving"
        self._lifecycle_lock = threading.Lock()
        #: aggregate spooled bytes across sessions (watermark input)
        self._spool_bytes_total = 0
        #: sessions re-adopted from a previous server's manifest
        self.adopted_sessions = 0
        # prime the resilience series so scrapes and status documents
        # carry them from the first sample, not the first incident
        self.metrics.counter("net_shed_sessions")
        self.metrics.counter("net_retries_total")
        self.metrics.counter("net_throttled_credits")
        self.metrics.gauge("net_drain_seconds").set(0)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "TelemetryServer":
        cfg = self.config
        if cfg.spool_dir is not None:
            self._spool_dir = Path(cfg.spool_dir)
            self._spool_dir.mkdir(parents=True, exist_ok=True)
        else:
            self._spool_dir = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
            self._owns_spool = True
        from ..obs.provenance import DEFAULT_WINDOW

        self._pool = ShardPool(
            n_shards=cfg.n_shards,
            mode=cfg.shard_mode,
            window=cfg.window if cfg.window is not None else DEFAULT_WINDOW,
            chunk_delay=cfg.chunk_delay,
            crash_plan=cfg.crash_plan,
        )
        # a previous server's graceful drain left a manifest here: adopt
        # every spooled session *before* the listener opens, so resuming
        # clients find their sessions durably re-applied
        self._adopt_manifest()
        kind, target = parse_address(cfg.address)
        if kind == "tcp":
            host, port = target
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            self.address = f"tcp://{host}:{sock.getsockname()[1]}"
        else:
            if os.path.exists(target):
                os.unlink(target)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(target)
            self._unix_path = target
            self.address = f"unix://{target}"
        sock.listen(16)
        sock.settimeout(0.2)
        self._listener = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="telemetry-accept", daemon=True
        )
        self._accept_thread.start()
        if cfg.http:
            from .http import ObservabilityHTTPServer

            self._http_server = ObservabilityHTTPServer(self, cfg.http)
            self.http_address = self._http_server.address
            self._log(f"observability endpoint on http://{self.http_address}")
        self._log(f"serving {self.address} with {cfg.n_shards} "
                  f"{cfg.shard_mode} shard(s)")
        return self

    def stop(self) -> None:
        """Clean shutdown: finalize every session, release everything."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._http_server is not None:
            self._http_server.stop()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for sock in list(self._conn_socks):
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for thread in list(self._conn_threads):
            thread.join(timeout=5.0)
        # final fold so merged_report()/log reflect every session
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for sess in sessions:
            try:
                self._finalize_session(sess)
            except (ShardCrashed, Exception):  # pragma: no cover - defensive
                pass
        if self.config.log_path:
            self._log(
                f"stopped: {len(sessions)} session(s), "
                f"{self.metrics.counter('net_events_total').value} events, "
                f"{self._pool.worker_restarts if self._pool else 0} "
                f"worker restart(s)"
            )
        if self._pool is not None:
            self._pool.stop()
        if self._unix_path and os.path.exists(self._unix_path):
            os.unlink(self._unix_path)
        if self._owns_spool and self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        self._lifecycle = "stopped"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- graceful drain / restart --------------------------------------------

    @property
    def lifecycle(self) -> str:
        """``serving`` → ``draining`` → ``drained`` → ``stopped``."""
        return self._lifecycle

    def drain(self, timeout: Optional[float] = None) -> Dict:
        """Graceful-shutdown prologue: stop accepting, finish, flush.

        The sequence load balancers and clients can rely on:

        1. lifecycle flips to ``draining`` — ``/healthz`` starts
           answering 503 and new sessions get BUSY — and the listener
           closes, so nothing new connects;
        2. attached sessions get up to ``timeout`` seconds (default
           ``drain_timeout``) to finish their in-flight chunks; every
           chunk acknowledged during the wait is durably applied and
           spooled as usual;
        3. stragglers are evicted (ERROR ``evicted`` + ``retry_after``)
           — shed, not lost: their spools survive;
        4. every session is finalized and the manifest
           (``sessions.json``) is written into the spool directory, so
           a restarted server on the same ``--spool-dir`` re-adopts
           everything and resuming clients lose nothing.

        Idempotent; returns a small summary dict and records the wall
        clock spent in the ``net_drain_seconds`` gauge.
        """
        with self._lifecycle_lock:
            if self._lifecycle != "serving":
                return {"lifecycle": self._lifecycle, "drained": 0, "evicted": 0}
            self._lifecycle = "draining"
        drain_start = time.monotonic()
        if timeout is None:
            timeout = self.config.drain_timeout
        self._log("draining: listener closing, waiting for attached sessions")
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        deadline = drain_start + timeout
        while time.monotonic() < deadline:
            with self._sessions_lock:
                attached = [s for s in self._sessions.values() if s.attached]
            if not attached:
                break
            time.sleep(0.05)
        evicted = 0
        with self._sessions_lock:
            stragglers = [s for s in self._sessions.values() if s.attached]
        for sess in stragglers:
            self._evict(sess, f"server draining (deadline {timeout:.1f}s)")
            evicted += 1
        for thread in list(self._conn_threads):
            thread.join(timeout=2.0)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for sess in sessions:
            try:
                self._finalize_session(sess)
            except ShardCrashed as exc:  # pragma: no cover - defensive
                self._recover(exc.shard)
        self._write_manifest()
        drain_seconds = time.monotonic() - drain_start
        self.metrics.gauge("net_drain_seconds").set_max(
            round(drain_seconds, 6)
        )
        self.recorder.instant(
            "drain",
            args={"sessions": len(sessions), "evicted": evicted,
                  "seconds": round(drain_seconds, 3)},
        )
        self._lifecycle = "drained"
        self._log(
            f"drained in {drain_seconds:.3f}s: {len(sessions)} session(s) "
            f"flushed, {evicted} straggler(s) evicted"
        )
        return {
            "lifecycle": self._lifecycle,
            "drained": len(sessions),
            "evicted": evicted,
            "seconds": drain_seconds,
        }

    def _write_manifest(self) -> None:
        """Persist the session registry next to the spools."""
        if self._spool_dir is None:
            return
        with self._sessions_lock:
            sessions = sorted(self._sessions.values(), key=lambda s: s.name)
            doc = {
                "schema": STATUS_SCHEMA + "+manifest",
                "trace_counter": self._trace_counter,
                "sessions": [
                    {
                        "name": sess.name,
                        "detector": sess.detector,
                        "backend": sess.backend,
                        "spool": sess.spool_path.name,
                        "applied_seq": sess.applied_seq,
                        "chunks": sess.chunks,
                        "trace_id": sess.trace_id,
                        "closed": sess.closed,
                        "site_names": {
                            str(k): v for k, v in sess.site_names.items()
                        },
                    }
                    for sess in sessions
                ],
            }
        path = self._spool_dir / MANIFEST_NAME
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def _adopt_manifest(self) -> None:
        """Rebuild sessions a drained predecessor left in the spool dir.

        The same replay path crash recovery uses — open, site table,
        spooled chunks in order — so adopted detector state is
        byte-identical to the state the old server held, and a client
        resuming here continues exactly where its CREDIT stream stopped.
        """
        assert self._pool is not None
        if self._spool_dir is None:
            return
        path = self._spool_dir / MANIFEST_NAME
        if not path.exists():
            return
        doc = json.loads(path.read_text(encoding="utf-8"))
        for entry in doc.get("sessions", []):
            spool = self._spool_dir / entry["spool"]
            sess = _Session(
                entry["name"], entry["detector"], entry.get("backend"),
                shard=self._pool.shard_of(entry["name"]), spool_path=spool,
                trace_id=entry.get("trace_id", 0),
            )
            sess.applied_seq = entry["applied_seq"]
            sess.chunks = entry.get("chunks", 0)
            sess.closed = entry.get("closed", False)
            sess.site_names = {
                int(k): v for k, v in entry.get("site_names", {}).items()
            }
            sess.spool_bytes = spool.stat().st_size if spool.exists() else 0
            self._pool.open_session(
                sess.name, sess.detector, sess.backend, trace_id=sess.trace_id
            )
            if sess.site_names:
                self._pool.add_sites(sess.name, dict(sess.site_names))
            for events in _read_spool(sess.spool_path):
                self._pool.apply(sess.name, events, {"replay": True})
            self._finalize_session(sess)
            with self._sessions_lock:
                self._sessions[sess.name] = sess
                self._spool_bytes_total += sess.spool_bytes
            self.adopted_sessions += 1
            self._log(
                f"adopted session {sess.name} at seq {sess.applied_seq} "
                f"({sess.spool_bytes} spooled byte(s))"
            )
        self._trace_counter = max(
            self._trace_counter, doc.get("trace_counter", 0)
        )
        if self.adopted_sessions:
            self.metrics.counter("net_sessions_adopted").inc(
                self.adopted_sessions
            )
            self._log(
                f"adopted {self.adopted_sessions} session(s) from "
                f"{path.name}"
            )

    def _busy(self, why: str) -> None:
        """Refuse admission with a BUSY error carrying ``retry_after``."""
        self.metrics.counter("net_shed_sessions").inc()
        exc = ServerBusy(f"{why} — retry later")
        exc.retry_after = self.config.busy_retry_after
        raise exc

    def _evict(self, sess: _Session, why: str) -> None:
        """Shed one attached session's connection (session survives)."""
        with sess.lock:
            sock = sess.owner if sess.attached else None
            if sock is None:
                return
            self.metrics.counter("net_shed_sessions").inc()
            self.metrics.counter(
                "net_protocol_errors", code=SessionEvicted.code
            ).inc()
            self._send(
                sock,
                ErrorMessage(
                    error_code=SessionEvicted.code,
                    detail=f"session {sess.name!r} evicted: {why}",
                    retry_after=self.config.busy_retry_after,
                ),
            )
            self.recorder.instant(
                "evict", args={"session": sess.name, "why": why}
            )
            self._log(f"session {sess.name} evicted: {why}")
        # closing outside the lock: the conn thread's recv fails, and its
        # cleanup path (which takes the lock) detaches and finalizes
        try:
            sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    # -- accept / connection loops -------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                self._sweep_slow_clients()
                continue
            except OSError:
                return  # listener closed
            self._conn_socks.append(sock)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            )
            self._conn_threads.append(thread)
            thread.start()

    def _send(self, sock: socket.socket, msg) -> None:
        try:
            sock.sendall(encode_message(msg, self.config.max_frame))
        except OSError:  # pragma: no cover - peer vanished mid-send
            pass

    def _sweep_slow_clients(self) -> None:
        """Evict attached sessions whose connection went quiet too long.

        Runs on the accept loop's idle tick.  A slow client holds a
        session lock nobody else can take over (a resume would *takeover*
        only after its EOF) and pins spool/credit state; shedding the
        socket — never the session — frees the server while keeping the
        client's progress resumable.
        """
        timeout = self.config.slow_client_timeout
        if timeout is None:
            return
        now = time.monotonic()
        with self._sessions_lock:
            candidates = [
                s for s in self._sessions.values()
                if s.attached and now - s.last_frame_at > timeout
            ]
        for sess in candidates:
            self._evict(
                sess,
                f"no frame in {now - sess.last_frame_at:.1f}s "
                f"(slow-client timeout {timeout:.1f}s)",
            )

    def _serve_connection(self, sock: socket.socket) -> None:
        decoder = FrameDecoder(self.config.max_frame)
        sess: Optional[_Session] = None
        self.metrics.counter("net_connections_total").inc()
        with self._queue_lock:
            self._conn_counter += 1
            conn_tid = self._conn_counter
        self.recorder.thread_name(conn_tid, f"conn{conn_tid}")
        decode_hist = self.metrics.histogram(
            "net_frame_decode_us", buckets=LATENCY_BUCKETS_US
        )
        try:
            sock.settimeout(0.5)
            while not self._stopping.is_set():
                try:
                    data = sock.recv(_RECV_CHUNK)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    decoder.close()  # raises FrameTruncated on a partial frame
                    break
                decode_start = time.monotonic_ns()
                frames = decoder.feed(data)
                for frame in frames:
                    self.metrics.counter("net_frames_total").inc()
                    msg = decode_message(frame)
                    decode_hist.observe(
                        max((time.monotonic_ns() - decode_start) // 1000, 0)
                    )
                    sess = self._handle(sock, sess, msg, conn_tid)
                    if sess is not None:
                        sess.last_frame_at = time.monotonic()
                    decode_start = time.monotonic_ns()
                # true high-watermark: the gauge only ever rises, and the
                # hot path touches it just when a new peak is observed
                if self.metrics.gauge("net_rx_buffer_high").set_max(
                    decoder.buffer_high
                ):
                    self.rx_buffer_high = decoder.buffer_high
        except ProtocolError as exc:
            self.metrics.counter("net_protocol_errors", code=exc.code).inc()
            self._log(
                f"protocol error on {sess.name if sess else '<no session>'}: "
                f"[{exc.code}] {exc}"
            )
            self._send(
                sock,
                ErrorMessage(
                    error_code=exc.code,
                    detail=str(exc),
                    retry_after=getattr(exc, "retry_after", 0.0),
                ),
            )
        finally:
            if sess is not None:
                with sess.lock:
                    detached = sess.attached and sess.owner is sock
                    if detached:
                        # disconnect without CLOSE: the session stays
                        # resumable, but fold its progress so nothing is
                        # lost from the merge (a resume that already took
                        # over owns the session now — leave it alone)
                        sess.attached = False
                        sess.owner = None
                        self.metrics.counter("net_disconnects_total").inc()
                        self._log(
                            f"session {sess.name} disconnected at seq "
                            f"{sess.applied_seq}"
                        )
                        try:
                            self._finalize_session(sess)
                        except ShardCrashed as exc:  # pragma: no cover
                            self._recover(exc.shard)
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    # -- message handling ----------------------------------------------------

    def _handle(
        self, sock, sess: Optional[_Session], msg, conn_tid: int = 0
    ) -> Optional[_Session]:
        if isinstance(msg, Hello):
            return self._handle_hello(sock, sess, msg, conn_tid)
        if isinstance(msg, Heartbeat):
            self._send(sock, Heartbeat(nonce=msg.nonce))
            self.metrics.counter("net_heartbeats_total").inc()
            return sess
        if isinstance(msg, Query):
            doc = self.query_doc()
            if msg.trace:
                doc = dict(doc, trace=self.trace_doc())
            try:
                self._send(sock, Report(doc=doc))
            except FrameTooLarge:
                # a span-heavy trace can outgrow the frame ceiling; the
                # report itself still has to get through
                doc.pop("trace", None)
                doc["trace_truncated"] = True
                self._send(sock, Report(doc=doc))
            return sess
        if isinstance(msg, (HelloAck, Credit, CloseAck, Report, ErrorMessage)):
            raise SessionStateError(
                f"client sent a server-only frame "
                f"({type(msg).__name__.lower()})"
            )
        if sess is None:
            raise SessionStateError(
                f"{type(msg).__name__.lower()} before hello: open a session first"
            )
        if isinstance(msg, EventsChunk):
            self._handle_events(sock, sess, msg, conn_tid)
            return sess
        if isinstance(msg, Sites):
            sess.site_names.update(msg.sites)
            self._shard_call(sess, lambda: self._pool.add_sites(sess.name, msg.sites))
            return sess
        if isinstance(msg, Spans):
            self._handle_spans(sess, msg)
            return sess
        if isinstance(msg, Close):
            self._handle_close(sock, sess, msg)
            return sess
        raise SessionStateError(f"unhandled message {type(msg).__name__}")

    def _handle_spans(self, sess: _Session, spans: Spans) -> None:
        """Store a client's span batch for the merged service trace."""
        group = {
            "pid": spans.pid,
            "name": spans.name,
            "events": list(spans.events),
            "dropped": spans.dropped,
        }
        stall_hist = self.metrics.histogram(
            "net_credit_stall_us", buckets=LATENCY_BUCKETS_US
        )
        retries = 0
        for ev in spans.events:
            # fold client-observed credit stalls into the scrape metrics
            if ev.get("ph") == "X" and ev.get("name") == "credit-stall":
                dur = ev.get("dur")
                if isinstance(dur, (int, float)) and dur >= 0:
                    stall_hist.observe(int(dur))
            # mine client-recorded reconnects: the server-side view of
            # wire instability, without touching per-session metrics
            elif ev.get("ph") == "i" and ev.get("name") == "reconnect":
                retries += 1
        if retries:
            # re-shipped batches replace the previous one (below), so
            # count only the growth since this sender's last batch
            with self._spans_lock:
                prior = next(
                    (
                        sum(
                            1 for pev in g["events"]
                            if pev.get("ph") == "i"
                            and pev.get("name") == "reconnect"
                        )
                        for g in self._client_spans
                        if (g["pid"], g["name"]) == (spans.pid, spans.name)
                    ),
                    0,
                )
            if retries > prior:
                self.metrics.counter("net_retries_total").inc(retries - prior)
        with self._spans_lock:
            # one batch per (pid, name): a resume re-ships the whole
            # buffer, so keep only the latest batch from each sender
            self._client_spans = [
                g for g in self._client_spans
                if (g["pid"], g["name"]) != (group["pid"], group["name"])
            ]
            self._client_spans.append(group)
        self.metrics.counter("net_span_batches_total").inc()

    def _handle_hello(
        self, sock, conn_sess, hello: Hello, conn_tid: int = 0
    ) -> _Session:
        admit_start = self.recorder.begin()
        if conn_sess is not None:
            raise SessionStateError(
                f"second hello on one connection (session "
                f"{conn_sess.name!r} already open)"
            )
        assert self._pool is not None and self._spool_dir is not None
        if hello.detector not in DETECTOR_FACTORIES:
            raise HandshakeError(
                f"unknown detector {hello.detector!r} "
                f"(choices: {', '.join(sorted(DETECTOR_FACTORIES))})"
            )
        if hello.backend is not None and hello.backend not in BACKENDS:
            raise HandshakeError(
                f"unknown state backend {hello.backend!r} "
                f"(choices: {', '.join(BACKENDS)})"
            )
        with self._sessions_lock:
            sess = self._sessions.get(hello.session)
            if hello.resume:
                if sess is None:
                    raise HandshakeError(
                        f"cannot resume unknown session {hello.session!r}"
                    )
                resumed = True
            else:
                if sess is not None:
                    raise HandshakeError(
                        f"session {hello.session!r} already exists "
                        f"(reconnect with resume)"
                    )
                # admission control: a *new* session can be refused with
                # BUSY ("try later"); resumes always pass — they finish
                # work the server already holds state for
                if self._lifecycle != "serving":
                    self._busy(f"server is {self._lifecycle}")
                if len(self._sessions) >= self.config.max_sessions:
                    self._busy(
                        f"session limit reached "
                        f"({self.config.max_sessions} sessions)"
                    )
                watermark = self.config.memory_watermark_bytes
                if (
                    watermark is not None
                    and self._spool_bytes_total >= watermark
                ):
                    self._busy(
                        f"memory watermark exceeded "
                        f"({self._spool_bytes_total} >= {watermark} "
                        f"spooled byte(s))"
                    )
                spool = self._spool_dir / f"{len(self._sessions):04d}.spool"
                self._trace_counter += 1
                sess = _Session(
                    hello.session, hello.detector, hello.backend,
                    shard=self._pool.shard_of(hello.session), spool_path=spool,
                    trace_id=self._trace_counter,
                )
                sess.attached = True
                sess.owner = sock
                self._sessions[hello.session] = sess
                resumed = False
        # shard and session-lock work happens outside the registry lock
        # (lock order is session lock -> shard lock -> registry lock:
        # recovery holds the shard lock while briefly taking the registry)
        if resumed:
            with sess.lock:
                if sess.attached:
                    # the previous connection died without a clean CLOSE
                    # and its EOF hasn't surfaced yet: the resume takes
                    # over (the owner token fences the stale connection,
                    # and holding the session lock means no frame of its
                    # is mid-apply while we flip the owner)
                    self.metrics.counter("net_session_takeovers").inc()
                    self._log(f"session {sess.name} taken over by resume")
                sess.attached = True
                sess.owner = sock
                sess.closed = False
        if not resumed:
            self._shard_call(
                sess,
                lambda: self._pool.open_session(
                    sess.name, sess.detector, sess.backend,
                    trace_id=sess.trace_id,
                ),
            )
            self.metrics.counter("net_sessions_opened").inc()
            self._log(
                f"session {sess.name} opened (detector {sess.detector}, "
                f"shard {sess.shard})"
            )
        else:
            self.metrics.counter("net_sessions_resumed").inc()
            self._log(f"session {sess.name} resumed at seq {sess.applied_seq}")
        self.recorder.span(
            "session-admission",
            admit_start,
            tid=conn_tid,
            args={
                "session": sess.name,
                "resumed": resumed,
                "shard": sess.shard,
                "trace_id": sess.trace_id,
            },
        )
        self._send(
            sock,
            HelloAck(
                session=sess.name,
                resume_seq=sess.applied_seq,
                credits=self.config.credits,
                trace_id=sess.trace_id,
            ),
        )
        return sess

    def _handle_events(
        self, sock, sess: _Session, chunk: EventsChunk, conn_tid: int = 0
    ) -> None:
        with sess.lock:
            if sess.owner is not sock:
                # a resume took this session over while our frame was in
                # flight; the new connection retransmits anything unacked
                raise SessionStateError(
                    f"connection superseded on session {sess.name!r}"
                )
            if sess.closed:
                raise SessionStateError(
                    f"events after close on session {sess.name!r}"
                )
            if chunk.seq <= sess.applied_seq:
                # duplicate retransmit after a resume: already durably
                # applied, so just re-acknowledge
                self.metrics.counter("net_duplicate_chunks").inc()
                self._send(sock, Credit(ack=sess.applied_seq, credits=1))
                return
            if chunk.seq != sess.applied_seq + 1:
                raise SessionStateError(
                    f"sequence gap on session {sess.name!r}: got chunk "
                    f"{chunk.seq}, expected {sess.applied_seq + 1}"
                )
            events = list(chunk.events)
            meta = {"seq": chunk.seq, "sent_ns": chunk.sent_ns, "replay": False}
            dispatch_start = self.recorder.begin()
            _races, lag_us = self._shard_call(
                sess, lambda: self._pool.apply(sess.name, events, meta)
            )
            # the dispatch span is the front tier's backpressure wait:
            # its width is how long this chunk queued behind its shard
            self.recorder.span(
                "shard-dispatch",
                dispatch_start,
                tid=conn_tid,
                args={"session": sess.name, "seq": chunk.seq,
                      "shard": sess.shard, "events": len(events)},
            )
            if lag_us >= 0:
                self.metrics.histogram(
                    "net_chunk_lag_us", buckets=LATENCY_BUCKETS_US
                ).observe(lag_us)
            payload = dumps_binary(events)
            with open(sess.spool_path, "ab") as fh:
                fh.write(len(payload).to_bytes(4, "little"))
                fh.write(payload)
            sess.applied_seq = chunk.seq
            sess.chunks += 1
            spooled = 4 + len(payload)
            sess.spool_bytes += spooled
            with self._sessions_lock:
                self._spool_bytes_total += spooled
                spool_total = self._spool_bytes_total
            self.metrics.counter("net_chunks_total").inc()
            self.metrics.counter("net_events_total").inc(len(events))
            self.metrics.gauge("net_spool_bytes").set_max(spool_total)
            quota = self.config.spool_quota_bytes
            if quota is not None and sess.spool_bytes > quota:
                # the chunk itself is durably applied and spooled — ack
                # it, then shed the connection: the named eviction error
                # (with retry advice) is the last frame this socket sees
                self._send(sock, Credit(ack=chunk.seq, credits=1))
                self.metrics.counter("net_shed_sessions").inc()
                exc = SessionEvicted(
                    f"session {sess.name!r} exceeded its spool quota "
                    f"({sess.spool_bytes} > {quota} byte(s))"
                )
                exc.retry_after = self.config.busy_retry_after
                raise exc
            watermark = self.config.memory_watermark_bytes
            if watermark is not None and spool_total >= watermark:
                # overload defense: grant the credit late, so the whole
                # client fleet's send rate degrades before memory does
                self.metrics.counter("net_throttled_credits").inc()
                time.sleep(self.config.throttle_delay)
            self._send(sock, Credit(ack=chunk.seq, credits=1))

    def _handle_close(self, sock, sess: _Session, close: Close) -> None:
        with sess.lock:
            if sess.owner is not sock:
                raise SessionStateError(
                    f"connection superseded on session {sess.name!r}"
                )
            if close.seq != sess.applied_seq:
                raise SessionStateError(
                    f"close at seq {close.seq} but only {sess.applied_seq} "
                    f"chunk(s) were applied on session {sess.name!r}"
                )
            doc = self._finalize_session(sess)
            sess.closed = True
            sess.attached = False
            sess.owner = None
        self.metrics.counter("net_sessions_closed").inc()
        self._log(
            f"session {sess.name} closed: {doc['events']} events, "
            f"{doc['races']} race report(s), {doc['distinct_races']} distinct"
        )
        self._send(
            sock,
            CloseAck(
                summary={
                    "session": sess.name,
                    "events": doc["events"],
                    "races": doc["races"],
                    "distinct_races": doc["distinct_races"],
                    "chunks": sess.chunks,
                }
            ),
        )

    # -- shard plumbing ------------------------------------------------------

    def _shard_call(self, sess: _Session, call):
        """Run one shard request, recovering (once) from a worker crash.

        Also samples the shard's dispatch queue depth (requests in
        flight or waiting on the shard's pipe lock) into the per-shard
        gauge and the depth histogram — the service-level view of how
        hot each shard runs.
        """
        shard = sess.shard
        with self._queue_lock:
            self._queue_depth[shard] += 1
            depth = self._queue_depth[shard]
            self.metrics.gauge("net_shard_queue_depth", shard=shard).set(depth)
            self.metrics.histogram("net_shard_queue_depth_hist").observe(depth)
        try:
            try:
                return call()
            except ShardCrashed as exc:
                self._recover(exc.shard)
                return call()
        finally:
            with self._queue_lock:
                self._queue_depth[shard] -= 1
                self.metrics.gauge(
                    "net_shard_queue_depth", shard=shard
                ).set(self._queue_depth[shard])

    def _recover(self, shard: int) -> None:
        """Respawn a dead shard worker and replay its sessions' spools."""
        assert self._pool is not None
        recover_start = self.recorder.begin()
        replayed_chunks = [0]

        def replay(call) -> None:
            with self._sessions_lock:
                owned = [
                    s for s in self._sessions.values() if s.shard == shard
                ]
            for sess in sorted(owned, key=lambda s: s.name):
                call(("open", sess.name, sess.detector, sess.backend,
                      sess.trace_id))
                if sess.site_names:
                    call(("sites", sess.name, dict(sess.site_names)))
                for events in _read_spool(sess.spool_path):
                    call(("events", sess.name, events, {"replay": True}))
                    replayed_chunks[0] += 1
                self._log(
                    f"replayed session {sess.name}: {sess.applied_seq} "
                    f"spooled chunk(s)"
                )

        self.metrics.counter("net_shard_crashes").inc()
        self._log(f"shard {shard} crashed; respawning and replaying spools")
        if self._pool.recover(shard, replay):
            self.metrics.counter("net_worker_restarts").inc()
            self.recorder.span(
                "crash-recovery",
                recover_start,
                tid=0,
                args={"shard": shard, "replayed_chunks": replayed_chunks[0]},
            )

    def _finalize_session(self, sess: _Session) -> Dict:
        doc = self._shard_call(sess, lambda: self._pool.finalize(sess.name))
        sess.last_doc = doc
        return doc

    # -- merge tier ----------------------------------------------------------

    def query_doc(self, refresh: bool = True) -> Dict:
        """The live status document: merged report, roster, metrics.

        ``refresh=True`` re-finalizes every session on its shard first
        (cheap — finalize is absolute-valued and re-entrant), so the
        answer always reflects every durably applied chunk.
        """
        fold_start = self.merge_recorder.begin()
        with self._sessions_lock:
            sessions = sorted(self._sessions.values(), key=lambda s: s.name)
        if refresh:
            for sess in sessions:
                try:
                    self._finalize_session(sess)
                except ShardCrashed as exc:
                    self._recover(exc.shard)
                    self._finalize_session(sess)
        docs = [sess.last_doc for sess in sessions if sess.last_doc]
        self._update_shard_health()
        coverage = merge_coverage(
            [d["coverage"] for d in docs if d.get("coverage")],
            source="telemetry",
        )
        self._update_quality_gauges(coverage)
        merged_metrics = MetricsRegistry()
        merged_metrics.merge(self.metrics)
        for doc in docs:
            merged_metrics.merge_snapshot(doc["metrics"])
        roster = [
            {
                "session": sess.name,
                "state": (
                    "closed" if sess.closed
                    else "attached" if sess.attached
                    else "detached"
                ),
                "shard": sess.shard,
                "applied_seq": sess.applied_seq,
                "events": (sess.last_doc or {}).get("events", 0),
                "races": (sess.last_doc or {}).get("races", 0),
                "distinct_races": (sess.last_doc or {}).get("distinct_races", 0),
            }
            for sess in sessions
        ]
        doc = {
            "schema": STATUS_SCHEMA,
            "address": self.address,
            "sessions": roster,
            "report": merge_reports(
                [doc["report"] for doc in docs], source="telemetry"
            ),
            "coverage": coverage,
            "metrics": merged_metrics.snapshot(),
            "server": {
                "worker_restarts": self._pool.worker_restarts if self._pool else 0,
                "rx_buffer_high": self.rx_buffer_high,
                "shards": self.config.n_shards,
                "shard_mode": self.config.shard_mode,
                "lifecycle": self._lifecycle,
                "resilience": {
                    "shed_sessions": self.metrics.counter(
                        "net_shed_sessions"
                    ).value,
                    "retries": self.metrics.counter(
                        "net_retries_total"
                    ).value,
                    "throttled_credits": self.metrics.counter(
                        "net_throttled_credits"
                    ).value,
                    "drain_seconds": self.metrics.gauge(
                        "net_drain_seconds"
                    ).value,
                    "adopted_sessions": self.adopted_sessions,
                    "spool_bytes": self._spool_bytes_total,
                },
            },
        }
        self.merge_recorder.span(
            "status-fold",
            fold_start,
            args={"sessions": len(sessions), "refresh": refresh},
        )
        return doc

    def _update_shard_health(self) -> None:
        """Refresh the per-shard health and quarantine gauges."""
        pool = self._pool
        if pool is None:
            return
        for shard in range(pool.n_shards):
            restarts = pool.restarts_by_shard[shard]
            self.metrics.gauge("net_shard_up", shard=shard).set(
                1 if pool.alive(shard) else 0
            )
            self.metrics.gauge("net_shard_restarts", shard=shard).set(restarts)
            self.metrics.gauge("net_shard_quarantined", shard=shard).set(
                1 if restarts > QUARANTINE_RESTARTS else 0
            )

    def _update_quality_gauges(self, coverage: Dict) -> None:
        """Refresh the detection-quality gauges from a merged coverage doc.

        These live in the *server's* registry only (like the ``net_*``
        series), so per-session metrics stay byte-identical to the same
        trace analyzed offline.
        """
        self.metrics.gauge("pacer_effective_rate").set(
            coverage["sync"]["effective_rate"]
        )
        self.metrics.gauge("pacer_expected_detection").set(
            coverage["estimate"]["expected_detection"]
        )
        self.metrics.gauge("pacer_coverage_deficit").set(
            coverage["estimate"]["coverage_deficit"]
        )

    def merged_report(self, refresh: bool = True) -> Dict:
        """Just the merged ``repro/race-report/v1`` document."""
        return self.query_doc(refresh=refresh)["report"]

    # -- observability surfaces ----------------------------------------------

    def trace_doc(self) -> Dict:
        """One merged Perfetto document spanning every service process.

        Folds the front tier's and merge tier's recorders, every live
        shard worker's span buffer, and any span batches clients shipped
        in SPANS frames into a single Chrome trace-event JSON object
        with rebased timestamps and validated flow arrows.
        """
        groups: List[Dict] = [
            {
                "pid": PID_FRONT,
                "name": "front",
                "events": self.recorder.snapshot(),
                "dropped": self.recorder.dropped,
            },
            {
                "pid": PID_MERGE,
                "name": "merge",
                "events": self.merge_recorder.snapshot(),
                "dropped": self.merge_recorder.dropped,
            },
        ]
        if self._pool is not None:
            groups.extend(self._pool.trace_groups())
        with self._spans_lock:
            groups.extend(self._client_spans)
        return assemble_service_trace(groups)

    def write_trace(self, path) -> None:
        """Write the merged service trace as JSON (CI artifact helper)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.trace_doc(), fh, sort_keys=True)
            fh.write("\n")

    def metrics_registry(self, refresh: bool = False) -> MetricsRegistry:
        """Server metrics merged with every session's snapshot.

        ``refresh=False`` folds the docs captured at the last finalize —
        cheap enough for a scrape endpoint hit every few seconds.
        """
        if refresh:
            merged = MetricsRegistry()
            merged.merge_snapshot(self.query_doc()["metrics"])
            return merged
        self._update_shard_health()
        with self._sessions_lock:
            docs = [
                s.last_doc for s in self._sessions.values() if s.last_doc
            ]
        # quality gauges must land in self.metrics before the fold below
        self._update_quality_gauges(
            merge_coverage(
                [d["coverage"] for d in docs if d.get("coverage")],
                source="telemetry",
            )
        )
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for doc in sorted(docs, key=lambda d: d["session"]):
            merged.merge_snapshot(doc["metrics"])
        return merged

    def prometheus_text(self, refresh: bool = False) -> str:
        """The ``/metrics`` scrape body (Prometheus text format)."""
        from ..obs.prom import render_prometheus

        return render_prometheus(self.metrics_registry(refresh=refresh).snapshot())

    def write_metrics(self, path) -> None:
        """Dump the final mergeable metrics snapshot (``--metrics-out``).

        Safe after :meth:`stop`: shutdown finalizes every session, so
        the fold over captured docs is complete without touching shards.
        """
        self.metrics_registry(refresh=False).write_json(path)

    def session_doc(self, name: str, refresh: bool = True) -> Dict:
        """One session's full result document (report, counters, metrics)."""
        with self._sessions_lock:
            sess = self._sessions[name]
        if refresh or sess.last_doc is None:
            return self._finalize_session(sess)
        return sess.last_doc

    @property
    def session_names(self) -> List[str]:
        with self._sessions_lock:
            return sorted(self._sessions)

    @property
    def worker_restarts(self) -> int:
        return self._pool.worker_restarts if self._pool else 0

    # -- logging -------------------------------------------------------------

    def _log(self, line: str) -> None:
        if not self.config.log_path:
            return
        with self._log_lock:
            with open(self.config.log_path, "a", encoding="utf-8") as fh:
                fh.write(f"[{time.strftime('%H:%M:%S')}] {line}\n")

    def write_status(self, path) -> None:
        """Write the query document as JSON (CI artifact helper)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.query_doc(), fh, indent=2, sort_keys=True)
            fh.write("\n")
