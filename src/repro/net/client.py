"""Telemetry clients: stream traces or live programs to a server.

Two layers:

* :class:`TelemetryClient` — the wire client.  Single-threaded and
  synchronous by design (deterministic, lock-free): it sends EVENTS
  frames while it holds credits, and when the window is exhausted it
  *blocks* reading frames until the server returns a CREDIT — that stall
  is the backpressure mechanism, counted in :attr:`credit_waits` so the
  soak suite can prove the window actually closed.  Every sent chunk
  stays in the unacked buffer until its CREDIT ``ack`` arrives, which is
  what makes :meth:`reconnect` (HELLO with ``resume``) lossless: the
  server names its last durably applied sequence number and the client
  retransmits everything newer.

* :class:`TelemetryMonitor` — the :class:`~repro.live.RaceMonitor`-backed
  shim.  A real threaded program uses the same ``shared``/``lock``/
  ``volatile``/``thread`` API as local monitoring, but the detector slot
  holds a :class:`ForwardingDetector` that buffers events instead of
  analyzing them, interning the monitor's ``file:line`` site strings to
  integers (the binary wire format carries varint sites); the name table
  ships in SITES frames so server-side race reports still point at real
  source lines.  Analysis happens wherever the server's shard workers
  live — the monitored process pays only for buffering and framing.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.tracing import PID_CLIENT_BASE, SpanRecorder, chunk_flow_id
from ..trace.events import SBEGIN, SEND, Event
from .protocol import (
    DEFAULT_MAX_FRAME,
    Close,
    CloseAck,
    Credit,
    ErrorMessage,
    EventsChunk,
    FrameDecoder,
    FrameTruncated,
    Heartbeat,
    Hello,
    HelloAck,
    ProtocolError,
    Query,
    Report,
    Sites,
    Spans,
    chunk_events,
    decode_message,
    encode_message,
)

__all__ = [
    "ForwardingDetector",
    "TelemetryClient",
    "TelemetryMonitor",
    "parse_address",
    "query_server",
]

DEFAULT_CHUNK_SIZE = 512


def parse_address(address: str) -> Tuple[str, object]:
    """Parse ``tcp://host:port`` or ``unix:///path`` into (kind, target)."""
    if address.startswith("tcp://"):
        rest = address[len("tcp://"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(f"tcp address needs host:port, got {address!r}")
        try:
            return ("tcp", (host, int(port)))
        except ValueError:
            raise ValueError(f"bad port in address {address!r}") from None
    if address.startswith("unix://"):
        path = address[len("unix://"):]
        if not path:
            raise ValueError(f"unix address needs a path, got {address!r}")
        return ("unix", path)
    raise ValueError(
        f"address must start with tcp:// or unix://, got {address!r}"
    )


class TelemetryClient:
    """One session's connection to a telemetry server."""

    def __init__(
        self,
        address: str,
        session: str,
        detector: str = "fasttrack",
        backend: Optional[str] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float = 30.0,
        trace: bool = True,
    ) -> None:
        self.address = address
        self.session = session
        self.detector = detector
        self.backend = backend
        self.chunk_size = chunk_size
        self.max_frame = max_frame
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(max_frame)
        self._inbox: List = []
        self.credits = 0
        #: next EVENTS sequence number to assign
        self.next_seq = 1
        #: chunks sent but not yet CREDIT-acknowledged, oldest first
        self.unacked: List[EventsChunk] = []
        #: times send_events blocked on an exhausted credit window
        self.credit_waits = 0
        self.events_sent = 0
        self.last_summary: Optional[Dict] = None
        #: the transport/protocol error a failed :meth:`close` swallowed
        #: (None after a clean close) — retry layers inspect this
        self.close_error: Optional[Exception] = None
        #: wire-propagated tracing (connect/handshake/chunk-send/resume
        #: spans plus ``sent_ns`` chunk stamps); spans ship in a SPANS
        #: frame before CLOSE.  Cost is per chunk, never per event.
        self.trace = trace
        self.trace_id = 0
        self.recorder: Optional[SpanRecorder] = None

    # -- connection ----------------------------------------------------------

    def _open(self) -> None:
        """Open the transport without speaking (used by query-only peers)."""
        kind, target = parse_address(self.address)
        if kind == "tcp":
            sock = socket.create_connection(target, timeout=self.timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(target)
        self._sock = sock
        self._decoder = FrameDecoder(self.max_frame)
        self._inbox = []

    def connect(self, resume: bool = False) -> HelloAck:
        """Open the socket and perform the versioned handshake.

        With ``resume=True`` the server replies with its last durably
        applied sequence number; chunks at or below it are dropped from
        the unacked buffer (they survived server-side) and newer ones
        are retransmitted in order.
        """
        connect_start = time.monotonic_ns() // 1000
        self._open()
        opened_at = time.monotonic_ns() // 1000
        self._send(
            Hello(
                session=self.session,
                detector=self.detector,
                backend=self.backend,
                resume=resume,
            )
        )
        ack = self._wait_for(HelloAck)
        self.credits = ack.credits
        if self.trace and ack.trace_id:
            self.trace_id = ack.trace_id
            if self.recorder is None:
                self.recorder = SpanRecorder(pid=PID_CLIENT_BASE + ack.trace_id)
                self.recorder.thread_name(0, self.session)
            self.recorder.span(
                "connect", connect_start, args={"address": self.address}
            )
            self.recorder.span(
                "resume" if resume else "handshake",
                opened_at,
                args={"session": self.session, "resume_seq": ack.resume_seq,
                      "credits": ack.credits},
            )
        if resume:
            self.unacked = [c for c in self.unacked if c.seq > ack.resume_seq]
            retransmit = self.unacked
            self.unacked = []
            idx = 0
            try:
                while idx < len(retransmit):
                    self._send_chunk(retransmit[idx])
                    idx += 1
                    while self.credits <= 0:
                        self.credit_waits += 1
                        self._pump()
            except BaseException:
                # exception-safe retransmit: the unsent tail must stay
                # in the unacked buffer or the next resume would skip
                # it and trip the server's sequence-gap check
                have = {c.seq for c in self.unacked}
                self.unacked.extend(
                    c for c in retransmit[idx:] if c.seq not in have
                )
                self.unacked.sort(key=lambda c: c.seq)
                raise
        return ack

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def abort(self) -> None:
        """Drop the connection without CLOSE (a dying client)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self.credits = 0

    def reconnect(self) -> HelloAck:
        """Resume this session on a fresh connection."""
        self.abort()
        return self.connect(resume=True)

    # -- wire plumbing -------------------------------------------------------

    def _send(self, msg) -> None:
        if self._sock is None:
            raise ProtocolError("client is not connected")
        self._sock.sendall(encode_message(msg, self.max_frame))

    def _pump(self) -> None:
        """Block until at least one frame arrives and absorb it.

        CREDIT frames update the window and the unacked buffer in place;
        anything else lands in the inbox for :meth:`_wait_for`.  Returns
        after the first recv that completes a frame, so credit-only
        traffic still makes progress visible to the caller's loop.
        """
        assert self._sock is not None
        progressed = False
        while not progressed:
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                raise ProtocolError(
                    f"no frame from {self.address} within {self.timeout}s"
                ) from None
            if not data:
                self._decoder.close()
                raise FrameTruncated(
                    "server closed the connection mid-conversation"
                )
            for frame in self._decoder.feed(data):
                progressed = True
                msg = decode_message(frame)
                if isinstance(msg, Credit):
                    self.credits += msg.credits
                    self.unacked = [c for c in self.unacked if c.seq > msg.ack]
                elif isinstance(msg, ErrorMessage):
                    raise msg.to_exception()
                else:
                    self._inbox.append(msg)

    def _wait_for(self, kind):
        while True:
            for i, msg in enumerate(self._inbox):
                if isinstance(msg, kind):
                    return self._inbox.pop(i)
            self._pump()

    # -- session operations --------------------------------------------------

    def _send_chunk(self, chunk: EventsChunk) -> None:
        """Stamp, trace, send, and track one EVENTS chunk (one credit)."""
        start = self.recorder.begin() if self.recorder is not None else 0
        if self.trace and self.trace_id:
            # fresh stamp per (re)transmit so chunk lag is measured from
            # the send that actually reached the server
            chunk = EventsChunk(
                seq=chunk.seq, events=chunk.events, sent_ns=time.monotonic_ns()
            )
        self._send(chunk)
        if self.recorder is not None:
            self.recorder.span(
                "chunk-send",
                start,
                args={"seq": chunk.seq, "events": len(chunk.events)},
                flow=chunk_flow_id(self.trace_id, chunk.seq),
            )
        self.credits -= 1
        self.unacked.append(chunk)

    def send_events(self, events: Sequence[Event]) -> None:
        """Stream events as sequenced chunks, honoring the credit window."""
        for chunk in chunk_events(list(events), self.chunk_size, self.next_seq):
            stall_start: Optional[int] = None
            while self.credits <= 0:
                if stall_start is None and self.recorder is not None:
                    stall_start = self.recorder.begin()
                self.credit_waits += 1
                self._pump()
            if stall_start is not None:
                self.recorder.span(
                    "credit-stall", stall_start, args={"before_seq": chunk.seq}
                )
            self._send_chunk(chunk)
            self.next_seq = chunk.seq + 1
            self.events_sent += len(chunk.events)

    def send_sites(self, sites: Dict[int, str]) -> None:
        """Ship (part of) the site-id -> source-location name table."""
        if sites:
            self._send(Sites(sites=dict(sites)))

    def heartbeat(self, nonce: int = 1) -> None:
        """Liveness round-trip; raises if the echo doesn't match."""
        self._send(Heartbeat(nonce=nonce))
        echo = self._wait_for(Heartbeat)
        if echo.nonce != nonce:
            raise ProtocolError(
                f"heartbeat echo mismatch: sent {nonce}, got {echo.nonce}"
            )

    def drain(self) -> None:
        """Block until every sent chunk has been CREDIT-acknowledged.

        Exception-safe: if the transport dies mid-drain the connection
        is aborted (socket released, state consistent for a resume)
        *before* the error propagates, and calling again on a dead
        client with nothing pending is a no-op rather than an error.
        """
        if not self.unacked:
            return
        if self._sock is None:
            raise ProtocolError(
                f"cannot drain {len(self.unacked)} unacked chunk(s): "
                f"client is not connected (reconnect with resume)"
            )
        try:
            while self.unacked:
                self._pump()
        except (OSError, ProtocolError):
            self.abort()
            raise

    def query(self, trace: bool = False) -> Dict:
        """The server's live status document (merged report + roster).

        ``trace=True`` asks for the merged service trace too
        (``doc["trace"]``, absent if it outgrew the frame ceiling).
        """
        self._send(Query(trace=trace))
        return self._wait_for(Report).doc

    def ship_spans(self) -> int:
        """Send the recorder's spans in a SPANS frame; returns the count.

        Keeps the local buffer (a resume re-ships the grown batch; the
        server keeps only the latest batch per sender).
        """
        if self.recorder is None or not len(self.recorder):
            return 0
        events = self.recorder.snapshot()
        self._send(
            Spans(
                pid=self.recorder.pid,
                name=f"client-{self.session}",
                events=tuple(events),
                dropped=self.recorder.dropped,
            )
        )
        return len(events)

    def close(self) -> Dict:
        """Drain, send CLOSE, await the summary, drop the connection.

        Idempotent and exception-safe: closing an already-closed client
        returns the cached summary, and a peer that crashes mid-close
        no longer raises out of the ``with`` block — the connection is
        aborted, the best-known summary is returned, and the swallowed
        error is kept in :attr:`close_error` so retry layers (and
        tests) can see what happened.  The session itself stays
        resumable server-side; nothing acknowledged is lost.
        """
        if self._sock is None:
            return self.last_summary or {}
        self.close_error = None
        try:
            self.drain()
            self.ship_spans()
            self._send(Close(seq=self.next_seq - 1))
            ack = self._wait_for(CloseAck)
        except (OSError, ProtocolError) as exc:
            self.close_error = exc
            self.abort()
            return self.last_summary or {}
        self.last_summary = ack.summary
        self.abort()
        return ack.summary

    def __enter__(self) -> "TelemetryClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        if self.connected:
            if exc[0] is None:
                self.close()
            else:
                self.abort()


def query_server(address: str, timeout: float = 10.0, trace: bool = False) -> Dict:
    """One-shot sessionless status query: QUERY in, REPORT doc out.

    The server answers QUERY before any HELLO, so dashboards and
    ``repro report --follow`` can poll without owning a session.
    ``trace=True`` also requests the merged service trace document.
    """
    client = TelemetryClient(address, session="-query-", timeout=timeout)
    client._open()
    try:
        client._send(Query(trace=trace))
        return client._wait_for(Report).doc
    finally:
        client.abort()


# -- the RaceMonitor-backed shim ----------------------------------------------


class ForwardingDetector:
    """A detector-shaped event buffer for :class:`TelemetryMonitor`.

    Implements exactly the surface :class:`~repro.live.RaceMonitor`
    touches — the typed event methods, ``races``/``distinct_races``/
    ``_events_seen``, ``begin_sampling``/``end_sampling`` — but performs
    no analysis: every call appends an :class:`~repro.trace.events.Event`
    to a buffer the shim flushes over the wire.  The monitor's string
    sites (``file:line``) are interned to dense integers here;
    :attr:`new_sites` collects not-yet-shipped name-table entries.
    """

    name = "forwarding"
    backend_name = "remote"

    def __init__(self, on_chunk: Optional[Callable[[], None]] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.buffer: List[Event] = []
        self.races: List = []
        self.distinct_races: set = set()
        self._events_seen = 0
        self.observer = None
        self._site_ids: Dict[str, int] = {}
        self.new_sites: Dict[int, str] = {}
        self._on_chunk = on_chunk
        self._chunk_size = chunk_size

    def _site_id(self, site) -> int:
        if isinstance(site, int):
            return site
        sid = self._site_ids.get(site)
        if sid is None:
            sid = self._site_ids[site] = len(self._site_ids) + 1
            self.new_sites[sid] = site
        return sid

    def _emit(self, kind: str, tid: int, target: int, site=0) -> None:
        self.buffer.append(Event(kind, tid, target, self._site_id(site)))
        if (
            self._on_chunk is not None
            and len(self.buffer) >= self._chunk_size
        ):
            self._on_chunk()

    # the typed surface RaceMonitor dispatches to
    def read(self, tid, var, site=0):
        self._emit("rd", tid, var, site)

    def write(self, tid, var, site=0):
        self._emit("wr", tid, var, site)

    def acquire(self, tid, lock, site=0):
        self._emit("acq", tid, lock, site)

    def release(self, tid, lock, site=0):
        self._emit("rel", tid, lock, site)

    def fork(self, tid, child, site=0):
        self._emit("fork", tid, child, site)

    def join(self, tid, child, site=0):
        self._emit("join", tid, child, site)

    def vol_read(self, tid, vol, site=0):
        self._emit("vol_rd", tid, vol, site)

    def vol_write(self, tid, vol, site=0):
        self._emit("vol_wr", tid, vol, site)

    def begin_sampling(self):
        self.buffer.append(Event(SBEGIN, -1, 0, 0))

    def end_sampling(self):
        self.buffer.append(Event(SEND, -1, 0, 0))

    def take(self) -> List[Event]:
        """Swap out and return the buffered events."""
        out, self.buffer = self.buffer, []
        return out

    def take_sites(self) -> Dict[int, str]:
        out, self.new_sites = self.new_sites, {}
        return out


class TelemetryMonitor:
    """Monitor a real threaded program, analyze it on a remote server.

    Drop-in for the local pattern::

        tm = TelemetryMonitor("tcp://127.0.0.1:7777", session="checkout")
        counter = tm.shared("counter", 0)
        threads = [tm.thread(bump) for _ in range(4)]
        ...
        summary = tm.close()        # {"races": ..., "events": ...}

    ``shared``/``lock``/``volatile``/``thread`` delegate to an inner
    :class:`~repro.live.RaceMonitor` whose detector slot holds a
    :class:`ForwardingDetector`; events auto-flush over the wire every
    ``chunk_size`` events (under the monitor mutex, so ordering matches
    the interleaving the monitor observed) and :meth:`close` flushes the
    tail, closes the session, and returns the server's summary.
    """

    def __init__(
        self,
        address: str,
        session: str,
        detector: str = "fasttrack",
        backend: Optional[str] = None,
        chunk_size: int = 256,
        client=None,
    ) -> None:
        # imported here: repro.live imports are heavier than this module
        from ..live import RaceMonitor

        if client is None:
            # circular-import dance: resilient builds on this module
            from .resilient import ResilientClient

            # production monitoring defaults to the self-healing client:
            # a dropped connection mid-run resumes instead of raising
            # into the monitored program's threads
            client = ResilientClient(
                address, session, detector=detector, backend=backend,
                chunk_size=chunk_size,
            )
        self.client = client
        self._fwd = ForwardingDetector(
            on_chunk=self._flush_buffered, chunk_size=chunk_size
        )
        self.monitor = RaceMonitor(detector=self._fwd)
        self._closed = False
        if not self.client.connected:
            self.client.connect()

    # -- delegated monitoring API -------------------------------------------

    def shared(self, name: str, initial: Any = None):
        return self.monitor.shared(name, initial)

    def lock(self, name: str):
        return self.monitor.lock(name)

    def volatile(self, name: str, initial: Any = None):
        return self.monitor.volatile(name, initial)

    def thread(self, target: Callable[..., Any], *args: Any, **kwargs: Any):
        return self.monitor.thread(target, *args, **kwargs)

    # -- streaming -----------------------------------------------------------

    def _flush_buffered(self) -> None:
        """Ship buffered events (called with the monitor mutex held)."""
        sites = self._fwd.take_sites()
        if sites:
            self.client.send_sites(sites)
        events = self._fwd.take()
        if events:
            self.client.send_events(events)

    def flush(self) -> None:
        """Ship everything buffered so far."""
        with self.monitor._mutex:
            self._flush_buffered()

    def query(self) -> Dict:
        return self.client.query()

    def close(self) -> Dict:
        """Flush the tail, close the session, return the server summary."""
        if self._closed:
            return self.client.last_summary or {}
        self.flush()
        summary = self.client.close()
        self._closed = True
        return summary

    def __enter__(self) -> "TelemetryMonitor":
        return self

    def __exit__(self, *exc) -> None:
        if exc[0] is None:
            self.close()
        else:
            self.client.abort()
