"""``repro.net`` — the race-telemetry service (``repro/telemetry/v1``).

PACER's pitch is *always-on* detection in production, which means the
analysis cannot live inside every monitored process.  This package moves
it behind a wire: clients stream length-prefixed binio-v2 event frames
over TCP or Unix sockets to a long-running detection server, which
shards sessions onto long-lived detector worker processes and folds
their ``repro/race-report/v1`` reports and metrics continuously.

Layers (see ``docs/TELEMETRY.md`` for the wire format and lifecycle):

* :mod:`repro.net.protocol` — the sans-IO frame codec and message
  schema: versioned handshake, credit-based backpressure, sequence
  numbers for reconnect-with-resume, and a *named* error for every way a
  byte stream can be malformed (the fuzz suite pins that no input
  produces an unnamed exception or a hang);
* :mod:`repro.net.shard` — detector worker processes (the supervisor's
  pipe-connected worker pattern) hosting one detector per session, with
  exact streaming witness indexes for offline-parity reports;
* :mod:`repro.net.server` — the front tier: accepts connections,
  spools each session's frames for crash replay, routes chunks to
  shards, grants credits, and merges finalized session reports;
* :mod:`repro.net.client` — :class:`TelemetryClient` (stream any event
  sequence) and :class:`TelemetryMonitor` (a
  :class:`~repro.live.RaceMonitor`-backed shim that forwards a real
  threaded program's events to a server instead of analyzing locally);
* :mod:`repro.net.resilient` — :class:`ResilientClient`, the
  self-healing wrapper every production path uses: automatic
  reconnect-with-resume, seeded jittered backoff, bounded retry
  budgets, and BUSY/``retry_after`` awareness;
* :mod:`repro.net.chaos` — :class:`ChaosProxy`, a deterministic
  fault-injecting proxy (connection drops, frame corruption and
  truncation, stalls, duplication) driven by the shared
  ``kind@selector[*times]`` fault-plan grammar;
* :mod:`repro.net.http` — the observability sidecar (``/metrics``
  Prometheus scrapes, ``/status`` JSON, ``/healthz`` with drain-aware
  load-balancer semantics);
* :mod:`repro.net.top` — the ``repro top`` operator console and its
  versioned ``repro/top-status/v1`` machine-readable schema.
"""

from .chaos import ChaosProxy, wire_plan
from .client import TelemetryClient, TelemetryMonitor, parse_address, query_server
from .protocol import (
    PROTOCOL_SCHEMA,
    FrameCorrupt,
    FrameDecoder,
    FrameTooLarge,
    FrameTruncated,
    PayloadError,
    ProtocolError,
    ServerBusy,
    SessionEvicted,
    SessionStateError,
    UnknownFrameType,
)
from .resilient import ResilientClient
from .server import ServerConfig, TelemetryServer
from .top import TOP_SCHEMA, build_top_status, render_top, validate_top_status

__all__ = [
    "PROTOCOL_SCHEMA",
    "TOP_SCHEMA",
    "build_top_status",
    "render_top",
    "validate_top_status",
    "ChaosProxy",
    "FrameCorrupt",
    "FrameDecoder",
    "FrameTooLarge",
    "FrameTruncated",
    "PayloadError",
    "ProtocolError",
    "ResilientClient",
    "ServerBusy",
    "ServerConfig",
    "SessionEvicted",
    "SessionStateError",
    "TelemetryClient",
    "TelemetryMonitor",
    "TelemetryServer",
    "UnknownFrameType",
    "parse_address",
    "query_server",
    "wire_plan",
]
