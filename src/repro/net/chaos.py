"""Deterministic network chaos — a fault-injecting telemetry proxy.

PACER's always-on story only holds if the collection pipeline survives
the network it actually runs on: dropped connections, corrupted and
truncated frames, stalls, and duplicate delivery.  :class:`ChaosProxy`
sits between a telemetry client and server and injects exactly those
faults — *deterministically*, reusing the ``kind@selector[*times]``
fault-plan grammar from :mod:`repro.util.faults` with the wire
vocabulary :data:`~repro.util.faults.WIRE_FAULT_KINDS`::

    conn_drop@3             drop the link before forwarding frame 3
    frame_corrupt@seed%7=2  flip a byte in ~1/7 of frames
    frame_truncate@5*2      cut frame 5 short, twice, then forward
    stall@seed%11=0*inf     long pause before ~1/11 of frames, forever
    dup@4                   deliver frame 4 twice

Selectors are evaluated against the client→server frame stream: *index*
is the frame's position on its connection (0-based, restarting per
connection, so a reconnecting client sees the same gauntlet again), and
*seed* is a pure position hash of (plan seed, connection index, frame
index) — never frame content, because retransmitted frames carry fresh
wall-clock stamps and a content hash would break replay.  ``times``
bounds how many firings a rule gets across the proxy's whole lifetime.

The proxy is frame-aware in the client→server direction only: it splits
the stream on the ``repro/telemetry/v1`` length prefix (without
validating CRCs — corrupting them is the point) so faults land on whole
frames, which is what makes `frame_corrupt` exercise the server's CRC
rejection rather than merely desynchronizing the framing.  The
server→client direction is a transparent pipe: a dropped connection
already severs both directions, and credit/ack loss is covered by the
resume protocol the faults exist to exercise.

Use it in-process (tests) or as ``repro chaos-proxy`` (CI soaks)::

    with ChaosProxy("tcp://127.0.0.1:0", server.address,
                    plan="conn_drop@seed%5=1;frame_corrupt@seed%7=3",
                    seed=42) as proxy:
        client = ResilientClient(proxy.address, session="s")
        ...

Everything observable is counted in :attr:`ChaosProxy.stats` (fired
faults by kind, connections, frames forwarded) so soak suites can
assert the chaos actually happened.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Union

from ..util.faults import FaultPlan, FaultRule, WIRE_FAULT_KINDS, flip_byte
from .client import parse_address

__all__ = ["ChaosProxy", "wire_plan"]

_LEN_BYTES = 4

#: frames longer than this are forwarded unparsed (a proxy must never
#: buffer unboundedly waiting for a frame the peer will never finish)
_MAX_PARSE_FRAME = 64 << 20

#: injected pause lengths: ``stall`` models a slow client long enough to
#: trip server-side timeouts under test; ``delay`` just adds jitter
STALL_SECONDS = 0.35
DELAY_SECONDS = 0.02


def wire_plan(text: str) -> FaultPlan:
    """Parse a fault plan in the wire vocabulary (``conn_drop@3;...``)."""
    return FaultPlan.parse(text, kinds=WIRE_FAULT_KINDS)


def _frame_seed(plan_seed: int, conn_index: int, frame_index: int) -> int:
    """Position-pure per-frame seed; replayable across runs by design."""
    return zlib.crc32(
        struct.pack("<III", plan_seed & 0xFFFFFFFF, conn_index & 0xFFFFFFFF,
                    frame_index & 0xFFFFFFFF)
    )


class _Link:
    """One proxied connection: client socket, upstream socket, liveness."""

    def __init__(self, client: socket.socket, upstream: socket.socket,
                 index: int) -> None:
        self.client = client
        self.upstream = upstream
        self.index = index
        self.alive = True
        self.lock = threading.Lock()

    def kill(self) -> None:
        """Sever both directions (idempotent)."""
        with self.lock:
            if not self.alive:
                return
            self.alive = False
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A deterministic fault-injecting proxy for the telemetry wire.

    ``listen`` and ``upstream`` are ``tcp://host:port`` or
    ``unix:///path`` addresses (the two may differ in kind — a TCP
    listener can front a Unix-socket server).  ``plan`` is a
    :class:`~repro.util.faults.FaultPlan` or a plan string in the wire
    vocabulary; ``None`` makes a transparent proxy (useful as the
    control arm of a chaos experiment).
    """

    def __init__(
        self,
        listen: str,
        upstream: str,
        plan: Union[FaultPlan, str, None] = None,
        seed: int = 0,
        stall_seconds: float = STALL_SECONDS,
        delay_seconds: float = DELAY_SECONDS,
    ) -> None:
        if isinstance(plan, str):
            plan = wire_plan(plan)
        self.plan = plan
        self.seed = seed
        self.upstream = upstream
        self.stall_seconds = stall_seconds
        self.delay_seconds = delay_seconds
        self._listen_spec = listen
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._links: List[_Link] = []
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._unix_path: Optional[str] = None
        self._lock = threading.Lock()
        #: per-rule fired count, indexed like ``plan.rules`` (drives the
        #: ``times`` bound; attempts are counted per rule, proxy-wide)
        self._fired: List[int] = [0] * (len(plan.rules) if plan else 0)
        #: fault firings by kind plus traffic counters, for assertions
        self.stats: Dict[str, int] = {kind: 0 for kind in WIRE_FAULT_KINDS}
        self.stats["connections"] = 0
        self.stats["frames"] = 0
        #: the bound listen address (port resolved), once started
        self.address: str = listen

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ChaosProxy":
        import os

        kind, target = parse_address(self._listen_spec)
        if kind == "tcp":
            host, port = target
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            self.address = f"tcp://{host}:{sock.getsockname()[1]}"
        else:
            if os.path.exists(target):
                os.unlink(target)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(target)
            self._unix_path = target
            self.address = f"unix://{target}"
        sock.listen(16)
        sock.settimeout(0.2)
        self._listener = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        import os

        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for link in list(self._links):
            link.kill()
        for thread in list(self._threads):
            thread.join(timeout=5.0)
        if self._unix_path and os.path.exists(self._unix_path):
            os.unlink(self._unix_path)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- plumbing ------------------------------------------------------------

    def _connect_upstream(self) -> socket.socket:
        kind, target = parse_address(self.upstream)
        if kind == "tcp":
            return socket.create_connection(target, timeout=10.0)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(target)
        return sock

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = self._connect_upstream()
            except OSError:
                client.close()
                continue
            with self._lock:
                conn_index = self.stats["connections"]
                self.stats["connections"] += 1
            link = _Link(client, upstream, conn_index)
            self._links.append(link)
            for fn in (self._client_to_server, self._server_to_client):
                thread = threading.Thread(target=fn, args=(link,), daemon=True)
                self._threads.append(thread)
                thread.start()

    def _match(self, frame_index: int, frame_seed: int) -> Optional[FaultRule]:
        """First plan rule firing for this frame, respecting ``times``."""
        if self.plan is None:
            return None
        with self._lock:
            for i, rule in enumerate(self.plan.rules):
                if rule.matches(frame_index, frame_seed, self._fired[i] + 1):
                    self._fired[i] += 1
                    self.stats[rule.kind] += 1
                    return rule
        return None

    def _server_to_client(self, link: _Link) -> None:
        """Transparent pipe; dies when either side does."""
        try:
            while link.alive and not self._stopping.is_set():
                try:
                    data = link.upstream.recv(65536)
                except (OSError, ValueError):
                    break
                if not data:
                    break
                link.client.sendall(data)
        except OSError:
            pass
        finally:
            link.kill()

    def _client_to_server(self, link: _Link) -> None:
        """Frame-splitting forwarder with fault injection."""
        buffer = bytearray()
        frame_index = 0
        try:
            while link.alive and not self._stopping.is_set():
                try:
                    data = link.client.recv(65536)
                except (OSError, ValueError):
                    break
                if not data:
                    break
                buffer += data
                while len(buffer) >= _LEN_BYTES:
                    length = int.from_bytes(buffer[:_LEN_BYTES], "little")
                    if length > _MAX_PARSE_FRAME:
                        # unparseable garbage: stop splitting, just pipe
                        link.upstream.sendall(bytes(buffer))
                        del buffer[:]
                        break
                    total = _LEN_BYTES + length
                    if len(buffer) < total:
                        break
                    raw = bytes(buffer[:total])
                    del buffer[:total]
                    if not self._forward_frame(link, raw, frame_index):
                        return  # link severed by a fault
                    frame_index += 1
        except OSError:
            pass
        finally:
            link.kill()

    def _forward_frame(self, link: _Link, raw: bytes, frame_index: int) -> bool:
        """Apply at most one fault to this frame; False = link severed."""
        with self._lock:
            self.stats["frames"] += 1
        rule = self._match(frame_index, _frame_seed(self.seed, link.index,
                                                    frame_index))
        if rule is None:
            link.upstream.sendall(raw)
            return True
        seed = _frame_seed(self.seed, link.index, frame_index)
        if rule.kind == "conn_drop":
            link.kill()
            return False
        if rule.kind == "frame_corrupt":
            # flip a byte past the length prefix: body or CRC, never the
            # framing itself, so the server sees a clean frame-corrupt
            offset = _LEN_BYTES + seed % max(len(raw) - _LEN_BYTES, 1)
            link.upstream.sendall(flip_byte(raw, offset))
            return True
        if rule.kind == "frame_truncate":
            # a prefix of the frame, then EOF: the server's decoder
            # reports frame-truncated when the stream ends mid-frame
            keep = _LEN_BYTES + seed % max(len(raw) - _LEN_BYTES, 1)
            try:
                link.upstream.sendall(raw[:keep])
            except OSError:
                pass
            link.kill()
            return False
        if rule.kind == "stall":
            time.sleep(self.stall_seconds)
            link.upstream.sendall(raw)
            return True
        if rule.kind == "delay":
            time.sleep(self.delay_seconds)
            link.upstream.sendall(raw)
            return True
        if rule.kind == "dup":
            link.upstream.sendall(raw)
            link.upstream.sendall(raw)
            return True
        raise AssertionError(f"unhandled wire fault kind {rule.kind!r}")

    # -- reporting -----------------------------------------------------------

    def fired(self) -> int:
        """Total fault firings so far (all kinds)."""
        with self._lock:
            return sum(self._fired)

    def plan_spec(self) -> str:
        """The plan rendered back to grammar form ('' when transparent)."""
        return self.plan.spec() if self.plan is not None else ""
