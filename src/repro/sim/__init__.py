"""The concurrent-program simulator: the substrate replacing Jikes RVM."""

from .program import (
    Acquire,
    Alloc,
    Enter,
    Exit,
    Fork,
    Join,
    Op,
    Program,
    Read,
    Release,
    VolRead,
    VolWrite,
    Work,
    Write,
)
from .runtime import MemorySnapshot, Runtime, RuntimeConfig
from .scheduler import DeadlockError, Scheduler, run_program

__all__ = [
    "Program",
    "Op",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Fork",
    "Join",
    "VolRead",
    "VolWrite",
    "Enter",
    "Exit",
    "Alloc",
    "Work",
    "Scheduler",
    "DeadlockError",
    "run_program",
    "Runtime",
    "RuntimeConfig",
    "MemorySnapshot",
]
