"""Synthetic benchmarks calibrated to the paper's Table 2."""

from .base import RacySite, WorkloadSpec, WORKLOADS, build_program, describe_site
from .eclipse import ECLIPSE
from .hsqldb import HSQLDB
from .micro import (
    MICRO,
    counter_race,
    producer_consumer,
    fork_join_tree,
    lock_ping_pong,
    redundant_sync_storm,
    volatile_flag,
)
from .pseudojbb import PSEUDOJBB
from .xalan import XALAN

WORKLOADS.update(
    {
        "eclipse": ECLIPSE,
        "hsqldb": HSQLDB,
        "xalan": XALAN,
        "pseudojbb": PSEUDOJBB,
        "micro": MICRO,
    }
)

__all__ = [
    "RacySite",
    "WorkloadSpec",
    "WORKLOADS",
    "build_program",
    "describe_site",
    "ECLIPSE",
    "HSQLDB",
    "XALAN",
    "PSEUDOJBB",
    "MICRO",
    "counter_race",
    "producer_consumer",
    "lock_ping_pong",
    "fork_join_tree",
    "volatile_flag",
    "redundant_sync_storm",
]
