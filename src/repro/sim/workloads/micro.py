"""Microbenchmarks: small targeted programs for tests and ablations."""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..program import (
    Acquire,
    Alloc,
    Fork,
    Join,
    Op,
    Program,
    Read,
    Release,
    VolRead,
    VolWrite,
    Write,
)
from .base import RacySite, WorkloadSpec

__all__ = [
    "MICRO",
    "counter_race",
    "producer_consumer",
    "lock_ping_pong",
    "fork_join_tree",
    "volatile_flag",
    "redundant_sync_storm",
]

#: A deliberately small registered workload: one wave of four workers,
#: a hot and a cold injected race, and enough allocation traffic to
#: cross many GC (sampling-decision) boundaries.  It exists so smoke
#: tests and ``repro profile micro`` finish in well under a second while
#: still exercising forks, locks, volatiles, sampling periods, and
#: races.
MICRO = WorkloadSpec(
    name="micro",
    n_waves=1,
    wave_size=4,
    iterations=120,
    n_shared=32,
    n_locks=4,
    n_vols=2,
    accesses_per_iteration=40,
    racy_sites=[
        RacySite(0, probability=0.05, hot=True, kind="ww"),
        RacySite(1, probability=0.4, hot=False, kind="wr"),
    ],
)


def counter_race(n_threads: int = 2, increments: int = 50) -> Program:
    """The classic unsynchronized counter: read-modify-write on one var."""

    COUNTER = 1

    def worker(tid: int) -> Generator[Op, Optional[int], None]:
        for i in range(increments):
            yield Read(COUNTER, site=10)
            yield Write(COUNTER, site=11)

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        children = []
        for _ in range(n_threads):
            children.append((yield Fork(worker)))
        for child in children:
            yield Join(child)

    return Program(main)


def lock_ping_pong(rounds: int = 100, n_locks: int = 1) -> Program:
    """Two threads alternating on shared locks — heavy, fully-ordered
    synchronization traffic (exercises PACER's version fast path)."""

    VAR = 1

    def worker(tid: int) -> Generator[Op, Optional[int], None]:
        for i in range(rounds):
            lock = 100 + i % n_locks
            yield Acquire(lock)
            yield Read(VAR, site=20)
            yield Write(VAR, site=21)
            yield Release(lock)

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        a = yield Fork(worker)
        b = yield Fork(worker)
        yield Join(a)
        yield Join(b)

    return Program(main)


def fork_join_tree(depth: int = 3, work: int = 10) -> Program:
    """A binary fork/join tree with parent/child data handoff.

    Parents publish work into a shared cell *before* forking; children
    read and update it; parents read the result *after* joining.  All
    sharing is ordered purely by fork/join edges, so the program is
    race-free — and a false-positive generator for lockset detectors,
    which cannot see those edges.
    """

    def node(level: int, inbox: Optional[int]):
        def body(tid: int) -> Generator[Op, Optional[int], None]:
            if inbox is not None:
                yield Read(inbox, site=34)  # pick up the parent's handoff
                yield Write(inbox, site=35)  # leave a result behind
            var = 1000 + tid
            for i in range(work):
                yield Write(var, site=30)
                yield Read(var, site=31)
            if level > 0:
                # one handoff cell per child, so siblings never share
                left_cell, right_cell = 2000 + 2 * tid, 2001 + 2 * tid
                yield Write(left_cell, site=32)  # publish before forking
                yield Write(right_cell, site=32)
                left = yield Fork(node(level - 1, left_cell))
                right = yield Fork(node(level - 1, right_cell))
                yield Join(left)
                yield Join(right)
                yield Read(left_cell, site=33)  # collect after joining
                yield Read(right_cell, site=33)

        return body

    return Program(node(depth, None))


def volatile_flag(iterations: int = 50) -> Program:
    """Producer/consumer over a volatile flag, plus one unsynchronized
    slip at the end.

    The slip (variable 2) always races.  The data variable (1) is
    protected only when the consumer's volatile read observes a prior
    volatile write; schedules where the consumer runs ahead exhibit a
    genuine publication race — this micro is deliberately
    schedule-sensitive (the DSL has no value-dependent spin loops).
    """

    DATA, SLIP = 1, 2
    FLAG = 300

    def producer(tid: int) -> Generator[Op, Optional[int], None]:
        for i in range(iterations):
            yield Write(DATA, site=40)
            yield VolWrite(FLAG)
        yield Write(SLIP, site=44)  # not protected by the flag protocol

    def consumer(tid: int) -> Generator[Op, Optional[int], None]:
        for i in range(iterations):
            yield VolRead(FLAG)
            yield Read(DATA, site=41)
        yield Write(SLIP, site=45)

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        p = yield Fork(producer)
        c = yield Fork(consumer)
        yield Join(p)
        yield Join(c)

    return Program(main)


def redundant_sync_storm(
    n_threads: int = 8, rounds: int = 200, n_locks: int = 4, seed: int = 0
) -> Program:
    """Threads endlessly re-acquiring the same few locks with almost no
    data traffic: in non-sampling periods nearly every PACER join should
    hit the version fast path (the Table 3 scenario distilled)."""

    rng = random.Random(seed)

    def worker(tid: int) -> Generator[Op, Optional[int], None]:
        local = random.Random(f"{seed}/{tid}")
        for i in range(rounds):
            lock = 100 + local.randrange(n_locks)
            yield Acquire(lock)
            if i % 50 == 0:
                yield Write(1, site=50)
            yield Release(lock)
            if i % 25 == 0:
                yield Alloc(64, 0)

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        children = []
        for _ in range(n_threads):
            children.append((yield Fork(worker)))
        for child in children:
            yield Join(child)

    return Program(main)


def producer_consumer(items: int = 20, n_consumers: int = 2) -> Program:
    """Bounded handoff via ``wait``/``notifyAll`` (the standard guarded
    pattern: waiters re-check a condition in a loop, so no lost wakeup).

    Properly synchronized — the data variable is only touched under the
    monitor — so this is race-free, and a regression test for the
    scheduler's monitor wait-set semantics.
    """
    from ..program import NotifyAll, Wait

    L, DATA = 900, 90
    ready = {"count": 0, "done": False}  # meta-level state (not traced)

    def consumer(tid: int) -> Generator[Op, Optional[int], None]:
        consumed = 0
        while True:
            yield Acquire(L)
            while ready["count"] == 0 and not ready["done"]:
                yield Wait(L)
            if ready["count"] > 0:
                ready["count"] -= 1
                yield Read(DATA, site=91)
                consumed += 1
                yield Release(L)
            else:  # done and drained
                yield Release(L)
                return

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        children = []
        for _ in range(n_consumers):
            children.append((yield Fork(consumer)))
        for _ in range(items):
            yield Acquire(L)
            yield Write(DATA, site=92)
            ready["count"] += 1
            yield NotifyAll(L)
            yield Release(L)
        yield Acquire(L)
        ready["done"] = True
        yield NotifyAll(L)
        yield Release(L)
        for child in children:
            yield Join(child)

    return Program(main)
