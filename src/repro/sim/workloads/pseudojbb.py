"""pseudojbb-like workload (Table 2: 37 total threads, 9 max live, 14 races).

pseudojbb is the fixed-workload SPECjbb2000 variant: a few warehouses of
worker threads run transaction mixes.  Its small race population is
highly reproducible — 14 of 14 races appear in ≥1 and ≥5 of the 50
fully-sampled trials, 11 in at least half.
"""

from __future__ import annotations

from .base import RacySite, WorkloadSpec

__all__ = ["PSEUDOJBB"]


def _races() -> list:
    sites = []
    rid = 0
    # 11 highly reproducible races
    for _ in range(11):
        sites.append(RacySite(rid, probability=0.25, hot=True, kind="ww" if rid % 2 else "wr"))
        rid += 1
    # 3 medium-rate races
    for _ in range(3):
        sites.append(RacySite(rid, probability=0.008, hot=False, kind="wr"))
        rid += 1
    return sites


PSEUDOJBB = WorkloadSpec(
    name="pseudojbb",
    waves=[8, 8, 8, 8, 4],  # 37 threads total, 9 max live
    iterations=20,
    n_shared=80,
    n_locks=8,
    n_vols=4,
    racy_sites=_races(),
)
