"""Synthetic workload framework, calibrated against Table 2.

The paper evaluates on DaCapo's eclipse/hsqldb/xalan plus pseudojbb.
Those exact programs are unreproducible here (they need a JVM), so each
workload is a synthetic program matched on the characteristics that the
paper's results actually depend on:

* **thread structure** — total threads started and max simultaneously
  live (Table 2's first columns), realized as waves of forked workers;
* **distinct races and their occurrence rates** — each workload embeds a
  set of *racy sites* (unsynchronized accesses to dedicated variables);
  per-trial gating probabilities make some races frequent and some rare,
  mirroring Table 2's ≥1/≥5/≥25-trial columns;
* **hot/cold code structure** — racy accesses can sit in the hot loop
  (executed thousands of times; LiteRace's adaptive sampler goes to its
  minimum rate there) or in cold per-thread methods (executed once) —
  the distinction that drives Figure 6;
* **operation mix** — ~3% of analyzed operations are synchronization
  (paper §2.2), the rest reads/writes, mostly well-locked;
* **allocation** — a steady allocation stream plus live-set growth, so
  GC-boundary sampling and the Figure 10 space model behave like the
  paper's runs.

Every workload is deterministic in ``(spec, trial_seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..program import (
    Acquire,
    Alloc,
    Enter,
    Exit,
    Fork,
    Join,
    Op,
    Program,
    Read,
    Release,
    VolRead,
    VolWrite,
    Write,
)

__all__ = ["RacySite", "WorkloadSpec", "build_program", "describe_site", "WORKLOADS"]

# id-space layout (keeps variables/locks/volatiles/sites disjoint & stable)
SHARED_VAR_BASE = 0
RACY_VAR_BASE = 5_000
LOCK_BASE = 100_000
VOL_BASE = 200_000
RACY_SITE_BASE = 10_000
HOT_METHOD = 1
COLD_METHOD_BASE = 100


def describe_site(site) -> str:
    """Human-readable name for a site id, decoding the id-space layout.

    Injected racy sites get symbolic names (``race#K:writer`` /
    ``race#K:partner`` per :class:`RacySite`'s site assignment); live
    frontend sites are already ``file:line`` strings and pass through;
    everything else keeps its numeric identity.
    """
    if isinstance(site, str):
        return site
    if RACY_SITE_BASE <= site < LOCK_BASE:
        race_id, role = divmod(site - RACY_SITE_BASE, 2)
        return f"race#{race_id}:{'writer' if role == 0 else 'partner'}"
    return f"site#{site}"


@dataclass(frozen=True)
class RacySite:
    """One injected *distinct* race.

    ``probability`` gates, per worker per iteration (hot) or per worker
    (cold), whether the racy access executes, which controls how often
    the race occurs across trials.  ``hot`` places the access inside the
    hot loop method; cold races live in a per-thread cold method.
    ``kind`` is ``"ww"`` (two unsynchronized writes) or ``"wr"`` (an
    unsynchronized write racing unsynchronized reads).
    """

    race_id: int
    probability: float
    hot: bool = True
    kind: str = "ww"

    @property
    def var(self) -> int:
        return RACY_VAR_BASE + self.race_id

    @property
    def writer_site(self) -> int:
        return RACY_SITE_BASE + 2 * self.race_id

    @property
    def reader_site(self) -> int:
        """Second site: a read for "wr" races, a second write for "ww"."""
        return RACY_SITE_BASE + 2 * self.race_id + 1

    @property
    def distinct_keys(self) -> List[Tuple[int, int]]:
        """Site pairs this race can be reported as (either order)."""
        w, r = self.writer_site, self.reader_site
        return [(w, r), (r, w), (w, w)] if self.kind == "ww" else [(w, r), (r, w)]


@dataclass
class WorkloadSpec:
    """Shape parameters for one synthetic benchmark."""

    name: str
    n_waves: int = 1
    wave_size: int = 8
    waves: Optional[List[int]] = None  # explicit per-wave worker counts
    iterations: int = 200
    n_shared: int = 64  # well-locked shared variables
    n_locks: int = 8
    n_vols: int = 4
    accesses_per_iteration: int = 60
    sync_every: int = 2  # lock-protect every k-th access cluster
    vol_every: int = 40  # volatile handshake every k iterations
    alloc_every: int = 4  # allocation every k iterations
    alloc_bytes: int = 64
    live_every: int = 16  # iterations between live-set growth
    racy_sites: List[RacySite] = field(default_factory=list)
    cold_iterations: int = 4  # accesses inside each cold method

    def scaled(self, scale: float) -> "WorkloadSpec":
        """A copy with the hot-loop iteration count scaled."""
        import copy

        spec = copy.copy(self)
        spec.racy_sites = list(self.racy_sites)
        spec.iterations = max(8, int(self.iterations * scale))
        return spec

    @property
    def wave_sizes(self) -> List[int]:
        if self.waves is not None:
            return list(self.waves)
        return [self.wave_size] * self.n_waves

    @property
    def threads_total(self) -> int:
        return 1 + sum(self.wave_sizes)

    @property
    def max_live(self) -> int:
        return 1 + max(self.wave_sizes)

    @property
    def distinct_race_ids(self) -> List[int]:
        return [site.race_id for site in self.racy_sites]


def _worker(
    spec: WorkloadSpec,
    rng: random.Random,
    worker_index: int,
    wave_pos: int,
    wave_size: int,
) -> Generator[Op, Optional[int], None]:
    """One worker thread's body.

    Each racy site is assigned to exactly two workers per wave — a writer
    and a partner (reader or second writer) — so each injected race
    contributes one distinct site pair.  The bulk of the work is
    well-synchronized shared traffic plus thread-local accesses, tuned so
    synchronization is a few percent of analyzed operations (§2.2).
    """
    my_races = []
    for site in spec.racy_sites:
        writer_pos = site.race_id % max(wave_size, 1)
        partner_pos = (site.race_id + 1) % max(wave_size, 1)
        if wave_pos == writer_pos:
            my_races.append((site, True))
        elif wave_pos == partner_pos:
            my_races.append((site, False))
    hot_races = [(s, w) for s, w in my_races if s.hot]
    cold_races = [(s, w) for s, w in my_races if not s.hot]
    for i in range(spec.iterations):
        # Each iteration is one invocation of the hot method, so
        # LiteRace's per-invocation adaptive sampler sees it as hot.
        yield Enter(HOT_METHOD)
        # One critical section per iteration over the shared state.  The
        # lock class partitions variables (var % n_locks == lock class),
        # so the locking discipline is consistent and race-free.
        var = SHARED_VAR_BASE + rng.randrange(spec.n_shared)
        lock = LOCK_BASE + var % spec.n_locks
        yield Acquire(lock)
        for a in range(3):
            v = SHARED_VAR_BASE + (var + a * spec.n_locks) % spec.n_shared
            if rng.random() < 0.3:
                yield Write(v, v * 4 + 2)
            else:
                yield Read(v, v * 4)
        yield Release(lock)
        # ... plus a run of thread-local work so synchronization stays a
        # few percent of analyzed operations, as in the paper's suite.
        for a in range(spec.accesses_per_iteration):
            private = 1_000_000 + worker_index * 1_000 + (var + a) % 97
            if rng.random() < 0.3:
                yield Write(private, 3)
            else:
                yield Read(private, 1)
        if i % spec.vol_every == 0 and spec.n_vols:
            # Volatiles are status flags with a single habitual writer
            # (the paper observes volatile writes are usually totally
            # ordered, which lets PACER keep precise version epochs).
            vol_index = rng.randrange(spec.n_vols)
            vol = VOL_BASE + vol_index
            if vol_index % max(wave_size, 1) == wave_pos:
                yield VolWrite(vol)
            else:
                yield VolRead(vol)
        if i % spec.alloc_every == 0:
            grow = 1 if i % spec.live_every == 0 else 0
            yield Alloc(spec.alloc_bytes, grow)
        # Hot races fire only in steady state (after the first quarter of
        # the loop): real hot-code races do not cluster in warm-up, which
        # adaptive code samplers like LiteRace instrument heavily.
        if 4 * i >= spec.iterations:
            for site, is_writer in hot_races:
                if rng.random() < site.probability:
                    yield from _racy_access(site, is_writer)
        yield Exit(HOT_METHOD)
    # Cold code: executed once per worker; LiteRace samples it at 100%.
    cold_method = COLD_METHOD_BASE + worker_index % 7
    yield Enter(cold_method)
    for site, is_writer in cold_races:
        if rng.random() < min(1.0, site.probability * spec.iterations):
            for _ in range(spec.cold_iterations):
                yield from _racy_access(site, is_writer)
    yield Exit(cold_method)


def _racy_access(site: RacySite, is_writer: bool) -> Generator[Op, Optional[int], None]:
    if is_writer:
        yield Write(site.var, site.writer_site)
    elif site.kind == "ww":
        yield Write(site.var, site.reader_site)
    else:
        yield Read(site.var, site.reader_site)


def build_program(spec: WorkloadSpec, trial_seed: int = 0) -> Program:
    """Instantiate a workload as a runnable :class:`Program`."""

    def main(tid: int) -> Generator[Op, Optional[int], None]:
        base = random.Random(f"{trial_seed}/{spec.name}")
        worker_index = 0
        for wave_size in spec.wave_sizes:
            children = []
            for wave_pos in range(wave_size):
                rng = random.Random(f"{trial_seed}/{spec.name}/{worker_index}")
                body = _make_body(spec, rng, worker_index, wave_pos, wave_size)
                child = yield Fork(body)
                children.append(child)
                worker_index += 1
            # main thread does a little of its own (always-sampledable) work
            for i in range(8):
                var = SHARED_VAR_BASE + base.randrange(spec.n_shared)
                lock = LOCK_BASE + var % spec.n_locks
                yield Acquire(lock)
                yield Read(var, var * 4)
                yield Release(lock)
                yield Alloc(spec.alloc_bytes, 0)
            for child in children:
                yield Join(child)

    return Program(main)


def _make_body(
    spec: WorkloadSpec,
    rng: random.Random,
    worker_index: int,
    wave_pos: int,
    wave_size: int,
):
    def body(tid: int):
        return _worker(spec, rng, worker_index, wave_pos, wave_size)

    return body


#: Registry filled in by the per-benchmark modules; see workloads/__init__.
WORKLOADS: Dict[str, WorkloadSpec] = {}
