"""xalan-like workload (Table 2: 9 threads, all live at once, 73 races).

xalan (XSLT transformation) runs a small fixed pool of worker threads
flat out.  Its race population has the longest tail in the suite: 73
distinct races observed overall, but only 19 appear in at least half of
the fully-sampled trials — most of its races are scheduling-luck races.
"""

from __future__ import annotations

from .base import RacySite, WorkloadSpec

__all__ = ["XALAN"]


def _races() -> list:
    sites = []
    rid = 0
    # 19 frequent races
    for _ in range(19):
        sites.append(RacySite(rid, probability=0.07, hot=True, kind="ww" if rid % 3 else "wr"))
        rid += 1
    # 15 medium
    for k in range(15):
        sites.append(RacySite(rid, probability=0.006, hot=k % 2 == 0, kind="wr"))
        rid += 1
    # 36 occasional (the long tail: present in ≥1 of 50 trials)
    for k in range(36):
        sites.append(RacySite(rid, probability=0.010, hot=k % 3 != 0, kind="ww" if k % 2 else "wr"))
        rid += 1
    # 3 very rare
    for _ in range(3):
        sites.append(RacySite(rid, probability=0.0008, hot=False, kind="wr"))
        rid += 1
    return sites


XALAN = WorkloadSpec(
    name="xalan",
    waves=[8],  # 9 threads total, all simultaneously live
    iterations=90,
    n_shared=96,
    n_locks=12,
    n_vols=4,
    racy_sites=_races(),
)
