"""eclipse-like workload (Table 2: 16 total threads, 8 max live, 77 races).

eclipse is the paper's largest and most interesting benchmark: it has
many distinct races with a long occurrence-rate tail (55 of 77 appear in
at least one of 50 fully-sampled trials, only 27 in at least half), and —
critically for Figure 6 — several of its races live in *hot* code, which
is why LiteRace consistently misses some of them while PACER does not.
"""

from __future__ import annotations

from .base import RacySite, WorkloadSpec

__all__ = ["ECLIPSE"]


def _races() -> list:
    sites = []
    rid = 0
    # ~27 frequent races (appear in most fully-sampled trials); a third
    # sit in hot code — the ones LiteRace's cold-region heuristic misses
    # (Figure 6) — the rest in cold per-thread code.
    for _ in range(27):
        sites.append(
            RacySite(rid, probability=0.12, hot=rid % 3 == 0, kind="ww" if rid % 3 else "wr")
        )
        rid += 1
    # ~17 medium-rate races, mixed hot/cold
    for k in range(17):
        sites.append(RacySite(rid, probability=0.012, hot=k % 2 == 0, kind="wr"))
        rid += 1
    # ~11 rare races (a handful of the 50 trials)
    for k in range(11):
        sites.append(RacySite(rid, probability=0.008, hot=k % 3 != 0, kind="ww"))
        rid += 1
    # ~22 very rare races (essentially only visible in pooled trials)
    for k in range(22):
        sites.append(RacySite(rid, probability=0.002, hot=k % 2 == 0, kind="wr"))
        rid += 1
    return sites


ECLIPSE = WorkloadSpec(
    name="eclipse",
    waves=[7, 7, 1],  # 16 threads total, 8 max live
    iterations=50,
    n_shared=96,
    n_locks=12,
    n_vols=6,
    racy_sites=_races(),
)
