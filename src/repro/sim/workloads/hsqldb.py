"""hsqldb-like workload (Table 2: 403 total threads, 102 max live, 28 races).

hsqldb starts hundreds of short-lived threads (database session workers);
its 23 core races occur in *every* fully-sampled trial (Table 2 shows
23/23/23 across the ≥1/≥5/≥25 thresholds), plus a few extras visible
only in pooled sampled trials.  The huge thread count is what stresses
O(n) vector-clock work — hsqldb is where PACER's version/sharing
machinery matters most.
"""

from __future__ import annotations

from .base import RacySite, WorkloadSpec

__all__ = ["HSQLDB"]


def _races() -> list:
    sites = []
    rid = 0
    # 23 races that occur in every fully-sampled trial
    for _ in range(23):
        sites.append(RacySite(rid, probability=0.30, hot=True, kind="ww" if rid % 2 else "wr"))
        rid += 1
    # 5 rare extras (pooled-trials-only in Table 2)
    for _ in range(5):
        sites.append(RacySite(rid, probability=0.002, hot=False, kind="wr"))
        rid += 1
    return sites


HSQLDB = WorkloadSpec(
    name="hsqldb",
    waves=[101, 101, 100, 100],  # 403 threads total, 102 max live
    iterations=10,
    n_shared=128,
    n_locks=16,
    n_vols=8,
    racy_sites=_races(),
    accesses_per_iteration=20,
)
