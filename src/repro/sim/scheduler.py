"""Preemptive, seeded scheduler: runs a :class:`~repro.sim.program.Program`
and emits trace events.

The scheduler is the simulator's "hardware": it interleaves thread
generators one operation at a time, choosing the next thread pseudo-
randomly (with a configurable *stickiness* that models timeslices — a
thread tends to keep running for a geometric number of steps, which
produces realistic access locality), and enforces blocking semantics:

* ``Acquire`` blocks while another thread holds the lock (reentrancy is
  allowed, and only the outermost acquire/release emit trace events,
  matching Java monitor semantics);
* ``Join`` blocks until the target thread's generator is exhausted;
* ``Wait``/``Notify`` implement Java monitor wait sets, including
  ``wait(timeout)``: a timed waiter leaves the wait set when its
  deadline (in scheduler steps) passes, and a notify can only ever be
  consumed by a thread still waiting — never by one that timed out.

Determinism: a given (program, seed) pair always yields the same trace.
Deadlock (no runnable thread while unfinished threads remain and no
timed wait is pending) raises :class:`DeadlockError` rather than
hanging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Set

from ..trace.events import (
    ACQUIRE,
    ALLOC,
    Event,
    FORK,
    JOIN,
    METHOD_ENTER,
    METHOD_EXIT,
    READ,
    RELEASE,
    VOL_READ,
    VOL_WRITE,
    WRITE,
)
from ..trace.trace import Trace
from .program import (
    Acquire,
    Alloc,
    Enter,
    Exit,
    Fork,
    Join,
    Notify,
    NotifyAll,
    Op,
    Program,
    Read,
    Release,
    VolRead,
    VolWrite,
    Wait,
    Work,
    Write,
)

__all__ = ["Scheduler", "DeadlockError", "run_program"]

RUNNABLE = "runnable"
BLOCKED_LOCK = "blocked-lock"
BLOCKED_JOIN = "blocked-join"
BLOCKED_WAIT = "blocked-wait"
FINISHED = "finished"


class DeadlockError(RuntimeError):
    """All live threads are blocked; the program cannot make progress."""


@dataclass(frozen=True)
class _Reacquire(Op):
    """Internal op: reacquire a monitor after wait() at a saved depth."""

    lock: int
    depth: int


@dataclass
class _ThreadState:
    tid: int
    gen: Generator[Op, Optional[int], None]
    status: str = RUNNABLE
    pending: Optional[Op] = None  # op that blocked and must be retried
    send_value: Optional[int] = None  # value to send into the generator
    waiting_for: int = -1
    start_step: int = 0  # scheduler step at spawn (observability spans)


class Scheduler:
    """Executes a program, emitting events to a sink callback.

    ``sink`` receives each :class:`~repro.trace.events.Event` as it is
    produced.  ``work_hook``, if given, receives the ``units`` of every
    :class:`~repro.sim.program.Work` op (pure computation emits no
    event but still represents program cost).
    """

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        stickiness: float = 0.85,
        sink: Optional[Callable[[Event], None]] = None,
        work_hook: Optional[Callable[[int], None]] = None,
        max_steps: int = 50_000_000,
        observer=None,
    ) -> None:
        self._rng = random.Random(seed)
        self.stickiness = stickiness
        self.sink = sink or (lambda event: None)
        self.work_hook = work_hook
        self.max_steps = max_steps
        #: optional :class:`repro.obs.RunObserver`; receives per-thread
        #: lifetime spans and timed-wait clock jumps.  Never consulted in
        #: the per-step hot path beyond thread finish/spawn events.
        self.observer = observer
        self.context_switches = 0
        self._threads: Dict[int, _ThreadState] = {}
        self._runnable_set: Set[int] = set()
        self._unfinished = 0
        self._next_tid = 0
        self._lock_holder: Dict[int, int] = {}
        self._lock_depth: Dict[int, int] = {}
        self._lock_waiters: Dict[int, List[int]] = {}
        self._wait_sets: Dict[int, List[int]] = {}  # wait()ing threads
        self._wait_deadlines: Dict[int, tuple] = {}  # tid -> (step, lock)
        self._joiners: Dict[int, List[int]] = {}
        self._current: Optional[int] = None
        self.steps = 0
        self.threads_started = 0
        self.max_live = 0
        for body in program.roots:
            self._spawn(body)

    # -- thread management ------------------------------------------------

    def _spawn(self, body) -> int:
        tid = self._next_tid
        self._next_tid += 1
        state = _ThreadState(tid=tid, gen=body(tid), start_step=self.steps)
        self._threads[tid] = state
        self._runnable_set.add(tid)
        self._unfinished += 1
        self.threads_started += 1
        self.max_live = max(self.max_live, self._unfinished)
        return tid

    def _finish(self, state: _ThreadState) -> None:
        state.status = FINISHED
        self._unfinished -= 1
        if self.observer is not None:
            self.observer.on_thread_span(state.tid, state.start_step, self.steps)
        for waiter_tid in self._joiners.pop(state.tid, []):
            waiter = self._threads[waiter_tid]
            waiter.status = RUNNABLE
            self._runnable_set.add(waiter_tid)

    # -- the scheduling loop ------------------------------------------------

    def run(self) -> None:
        """Run until every thread finishes (or deadlock / step limit)."""
        while True:
            if self._wait_deadlines:
                self._expire_timed_waits()
            runnable = self._runnable_set
            if not runnable:
                if self._unfinished == 0:
                    if self.observer is not None:
                        self.observer.on_phase("scheduler", 0, self.steps)
                    return
                if self._wait_deadlines:
                    # every thread is blocked but a timed wait is still
                    # pending: advance the clock to its deadline rather
                    # than reporting a spurious deadlock
                    earliest = min(d for d, _ in self._wait_deadlines.values())
                    self.steps = max(self.steps, earliest)
                    if self.observer is not None:
                        self.observer.on_clock_jump(self.steps)
                    continue
                raise DeadlockError(
                    "no runnable threads; blocked: "
                    + ", ".join(
                        f"t{t.tid}({t.status})"
                        for t in self._threads.values()
                        if t.status not in (FINISHED, RUNNABLE)
                    )
                )
            if (
                self._current in runnable
                and len(runnable) > 1
                and self._rng.random() < self.stickiness
            ):
                tid = self._current
            else:
                tid = self._rng.choice(tuple(runnable))
            if tid != self._current:
                self.context_switches += 1
            self._current = tid
            self._step(self._threads[tid])
            self.steps += 1
            if self.steps > self.max_steps:
                raise RuntimeError(f"exceeded max_steps={self.max_steps}")

    def _step(self, state: _ThreadState) -> None:
        op = state.pending
        if op is None:
            try:
                op = state.gen.send(state.send_value)
            except StopIteration:
                self._runnable_set.discard(state.tid)
                self._finish(state)
                return
            state.send_value = None
        else:
            state.pending = None
        self._apply(state, op)

    # -- op semantics ----------------------------------------------------------

    def _apply(self, state: _ThreadState, op: Op) -> None:
        tid = state.tid
        if type(op) is Read:
            self.sink(Event(READ, tid, op.var, op.site))
        elif type(op) is Write:
            self.sink(Event(WRITE, tid, op.var, op.site))
        elif type(op) is Acquire:
            holder = self._lock_holder.get(op.lock)
            if holder is not None and holder != tid:
                state.status = BLOCKED_LOCK
                state.pending = op  # retry when the lock frees up
                self._runnable_set.discard(tid)
                self._lock_waiters.setdefault(op.lock, []).append(tid)
                return
            self._lock_holder[op.lock] = tid
            depth = self._lock_depth.get(op.lock, 0) + 1
            self._lock_depth[op.lock] = depth
            if depth == 1:  # only the outermost acquire is a sync action
                self.sink(Event(ACQUIRE, tid, op.lock))
        elif type(op) is Release:
            if self._lock_holder.get(op.lock) != tid:
                raise RuntimeError(f"t{tid} releases lock {op.lock} it does not hold")
            depth = self._lock_depth[op.lock] - 1
            if depth == 0:
                self.sink(Event(RELEASE, tid, op.lock))
                del self._lock_holder[op.lock]
                del self._lock_depth[op.lock]
                self._wake_lock_waiters(op.lock)
            else:
                self._lock_depth[op.lock] = depth
        elif type(op) is Fork:
            child = self._spawn(op.body)
            self.sink(Event(FORK, tid, child))
            state.send_value = child
        elif type(op) is Join:
            target = self._threads.get(op.tid)
            if target is None:
                raise RuntimeError(f"t{tid} joins unknown thread {op.tid}")
            if target.status != FINISHED:
                state.status = BLOCKED_JOIN
                state.waiting_for = op.tid
                state.pending = op
                self._runnable_set.discard(tid)
                self._joiners.setdefault(op.tid, []).append(tid)
                return
            self.sink(Event(JOIN, tid, op.tid))
        elif type(op) is VolRead:
            self.sink(Event(VOL_READ, tid, op.vol))
        elif type(op) is VolWrite:
            self.sink(Event(VOL_WRITE, tid, op.vol))
        elif type(op) is Enter:
            self.sink(Event(METHOD_ENTER, tid, op.method))
        elif type(op) is Exit:
            self.sink(Event(METHOD_EXIT, tid, op.method))
        elif type(op) is Wait:
            if self._lock_holder.get(op.lock) != tid:
                raise RuntimeError(f"t{tid} waits on lock {op.lock} it does not hold")
            depth = self._lock_depth.pop(op.lock)
            del self._lock_holder[op.lock]
            self.sink(Event(RELEASE, tid, op.lock))  # wait releases the monitor
            state.status = BLOCKED_WAIT
            state.pending = _Reacquire(op.lock, depth)
            self._runnable_set.discard(tid)
            self._wait_sets.setdefault(op.lock, []).append(tid)
            if op.timeout is not None:
                self._wait_deadlines[tid] = (self.steps + op.timeout, op.lock)
            self._wake_lock_waiters(op.lock)
        elif type(op) is Notify:
            if self._lock_holder.get(op.lock) != tid:
                raise RuntimeError(f"t{tid} notifies lock {op.lock} it does not hold")
            waiters = self._wait_sets.get(op.lock)
            if waiters:
                self._notify_one(op.lock, waiters)
        elif type(op) is NotifyAll:
            if self._lock_holder.get(op.lock) != tid:
                raise RuntimeError(f"t{tid} notifies lock {op.lock} it does not hold")
            waiters = self._wait_sets.get(op.lock)
            while waiters:
                self._notify_one(op.lock, waiters)
        elif type(op) is _Reacquire:
            holder = self._lock_holder.get(op.lock)
            if holder is not None and holder != tid:
                state.status = BLOCKED_LOCK
                state.pending = op
                self._runnable_set.discard(tid)
                self._lock_waiters.setdefault(op.lock, []).append(tid)
                return
            self._lock_holder[op.lock] = tid
            self._lock_depth[op.lock] = op.depth
            self.sink(Event(ACQUIRE, tid, op.lock))  # wait reacquires it
        elif type(op) is Alloc:
            self.sink(Event(ALLOC, tid, op.nbytes, op.live_delta))
        elif type(op) is Work:
            if self.work_hook is not None:
                self.work_hook(op.units)
        else:
            raise TypeError(f"unknown op {op!r}")

    def _notify_one(self, lock: int, waiters: List[int]) -> None:
        """Move one wait()er to the monitor's entry queue."""
        waiter_tid = waiters.pop(self._rng.randrange(len(waiters)))
        # claim the waiter's pending timeout: once notified it must not
        # *also* fire its deadline later (double wake), and conversely a
        # waiter that already timed out has left `waiters`, so a notify
        # can never be consumed by a dead entry (lost wakeup)
        self._wait_deadlines.pop(waiter_tid, None)
        waiter = self._threads[waiter_tid]
        waiter.status = BLOCKED_LOCK  # now competes for the monitor
        self._lock_waiters.setdefault(lock, []).append(waiter_tid)

    def _expire_timed_waits(self) -> None:
        """Remove waiters whose wait(timeout) deadline has passed.

        An expired waiter leaves the wait set immediately — before any
        subsequent notify is dispatched, so the notify goes to a thread
        that is actually still waiting — and proceeds to reacquire the
        monitor.  If the lock is free it becomes runnable right away;
        waking it only from :meth:`_wake_lock_waiters` would strand it
        until a release that may never come.
        """
        expired = [
            tid
            for tid, (deadline, _) in self._wait_deadlines.items()
            if deadline <= self.steps
        ]
        for tid in expired:
            _, lock = self._wait_deadlines.pop(tid)
            waiters = self._wait_sets.get(lock)
            if not waiters or tid not in waiters:
                continue  # already claimed by a notify
            waiters.remove(tid)
            state = self._threads[tid]
            if self._lock_holder.get(lock) is None:
                state.status = RUNNABLE
                self._runnable_set.add(tid)
            else:
                state.status = BLOCKED_LOCK
                self._lock_waiters.setdefault(lock, []).append(tid)

    def _wake_lock_waiters(self, lock: int) -> None:
        for waiter_tid in self._lock_waiters.pop(lock, []):
            waiter = self._threads[waiter_tid]
            if waiter.status == BLOCKED_LOCK:
                waiter.status = RUNNABLE
                self._runnable_set.add(waiter_tid)


def run_program(program: Program, seed: int = 0, **kwargs) -> Trace:
    """Convenience: run a program and collect the full trace."""
    events: List[Event] = []
    scheduler = Scheduler(program, seed=seed, sink=events.append, **kwargs)
    scheduler.run()
    return Trace(events)
