"""The concurrent-program DSL for the simulator.

A *program* is a set of thread bodies.  A thread body is a Python
generator function that yields :class:`Op` values — the simulator's
analogue of JVM bytecode.  The scheduler (:mod:`repro.sim.scheduler`)
interleaves the generators preemptively, enforces lock and join
semantics, and emits the corresponding trace events.

Example::

    def worker(tid):
        yield Acquire(LOCK)
        yield Read(COUNTER, site=1)
        yield Write(COUNTER, site=2)
        yield Release(LOCK)

    def main(tid):
        child = yield Fork(worker)      # Fork yields the child's tid back
        yield Write(FLAG, site=3)
        yield Join(child)

    program = Program(main)

``Fork`` takes a body *function* (called with the child's tid); the
scheduler sends the allocated child tid back into the parent generator,
so ``child = yield Fork(worker)`` works as shown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, List, Optional

__all__ = [
    "Op",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Fork",
    "Join",
    "Wait",
    "Notify",
    "NotifyAll",
    "VolRead",
    "VolWrite",
    "Enter",
    "Exit",
    "Alloc",
    "Work",
    "Program",
    "ThreadBody",
]

#: a thread body: called with the thread's tid, returns an op generator
ThreadBody = Callable[[int], Generator["Op", Optional[int], None]]


class Op:
    """Base class for program operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Read(Op):
    """Read data variable ``var`` at static program location ``site``."""

    var: int
    site: int = 0


@dataclass(frozen=True)
class Write(Op):
    """Write data variable ``var`` at static program location ``site``."""

    var: int
    site: int = 0


@dataclass(frozen=True)
class Acquire(Op):
    """Acquire lock ``lock`` (blocks while another thread holds it).

    Locks are reentrant, like Java monitors.
    """

    lock: int


@dataclass(frozen=True)
class Release(Op):
    """Release lock ``lock`` (must be held by this thread)."""

    lock: int


@dataclass(frozen=True)
class Fork(Op):
    """Start a new thread running ``body``; yields the child tid back."""

    body: ThreadBody


@dataclass(frozen=True)
class Join(Op):
    """Block until thread ``tid`` terminates."""

    tid: int


@dataclass(frozen=True)
class Wait(Op):
    """Java-style ``m.wait()``: must hold ``lock``; releases it fully,
    blocks until a :class:`Notify`/:class:`NotifyAll` on the same lock,
    then reacquires before continuing.  Emits the monitor's release and
    re-acquire as trace events (per the JMM, wait/notify itself adds no
    happens-before edge beyond the monitor).

    ``timeout``, if given, is ``m.wait(millis)``: the thread leaves the
    wait set on its own after that many scheduler steps, reacquires the
    monitor, and continues — whether or not anyone notified.
    """

    lock: int
    timeout: Optional[int] = None


@dataclass(frozen=True)
class Notify(Op):
    """Java-style ``m.notify()``: wakes one waiter (must hold ``lock``)."""

    lock: int


@dataclass(frozen=True)
class NotifyAll(Op):
    """Java-style ``m.notifyAll()``: wakes every waiter (must hold ``lock``)."""

    lock: int


@dataclass(frozen=True)
class VolRead(Op):
    """Read volatile variable ``vol`` (an acquire-like sync action)."""

    vol: int


@dataclass(frozen=True)
class VolWrite(Op):
    """Write volatile variable ``vol`` (a release-like sync action)."""

    vol: int


@dataclass(frozen=True)
class Enter(Op):
    """Enter method ``method`` (drives LiteRace's per-method sampling)."""

    method: int


@dataclass(frozen=True)
class Exit(Op):
    """Leave method ``method``."""

    method: int


@dataclass(frozen=True)
class Alloc(Op):
    """Allocate ``nbytes`` of program memory; ``live_delta`` adjusts the
    live-object count used by the space model (Figure 10)."""

    nbytes: int
    live_delta: int = 0


@dataclass(frozen=True)
class Work(Op):
    """``units`` of pure computation: consumes scheduler time, emits no
    trace event.  Used by the cost model as uninstrumented base work."""

    units: int = 1


@dataclass
class Program:
    """One or more root thread bodies (each becomes a live thread at
    startup; the first is the main thread, tid 0)."""

    main: ThreadBody
    extra_roots: List[ThreadBody] = field(default_factory=list)

    @property
    def roots(self) -> List[ThreadBody]:
        return [self.main] + list(self.extra_roots)
