"""The managed runtime: allocation, nursery GC, and sampling toggling.

This stands in for Jikes RVM (paper §4).  The paper's implementation
turns PACER's sampling on and off at the end of nursery collections,
which occur every 32 MB of allocation.  Crucially, race-detection
metadata allocated *during* sampling makes collections come sooner, so
naive rate-r coin flips at GCs under-sample program work; the paper
corrects the entry probability by measuring work in synchronization
operations.  :class:`Runtime` reproduces that whole mechanism:

* program ops allocate (``Alloc`` ops plus a small per-op allocation);
* the detector's ``counters.words_allocated`` feed the same allocation
  budget while sampling (the bias source);
* at each GC boundary the :class:`~repro.core.sampling.SamplingController`
  decides the next period, and the detector's sampling flag toggles;
* every ``full_gc_every`` collections the runtime records a "full-heap"
  memory snapshot: live program words, object-header overhead, and the
  detector's live metadata (Figure 10's metric);
* sync-op counts per period feed the controller and define the
  *effective sampling rate* (Table 1's metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.sampling import SamplingController
from ..detectors.base import Detector
from ..trace.events import ALLOC, Event, SBEGIN, SEND, SYNC_KINDS
from .program import Program
from .scheduler import Scheduler

__all__ = ["RuntimeConfig", "MemorySnapshot", "Runtime"]

#: words are 4 bytes, as on the paper's 32-bit Jikes RVM configuration
BYTES_PER_WORD = 4


@dataclass
class RuntimeConfig:
    """Runtime tunables.

    ``nursery_bytes`` is scaled down from the paper's 32 MB to suit
    simulator-sized workloads; what matters for fidelity is the *ratio*
    between nursery size and allocation rate, which sets how many GC
    (sampling-decision) boundaries a run contains.
    """

    nursery_bytes: int = 2_048
    bytes_per_access: int = 2  # background program allocation per data access
    object_header_words: int = 2  # PACER's added header words (paper §4)
    object_size_words: int = 8  # average live-object payload (space model)
    full_gc_every: int = 4  # full-heap (snapshot) GC frequency
    track_memory: bool = True


@dataclass(frozen=True)
class MemorySnapshot:
    """Live memory at a full-heap GC, in words."""

    step: int  # event count at snapshot time
    program_words: int  # live program data
    header_words: int  # PACER's two header words per live object
    metadata_words: int  # detector metadata (clocks, read maps, ...)

    @property
    def total_words(self) -> int:
        return self.program_words + self.header_words + self.metadata_words


class Runtime:
    """Runs a program under a detector with GC-driven sampling."""

    def __init__(
        self,
        program: Program,
        detector: Detector,
        controller: Optional[SamplingController] = None,
        config: Optional[RuntimeConfig] = None,
        seed: int = 0,
        count_headers: bool = True,
        observer=None,
    ) -> None:
        self.detector = detector
        self.controller = controller
        self.config = config or RuntimeConfig()
        self.count_headers = count_headers
        #: optional :class:`repro.obs.RunObserver` — also attached to the
        #: detector and scheduler so one observer sees the whole run
        self.observer = observer
        if observer is not None:
            observer.attach(detector)
        self._scheduler = Scheduler(
            program, seed=seed, sink=self._on_event, observer=observer
        )
        self._sampling = False
        self._allocated = 0
        self._last_meta_words = 0
        self._gc_count = 0
        self._events = 0
        self._live_objects = 0
        self._live_program_words = 0
        self._sync_this_period = 0
        self.sync_sampled = 0
        self.sync_total = 0
        self.gc_log: List[Tuple[int, bool]] = []
        self.snapshots: List[MemorySnapshot] = []

    # -- the event pump ----------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self._events += 1
        kind = event.kind
        if kind == ALLOC:
            self._allocated += event.target
            # the event's site field carries the live-object delta
            self._live_objects = max(0, self._live_objects + event.site)
            self._live_program_words = (
                self._live_objects * self.config.object_size_words
            )
        else:
            if kind in SYNC_KINDS:
                self._sync_this_period += 1
                self.sync_total += 1
                if self._sampling:
                    self.sync_sampled += 1
            self._allocated += self.config.bytes_per_access
        before = self.detector.counters.words_allocated
        self.detector.apply(event)
        # Detector metadata allocation counts against the nursery — this
        # is what shortens sampling periods and biases naive controllers.
        self._allocated += (
            self.detector.counters.words_allocated - before
        ) * BYTES_PER_WORD
        if self._allocated >= self.config.nursery_bytes:
            self._gc()

    def _gc(self) -> None:
        """A nursery collection: sampling decision + optional snapshot."""
        self._allocated = 0
        self._gc_count += 1
        if self.controller is not None:
            self.controller.on_work(self._sync_this_period, self._sampling)
            self._sync_this_period = 0
            next_sampling = self.controller.decide()
            if next_sampling != self._sampling:
                if next_sampling:
                    self.detector.apply(Event(SBEGIN, -1, 0, 0))
                else:
                    self.detector.apply(Event(SEND, -1, 0, 0))
                self._sampling = next_sampling
        self.gc_log.append((self._events, self._sampling))
        if self.observer is not None:
            # GC boundaries are the live path's probe cadence: they are
            # deterministic in (program, seed) and they bracket exactly
            # the points where sampling decisions happen.
            self.observer.on_gc(self.detector, self._events)
        if self.config.track_memory and self._gc_count % self.config.full_gc_every == 0:
            self._snapshot()

    def _snapshot(self) -> None:
        header = (
            self.config.object_header_words * self._live_objects
            if self.count_headers
            else 0
        )
        self.snapshots.append(
            MemorySnapshot(
                step=self._events,
                program_words=self._live_program_words,
                header_words=header,
                metadata_words=self.detector.footprint_words(),
            )
        )

    # -- public API -----------------------------------------------------------

    def run(self) -> Detector:
        """Execute the program to completion; returns the detector."""
        # Allow the controller to start us inside a sampling period.
        if self.controller is not None and self.controller.decide():
            self.detector.apply(Event(SBEGIN, -1, 0, 0))
            self._sampling = True
        self._scheduler.run()
        if self.controller is not None:
            # close the books on the final period
            self.controller.on_work(self._sync_this_period, self._sampling)
            self._sync_this_period = 0
        if self.config.track_memory:
            self._snapshot()
        if self.observer is not None:
            self.observer.on_phase("run", 0, self._events)
            self.observer.finalize(self.detector, self._events)
        return self.detector

    @property
    def effective_sampling_rate(self) -> float:
        """Fraction of synchronization operations inside sampling periods.

        This is Table 1's measurement: sync operations are performed at
        the same rate whether or not PACER samples, so they proxy for
        program work without observer bias.
        """
        return self.sync_sampled / self.sync_total if self.sync_total else 0.0

    @property
    def threads_started(self) -> int:
        return self._scheduler.threads_started

    @property
    def context_switches(self) -> int:
        return self._scheduler.context_switches

    @property
    def scheduler_steps(self) -> int:
        return self._scheduler.steps

    @property
    def max_live_threads(self) -> int:
        return self._scheduler.max_live

    @property
    def events(self) -> int:
        return self._events
