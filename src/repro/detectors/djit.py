"""The Djit⁺ detector (Pozniansky & Schuster; paper §6.2).

Djit⁺ is MultiRace's vector-clock component and the baseline FASTTRACK
improved on.  Like GENERIC it keeps full read/write vector clocks per
variable, but it adds Djit⁺'s *time-frame* optimization: an access is
redundant — and analysis is skipped entirely — if the same thread already
performed an access at least as strong (write ≥ read) to the same
variable in the same time frame (between two increments of the thread's
clock).

Included as a related-work baseline for the detector-comparison example
and ablation benches; it reports the same races as GENERIC while doing
measurably less per-access work.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .generic import GenericDetector

__all__ = ["DjitPlusDetector"]


class DjitPlusDetector(GenericDetector):
    """GENERIC plus Djit⁺ same-time-frame redundancy filtering."""

    name = "djit+"

    def __init__(self, backend: Optional[str] = None) -> None:
        super().__init__(backend)
        # (tid, var) -> (clock, was_write) of the last analyzed access
        self._frame: Dict[Tuple[int, int], Tuple[int, bool]] = {}

    def _redundant(self, tid: int, var: int, is_write: bool) -> bool:
        """True if this access repeats one from the same time frame."""
        clock = self._clock_of(tid).get(tid)
        key = (tid, var)
        last = self._frame.get(key)
        if last is not None and last[0] == clock:
            if last[1] or not is_write:
                return True  # a write covers everything; a read covers reads
            self._frame[key] = (clock, True)  # read seen, now a write
            return False
        self._frame[key] = (clock, is_write)
        return False

    def read(self, tid: int, var: int, site: int = 0) -> None:
        if self._redundant(tid, var, is_write=False):
            self.counters.reads_fast_sampling += 1
            return
        super().read(tid, var, site)

    def write(self, tid: int, var: int, site: int = 0) -> None:
        if self._redundant(tid, var, is_write=True):
            self.counters.writes_fast_sampling += 1
            return
        super().write(tid, var, site)

    def footprint_words(self) -> int:
        return super().footprint_words() + 2 * len(self._frame)
