"""The GENERIC O(n) vector-clock race detector (paper §2.1).

Every data variable keeps a full read vector and write vector; every
synchronization object keeps a vector clock.  All analysis is O(n) in
the number of threads — this is the baseline FASTTRACK and PACER improve
on, and it doubles as the reference implementation for the happens-before
oracle tests (it is sound and precise, merely slow).
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Optional, Tuple

from ..core.clocks import VectorClock
from ..core.metadata import footprint_words
from .base import Detector, READ_WRITE, WRITE_READ, WRITE_WRITE

__all__ = ["GenericDetector"]


class _AccessVector:
    """A per-variable access vector: tid -> (clock, site)."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[int, Tuple[int, int]] = {}

    def record(self, tid: int, clock: int, site: int, index: int = -1) -> None:
        self.entries[tid] = (clock, site, index)

    def racing(self, clock: VectorClock):
        """Entries ``(tid, clock, site, index)`` not happening-before ``clock``."""
        return [
            (t, c, s, i)
            for t, (c, s, i) in self.entries.items()
            if c > clock.get(t)
        ]

    def words(self) -> int:
        return 1 + 2 * len(self.entries)


class _VarVectors:
    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads = _AccessVector()
        self.writes = _AccessVector()


class GenericDetector(Detector):
    """Sound and precise detector with O(n) analysis everywhere.

    GENERIC's full read/write vectors have no epoch-compressible layout,
    so both state backends share this one representation; ``backend`` is
    accepted (and carried as a label) for a uniform construction API.
    """

    name = "generic"

    def __init__(self, backend: Optional[str] = None) -> None:
        super().__init__(backend)
        self._thread_clock: Dict[int, VectorClock] = {}
        self._lock_clock: Dict[int, VectorClock] = {}
        self._vol_clock: Dict[int, VectorClock] = {}
        self._vars: Dict[int, _VarVectors] = {}

    # -- metadata helpers ----------------------------------------------------

    def _clock_of(self, tid: int) -> VectorClock:
        clock = self._thread_clock.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.increment(tid)
            self._thread_clock[tid] = clock
            self.counters.words_allocated += 2
        return clock

    def _var(self, var: int) -> _VarVectors:
        state = self._vars.get(var)
        if state is None:
            state = _VarVectors()
            self._vars[var] = state
            self.counters.words_allocated += 2
        return state

    # -- accesses (Algorithms 5 and 6) -----------------------------------------

    def read(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.reads_slow_sampling += 1
        clock = self._clock_of(tid)
        state = self._var(var)
        for u, c, s, i in state.writes.racing(clock):
            self.report(var, WRITE_READ, u, c, s, tid, site, first_index=i)
        state.reads.record(tid, clock.get(tid), site, self.now)
        self.counters.words_allocated += 2

    def write(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.writes_slow_sampling += 1
        clock = self._clock_of(tid)
        state = self._var(var)
        for u, c, s, i in state.writes.racing(clock):
            self.report(var, WRITE_WRITE, u, c, s, tid, site, first_index=i)
        for u, c, s, i in state.reads.racing(clock):
            self.report(var, READ_WRITE, u, c, s, tid, site, first_index=i)
        state.writes.record(tid, clock.get(tid), site, self.now)
        self.counters.words_allocated += 2

    # -- synchronization (Algorithms 1-4, 14-15) ---------------------------------

    def acquire(self, tid: int, lock: int) -> None:
        clock = self._clock_of(tid)
        lock_clock = self._lock_clock.get(lock)
        if lock_clock is not None:
            clock.join(lock_clock)
        self.counters.joins_slow_sampling += 1

    def release(self, tid: int, lock: int) -> None:
        clock = self._clock_of(tid)
        self._lock_clock[lock] = clock.copy()
        self.counters.copies_deep_sampling += 1
        self.counters.words_allocated += 1 + len(clock)
        clock.increment(tid)
        self.counters.increments += 1

    def fork(self, tid: int, child: int) -> None:
        clock = self._clock_of(tid)
        child_clock = clock.copy()
        child_clock.increment(child)
        self._thread_clock[child] = child_clock
        self.counters.copies_deep_sampling += 1
        self.counters.words_allocated += 1 + len(child_clock)
        clock.increment(tid)
        self.counters.increments += 2

    def join(self, tid: int, child: int) -> None:
        clock = self._clock_of(tid)
        child_clock = self._clock_of(child)
        clock.join(child_clock)
        self.counters.joins_slow_sampling += 1
        child_clock.increment(child)
        self.counters.increments += 1

    def vol_read(self, tid: int, vol: int) -> None:
        clock = self._clock_of(tid)
        vol_clock = self._vol_clock.get(vol)
        if vol_clock is not None:
            clock.join(vol_clock)
        self.counters.joins_slow_sampling += 1

    def vol_write(self, tid: int, vol: int) -> None:
        clock = self._clock_of(tid)
        vol_clock = self._vol_clock.get(vol)
        if vol_clock is None:
            vol_clock = VectorClock()
            self._vol_clock[vol] = vol_clock
            self.counters.words_allocated += 1
        vol_clock.join(clock)
        self.counters.joins_slow_sampling += 1
        clock.increment(tid)
        self.counters.increments += 1

    # -- accounting -----------------------------------------------------------

    def footprint_words(self) -> int:
        return footprint_words(
            sum(
                state.reads.words() + state.writes.words()
                for state in self._vars.values()
            ),
            chain(
                self._thread_clock.values(),
                self._lock_clock.values(),
                self._vol_clock.values(),
            ),
        )
