"""The Eraser lockset detector (Savage et al.; paper §6.2).

Eraser checks a *locking discipline*: every shared variable must be
protected by some common lock.  It is fast and simple but **imprecise**:
fork/join, wait/notify, and volatile-based synchronization all produce
false positives.  The paper cites this imprecision (and the fact that
FASTTRACK erased lockset's performance advantage) as the motivation for
precise vector-clock detection; this implementation exists to make that
comparison concrete in the examples and benchmarks.

Per-variable state machine (the original paper's Figure 2):

    VIRGIN -> EXCLUSIVE(t) -> SHARED -> SHARED_MODIFIED

Candidate locksets are refined only in the shared states; an empty
lockset in SHARED_MODIFIED reports a race.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from .base import Detector

__all__ = ["EraserDetector"]

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


class _VarLockset:
    __slots__ = ("state", "owner", "lockset", "last_tid", "last_site", "reported")

    def __init__(self) -> None:
        self.state = VIRGIN
        self.owner = -1
        self.lockset: Optional[Set[int]] = None  # None = universal set
        self.last_tid = -1
        self.last_site = 0
        self.reported = False


class EraserDetector(Detector):
    """Imprecise lockset-based detector (reports false positives)."""

    name = "eraser"

    def __init__(self, backend: Optional[str] = None) -> None:
        super().__init__(backend)
        self._held: Dict[int, Set[int]] = {}  # tid -> locks held
        self._vars: Dict[int, _VarLockset] = {}

    # -- lock tracking ------------------------------------------------------

    def _locks_of(self, tid: int) -> Set[int]:
        return self._held.setdefault(tid, set())

    def acquire(self, tid: int, lock: int) -> None:
        self._locks_of(tid).add(lock)

    def release(self, tid: int, lock: int) -> None:
        self._locks_of(tid).discard(lock)

    # Eraser has no notion of fork/join or volatile happens-before edges;
    # this is precisely the source of its false positives.

    def fork(self, tid: int, child: int) -> None:
        pass

    def join(self, tid: int, child: int) -> None:
        pass

    def vol_read(self, tid: int, vol: int) -> None:
        pass

    def vol_write(self, tid: int, vol: int) -> None:
        pass

    # -- the lockset state machine -------------------------------------------

    def _access(self, tid: int, var: int, site: int, is_write: bool) -> None:
        state = self._vars.get(var)
        if state is None:
            state = _VarLockset()
            self._vars[var] = state
            self.counters.words_allocated += 3
        if state.state == VIRGIN:
            state.state = EXCLUSIVE
            state.owner = tid
        elif state.state == EXCLUSIVE:
            if tid != state.owner:
                # First sharing: initialize the candidate lockset.
                state.state = SHARED_MODIFIED if is_write else SHARED
                state.lockset = set(self._locks_of(tid))
        else:
            if is_write:
                state.state = SHARED_MODIFIED
            assert state.lockset is not None
            state.lockset &= self._locks_of(tid)
        if (
            state.state == SHARED_MODIFIED
            and state.lockset is not None
            and not state.lockset
            and not state.reported
        ):
            state.reported = True  # Eraser reports each variable once
            self.report(
                var,
                "ww" if is_write else "rw",
                state.last_tid,
                0,
                state.last_site,
                tid,
                site,
            )
        state.last_tid = tid
        state.last_site = site

    def read(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.reads_slow_sampling += 1
        self._access(tid, var, site, is_write=False)

    def write(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.writes_slow_sampling += 1
        self._access(tid, var, site, is_write=True)

    # -- accounting -----------------------------------------------------------

    def footprint_words(self) -> int:
        total = 0
        for state in self._vars.values():
            total += 3 + (len(state.lockset) if state.lockset else 0)
        for locks in self._held.values():
            total += 1 + len(locks)
        return total
