"""Dynamic race detectors: GENERIC, FASTTRACK, PACER, and baselines.

``PacerDetector`` lives in :mod:`repro.core.pacer` (it is the paper's
contribution) and is re-exported here lazily to avoid a circular import
with :mod:`repro.detectors.base`.
"""

from .base import Detector, NullDetector, Race, distinct_races
from .djit import DjitPlusDetector
from .eraser import EraserDetector
from .fasttrack import FastTrackDetector
from .generic import GenericDetector
from .goldilocks import GoldilocksDetector
from .literace import LiteRaceDetector

__all__ = [
    "Detector",
    "NullDetector",
    "Race",
    "distinct_races",
    "GenericDetector",
    "GoldilocksDetector",
    "FastTrackDetector",
    "DjitPlusDetector",
    "LiteRaceDetector",
    "EraserDetector",
    "PacerDetector",
]


def __getattr__(name):
    if name == "PacerDetector":
        from ..core.pacer import PacerDetector

        return PacerDetector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
