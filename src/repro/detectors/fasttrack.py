"""The FASTTRACK detector (paper §2.2, Algorithms 7 and 8).

FASTTRACK replaces the write vector with an *epoch* and the read vector
with an epoch-or-map *read map*, making nearly all access analysis O(1).
Synchronization analysis is unchanged from GENERIC (O(n)).

Following the paper's §2.2 modification, our FASTTRACK clears the read
map when a write supersedes it ("New: clear read map" in Algorithm 8);
this loses nothing — any future access racing with a cleared read also
races with the superseding write — and aligns FASTTRACK's metadata
lifecycle with PACER's.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Optional

from ..core.backend import PackedVarStore
from ..core.clocks import Epoch, ReadMap, VectorClock, epoch_leq_vc
from ..core.engine import fasttrack_access_packed, fasttrack_kernel
from ..core.metadata import VarState, footprint_words
from ..trace.batch import EventBatch
from .base import Detector, Race, READ_WRITE, WRITE_READ, WRITE_WRITE

__all__ = ["FastTrackDetector"]

#: singleton kind columns for the scalar-through-kernel packed path
_RD = (0,)
_WR = (1,)


class FastTrackDetector(Detector):
    """Sound and precise detector with O(1) common-case access analysis.

    Per-variable state lives behind the state-backend seam: the
    ``object`` backend keeps the :class:`VarState` dict the algorithm map
    points at, the ``packed`` backend (default) an integer-array arena
    driven by :func:`~repro.core.engine.fasttrack_kernel` for scalar and
    batched dispatch alike.
    """

    name = "fasttrack"

    def __init__(self, backend: Optional[str] = None) -> None:
        super().__init__(backend)
        self._thread_clock: Dict[int, VectorClock] = {}
        self._lock_clock: Dict[int, VectorClock] = {}
        self._vol_clock: Dict[int, VectorClock] = {}
        if self.backend_name == "packed-np":
            from ..core.backend_np import NumpyVarStore, fasttrack_kernel_np

            self._arena = NumpyVarStore()
            self._vars: Optional[Dict[int, VarState]] = None
            self._np_kernel = fasttrack_kernel_np
            self._np_reforked: set = set()
        elif self.backend_name == "packed":
            self._arena: Optional[PackedVarStore] = PackedVarStore()
            self._vars = None
            self._np_kernel = None
        else:
            self._arena = None
            self._vars = {}
            self._np_kernel = None

    # -- metadata helpers -------------------------------------------------

    def _clock_of(self, tid: int) -> VectorClock:
        clock = self._thread_clock.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.increment(tid)
            self._thread_clock[tid] = clock
            self.counters.words_allocated += 2
        return clock

    def _var(self, var: int) -> VarState:
        state = self._vars.get(var)
        if state is None:
            state = VarState()
            self._vars[var] = state
            self.counters.words_allocated += 2
        return state

    # -- race checks --------------------------------------------------------

    def _check_write(
        self, var: int, state: VarState, clock: VectorClock, tid: int, site: int, kind: str
    ) -> None:
        """check W ⪯ C_t; report a race with the prior write otherwise."""
        w = state.write
        if w is not None and not epoch_leq_vc(w, clock):
            self.report(
                var, kind, w.tid, w.clock, state.write_site, tid, site,
                first_index=state.write_index,
            )

    def _check_reads(
        self, var: int, state: VarState, clock: VectorClock, tid: int, site: int
    ) -> None:
        """check R ⊑ C_t; report read-write races otherwise."""
        r = state.read
        if r is None:
            return
        for u, c, s, i in r.racing_entries(clock):
            self.report(var, READ_WRITE, u, c, s, tid, site, first_index=i)

    # -- accesses (Algorithms 7 and 8) ------------------------------------------

    def read(self, tid: int, var: int, site: int = 0) -> None:
        if self._arena is not None:
            if self._np_kernel is not None:
                # NumPy arena: the scalar transcription casts array
                # scalars to plain ints so races/read maps stay clean
                self._threads.add(tid)
                fasttrack_access_packed(
                    self, 0, tid, var, site, self._events_seen - 1
                )
                return
            fasttrack_kernel(
                self, _RD, (tid,), (var,), (site,), self._events_seen - 1
            )
            return
        self.counters.reads_slow_sampling += 1
        clock = self._clock_of(tid)
        state = self._var(var)
        own = clock.get(tid)
        r = state.read
        if r is not None and r.is_epoch and r.epoch == Epoch(own, tid):
            return  # same epoch: no action
        self._check_write(var, state, clock, tid, site, WRITE_READ)
        if r is None:
            state.read = ReadMap(tid, own, site, self.now)
            self.counters.words_allocated += 2
        elif r.is_epoch and r.leq_vc(clock):
            r.set_epoch(tid, own, site, self.now)  # overwrite read map
        else:
            r.record(tid, own, site, self.now)  # update (maybe inflating) map
            self.counters.words_allocated += 2

    def write(self, tid: int, var: int, site: int = 0) -> None:
        if self._arena is not None:
            if self._np_kernel is not None:
                self._threads.add(tid)
                fasttrack_access_packed(
                    self, 1, tid, var, site, self._events_seen - 1
                )
                return
            fasttrack_kernel(
                self, _WR, (tid,), (var,), (site,), self._events_seen - 1
            )
            return
        self.counters.writes_slow_sampling += 1
        clock = self._clock_of(tid)
        state = self._var(var)
        own = clock.get(tid)
        if state.write == Epoch(own, tid):
            return  # same epoch: no action
        self._check_write(var, state, clock, tid, site, WRITE_WRITE)
        self._check_reads(var, state, clock, tid, site)
        state.read = None  # modified FASTTRACK: clear read map
        state.write = Epoch(own, tid)
        state.write_site = site
        state.write_index = self.now
        self.counters.words_allocated += 2

    # -- batched fast path ---------------------------------------------------

    def apply_batch(self, batch: EventBatch) -> None:
        """Inlined batch loop for the access-dominated hot path.

        Reads and writes (Algorithms 7/8) are transcribed inline against
        the raw batch columns — no per-event dispatch, trampoline, or
        :class:`Event` construction, and clock components are probed
        directly.  Synchronization and auxiliary events call the typed
        handlers directly.  Subclasses that hook accesses or method
        events (LiteRace) are routed to the generic batch loop so their
        overrides stay in charge.  The differential suite pins this loop
        to the scalar semantics operation for operation.
        """
        cls = type(self)
        if (
            cls.read is not FastTrackDetector.read
            or cls.write is not FastTrackDetector.write
            or cls.method_enter is not Detector.method_enter
            or cls.method_exit is not Detector.method_exit
        ):
            super().apply_batch(batch)
            return
        if self._arena is not None:
            if self._np_kernel is not None:
                kinds, tids, targets, sites_np, site_list = (
                    batch.to_numpy_columns()
                )
                self._np_kernel(
                    self, kinds, tids, targets, sites_np, site_list,
                    self._events_seen,
                )
                return
            kinds, tids, targets, sites = batch.to_list_columns()
            fasttrack_kernel(
                self, kinds, tids, targets, sites, self._events_seen,
            )
            return
        batch.to_list_columns()
        thread_clock = self._thread_clock
        vars_map = self._vars
        counters = self.counters
        threads_add = self._threads.add
        races_append = self.races.append
        seen = self._events_seen
        reads = 0
        writes = 0
        words = 0
        last_tid = None
        for k, tid, target, site in zip(
            batch.kinds, batch.tids, batch.targets, batch.sites
        ):
            seen += 1
            if k == 0:  # rd (Algorithm 7)
                if tid != last_tid:
                    threads_add(tid)
                    last_tid = tid
                reads += 1
                clock = thread_clock.get(tid)
                if clock is None:
                    clock = VectorClock()
                    clock.increment(tid)
                    thread_clock[tid] = clock
                    words += 2
                state = vars_map.get(target)
                if state is None:
                    state = VarState()
                    vars_map[target] = state
                    words += 2
                c = clock._c
                own = c[tid] if tid < len(c) else 0
                r = state.read
                if (
                    r is not None
                    and r._map is None
                    and r._clock == own
                    and r._tid == tid
                ):
                    continue  # same read epoch: no action
                w = state.write
                if w is not None and w[0] != 0:
                    wt = w[1]
                    if w[0] > (c[wt] if wt < len(c) else 0):
                        races_append(
                            Race(target, WRITE_READ, wt, w[0], state.write_site,
                                 tid, site, seen - 1, state.write_index)
                        )
                if r is None:
                    state.read = ReadMap(tid, own, site, seen - 1)
                    words += 2
                elif r._map is None and r._clock <= (
                    c[r._tid] if r._tid < len(c) else 0
                ):
                    r.set_epoch(tid, own, site, seen - 1)  # overwrite read map
                else:
                    r.record(tid, own, site, seen - 1)  # update/inflate map
                    words += 2
            elif k == 1:  # wr (Algorithm 8)
                if tid != last_tid:
                    threads_add(tid)
                    last_tid = tid
                writes += 1
                clock = thread_clock.get(tid)
                if clock is None:
                    clock = VectorClock()
                    clock.increment(tid)
                    thread_clock[tid] = clock
                    words += 2
                state = vars_map.get(target)
                if state is None:
                    state = VarState()
                    vars_map[target] = state
                    words += 2
                c = clock._c
                own = c[tid] if tid < len(c) else 0
                w = state.write
                if w is not None and w[0] == own and w[1] == tid:
                    continue  # same write epoch: no action
                if w is not None and w[0] != 0:
                    wt = w[1]
                    if w[0] > (c[wt] if wt < len(c) else 0):
                        races_append(
                            Race(target, WRITE_WRITE, wt, w[0], state.write_site,
                                 tid, site, seen - 1, state.write_index)
                        )
                r = state.read
                if r is not None:
                    for u, rc, rs, ri in r.racing_entries(clock):
                        races_append(
                            Race(target, READ_WRITE, u, rc, rs,
                                 tid, site, seen - 1, ri)
                        )
                state.read = None  # modified FASTTRACK: clear read map
                state.write = Epoch(own, tid)
                state.write_site = site
                state.write_index = seen - 1
                words += 2
            elif k >= 10:  # m_enter / m_exit / alloc: no-ops here
                continue
            elif k == 8:  # period boundaries carry no acting thread
                self._events_seen = seen
                self.begin_sampling()
            elif k == 9:
                self._events_seen = seen
                self.end_sampling()
            else:  # synchronization actions
                self._events_seen = seen
                if tid != last_tid:
                    threads_add(tid)
                    last_tid = tid
                if k == 2:
                    self.acquire(tid, target)
                elif k == 3:
                    self.release(tid, target)
                elif k == 4:
                    threads_add(target)
                    self.fork(tid, target)
                elif k == 5:
                    self.join(tid, target)
                elif k == 6:
                    self.vol_read(tid, target)
                else:  # k == 7
                    self.vol_write(tid, target)
        self._events_seen = seen
        counters.reads_slow_sampling += reads
        counters.writes_slow_sampling += writes
        counters.words_allocated += words

    # -- synchronization (same as GENERIC) ----------------------------------------

    def acquire(self, tid: int, lock: int) -> None:
        clock = self._clock_of(tid)
        lock_clock = self._lock_clock.get(lock)
        if lock_clock is not None:
            clock.join(lock_clock)
        self.counters.joins_slow_sampling += 1

    def release(self, tid: int, lock: int) -> None:
        clock = self._clock_of(tid)
        self._lock_clock[lock] = clock.copy()
        self.counters.copies_deep_sampling += 1
        self.counters.words_allocated += 1 + len(clock)
        clock.increment(tid)
        self.counters.increments += 1

    def fork(self, tid: int, child: int) -> None:
        clock = self._clock_of(tid)
        child_clock = clock.copy()
        child_clock.increment(child)
        self._thread_clock[child] = child_clock
        self.counters.copies_deep_sampling += 1
        self.counters.words_allocated += 1 + len(child_clock)
        clock.increment(tid)
        self.counters.increments += 2

    def join(self, tid: int, child: int) -> None:
        clock = self._clock_of(tid)
        child_clock = self._clock_of(child)
        clock.join(child_clock)
        self.counters.joins_slow_sampling += 1
        child_clock.increment(child)
        self.counters.increments += 1

    def vol_read(self, tid: int, vol: int) -> None:
        clock = self._clock_of(tid)
        vol_clock = self._vol_clock.get(vol)
        if vol_clock is not None:
            clock.join(vol_clock)
        self.counters.joins_slow_sampling += 1

    def vol_write(self, tid: int, vol: int) -> None:
        clock = self._clock_of(tid)
        vol_clock = self._vol_clock.get(vol)
        if vol_clock is None:
            vol_clock = VectorClock()
            self._vol_clock[vol] = vol_clock
            self.counters.words_allocated += 1
        vol_clock.join(clock)
        self.counters.joins_slow_sampling += 1
        clock.increment(tid)
        self.counters.increments += 1

    # -- accounting ----------------------------------------------------------

    @property
    def tracked_variables(self) -> int:
        """Number of variables with live metadata (space proxy)."""
        if self._arena is not None:
            return len(self._arena)
        return len(self._vars)

    def var_view(self, var: int) -> Optional[VarState]:
        """``var``'s metadata as a :class:`VarState` on either backend.

        Introspection for tests and tools; on the packed backend the view
        is a reconstruction and does not write back to the arena.
        """
        if self._arena is not None:
            return self._arena.view(var)
        return self._vars.get(var)

    def max_clock_entries(self) -> int:
        """Largest live vector clock across threads, locks, volatiles."""
        best = 0
        for table in (self._thread_clock, self._lock_clock, self._vol_clock):
            for clock in table.values():
                if len(clock) > best:
                    best = len(clock)
        return best

    def footprint_words(self) -> int:
        if self._arena is not None:
            var_words = self._arena.words()
        else:
            var_words = sum(state.words() for state in self._vars.values())
        return footprint_words(
            var_words,
            chain(
                self._thread_clock.values(),
                self._lock_clock.values(),
                self._vol_clock.values(),
            ),
        )
