"""The FASTTRACK detector (paper §2.2, Algorithms 7 and 8).

FASTTRACK replaces the write vector with an *epoch* and the read vector
with an epoch-or-map *read map*, making nearly all access analysis O(1).
Synchronization analysis is unchanged from GENERIC (O(n)).

Following the paper's §2.2 modification, our FASTTRACK clears the read
map when a write supersedes it ("New: clear read map" in Algorithm 8);
this loses nothing — any future access racing with a cleared read also
races with the superseding write — and aligns FASTTRACK's metadata
lifecycle with PACER's.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.clocks import Epoch, ReadMap, VectorClock, epoch_leq_vc
from ..core.metadata import VarState
from .base import Detector, READ_WRITE, WRITE_READ, WRITE_WRITE

__all__ = ["FastTrackDetector"]


class FastTrackDetector(Detector):
    """Sound and precise detector with O(1) common-case access analysis."""

    name = "fasttrack"

    def __init__(self) -> None:
        super().__init__()
        self._thread_clock: Dict[int, VectorClock] = {}
        self._lock_clock: Dict[int, VectorClock] = {}
        self._vol_clock: Dict[int, VectorClock] = {}
        self._vars: Dict[int, VarState] = {}

    # -- metadata helpers -------------------------------------------------

    def _clock_of(self, tid: int) -> VectorClock:
        clock = self._thread_clock.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.increment(tid)
            self._thread_clock[tid] = clock
            self.counters.words_allocated += 2
        return clock

    def _var(self, var: int) -> VarState:
        state = self._vars.get(var)
        if state is None:
            state = VarState()
            self._vars[var] = state
            self.counters.words_allocated += 2
        return state

    # -- race checks --------------------------------------------------------

    def _check_write(
        self, var: int, state: VarState, clock: VectorClock, tid: int, site: int, kind: str
    ) -> None:
        """check W ⪯ C_t; report a race with the prior write otherwise."""
        w = state.write
        if w is not None and not epoch_leq_vc(w, clock):
            self.report(
                var, kind, w.tid, w.clock, state.write_site, tid, site,
                first_index=state.write_index,
            )

    def _check_reads(
        self, var: int, state: VarState, clock: VectorClock, tid: int, site: int
    ) -> None:
        """check R ⊑ C_t; report read-write races otherwise."""
        r = state.read
        if r is None:
            return
        for u, c, s, i in r.racing_entries(clock):
            self.report(var, READ_WRITE, u, c, s, tid, site, first_index=i)

    # -- accesses (Algorithms 7 and 8) ------------------------------------------

    def read(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.reads_slow_sampling += 1
        clock = self._clock_of(tid)
        state = self._var(var)
        own = clock.get(tid)
        r = state.read
        if r is not None and r.is_epoch and r.epoch == Epoch(own, tid):
            return  # same epoch: no action
        self._check_write(var, state, clock, tid, site, WRITE_READ)
        if r is None:
            state.read = ReadMap(tid, own, site, self.now)
            self.counters.words_allocated += 2
        elif r.is_epoch and r.leq_vc(clock):
            r.set_epoch(tid, own, site, self.now)  # overwrite read map
        else:
            r.record(tid, own, site, self.now)  # update (maybe inflating) map
            self.counters.words_allocated += 2

    def write(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.writes_slow_sampling += 1
        clock = self._clock_of(tid)
        state = self._var(var)
        own = clock.get(tid)
        if state.write == Epoch(own, tid):
            return  # same epoch: no action
        self._check_write(var, state, clock, tid, site, WRITE_WRITE)
        self._check_reads(var, state, clock, tid, site)
        state.read = None  # modified FASTTRACK: clear read map
        state.write = Epoch(own, tid)
        state.write_site = site
        state.write_index = self.now
        self.counters.words_allocated += 2

    # -- synchronization (same as GENERIC) ----------------------------------------

    def acquire(self, tid: int, lock: int) -> None:
        clock = self._clock_of(tid)
        lock_clock = self._lock_clock.get(lock)
        if lock_clock is not None:
            clock.join(lock_clock)
        self.counters.joins_slow_sampling += 1

    def release(self, tid: int, lock: int) -> None:
        clock = self._clock_of(tid)
        self._lock_clock[lock] = clock.copy()
        self.counters.copies_deep_sampling += 1
        self.counters.words_allocated += 1 + len(clock)
        clock.increment(tid)
        self.counters.increments += 1

    def fork(self, tid: int, child: int) -> None:
        clock = self._clock_of(tid)
        child_clock = clock.copy()
        child_clock.increment(child)
        self._thread_clock[child] = child_clock
        self.counters.copies_deep_sampling += 1
        self.counters.words_allocated += 1 + len(child_clock)
        clock.increment(tid)
        self.counters.increments += 2

    def join(self, tid: int, child: int) -> None:
        clock = self._clock_of(tid)
        child_clock = self._clock_of(child)
        clock.join(child_clock)
        self.counters.joins_slow_sampling += 1
        child_clock.increment(child)
        self.counters.increments += 1

    def vol_read(self, tid: int, vol: int) -> None:
        clock = self._clock_of(tid)
        vol_clock = self._vol_clock.get(vol)
        if vol_clock is not None:
            clock.join(vol_clock)
        self.counters.joins_slow_sampling += 1

    def vol_write(self, tid: int, vol: int) -> None:
        clock = self._clock_of(tid)
        vol_clock = self._vol_clock.get(vol)
        if vol_clock is None:
            vol_clock = VectorClock()
            self._vol_clock[vol] = vol_clock
            self.counters.words_allocated += 1
        vol_clock.join(clock)
        self.counters.joins_slow_sampling += 1
        clock.increment(tid)
        self.counters.increments += 1

    # -- accounting ----------------------------------------------------------

    def footprint_words(self) -> int:
        total = 0
        for state in self._vars.values():
            total += state.words()
        for clock in self._thread_clock.values():
            total += 1 + len(clock)
        for clock in self._lock_clock.values():
            total += 1 + len(clock)
        for clock in self._vol_clock.values():
            total += 1 + len(clock)
        return total
