"""An online LITERACE (Marino, Musuvathi & Narayanasamy; paper §5.3).

LITERACE lowers overhead by sampling *code*: it always instruments
synchronization (so it never misses happens-before edges) but samples
read/write instrumentation per method×thread, betting on the
*cold-region hypothesis* — races live disproportionately in cold code.

This is the paper's own online reimplementation (§5.3):

* per method×thread *adaptive* rate, starting at 100% and decaying
  inversely with invocation count down to ``min_rate`` (0.1%);
* *bursty* sampling [Hirzel & Chilimbi]: when an invocation is chosen,
  the next ``burst_length`` accesses in that method×thread are analyzed
  (the paper uses 10, then 1,000 for most benchmarks);
* randomized counter reset, so different trials catch different races.

The race analysis underneath is FASTTRACK.  Two properties distinguish
it from PACER, both demonstrated in the benchmarks: races between two
*hot* accesses are found at only ≈min_rate² (Figure 6), and metadata is
never discarded, so space overhead tracks live data rather than the
sampling rate (Figure 10).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .fasttrack import FastTrackDetector

__all__ = ["LiteRaceDetector"]

#: method id used for code outside any ``m_enter``/``m_exit`` bracket
TOP_LEVEL_METHOD = 0


class LiteRaceDetector(FastTrackDetector):
    """FASTTRACK with LITERACE's adaptive bursty code sampling."""

    name = "literace"

    def __init__(
        self,
        burst_length: int = 1000,
        min_rate: float = 0.001,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend)
        self.burst_length = burst_length
        self.min_rate = min_rate
        self._rng = random.Random(seed)
        self._stack: Dict[int, List[int]] = {}  # tid -> method stack
        self._invocations: Dict[Tuple[int, int], int] = {}
        self._burst: Dict[Tuple[int, int], int] = {}
        self.sampled_accesses = 0
        self.skipped_accesses = 0

    # -- code sampling ------------------------------------------------------

    def method_enter(self, tid: int, method: int) -> None:
        self._stack.setdefault(tid, []).append(method)
        key = (method, tid)
        count = self._invocations.get(key, 0) + 1
        self._invocations[key] = count
        # Adaptive rate: inversely proportional to execution frequency,
        # clamped at min_rate (LITERACE's cold-region heuristic).
        rate = max(self.min_rate, 1.0 / count)
        if self._rng.random() < rate:
            # Randomized burst start (the paper adds randomness when
            # resetting the counter to vary races across trials).
            self._burst[key] = max(1, int(self.burst_length * (0.5 + self._rng.random())))

    def method_exit(self, tid: int, method: int) -> None:
        stack = self._stack.get(tid)
        if stack and stack[-1] == method:
            stack.pop()

    def _current_method(self, tid: int) -> int:
        stack = self._stack.get(tid)
        return stack[-1] if stack else TOP_LEVEL_METHOD

    def _instrumenting(self, tid: int) -> bool:
        key = (self._current_method(tid), tid)
        remaining = self._burst.get(key, 0)
        if remaining <= 0:
            # Top-level code (no enclosing method) is always instrumented
            # the first burst_length times, like a cold method.
            if key[0] == TOP_LEVEL_METHOD and key not in self._burst:
                self._burst[key] = self.burst_length
                return self._instrumenting(tid)
            return False
        self._burst[key] = remaining - 1
        return True

    @property
    def effective_rate(self) -> float:
        """Achieved fraction of data accesses that were analyzed."""
        total = self.sampled_accesses + self.skipped_accesses
        return self.sampled_accesses / total if total else 0.0

    # -- accesses: sampled; synchronization stays fully instrumented ----------

    def read(self, tid: int, var: int, site: int = 0) -> None:
        if self._instrumenting(tid):
            self.sampled_accesses += 1
            super().read(tid, var, site)
        else:
            self.skipped_accesses += 1
            self.counters.reads_fast_nonsampling += 1

    def write(self, tid: int, var: int, site: int = 0) -> None:
        if self._instrumenting(tid):
            self.sampled_accesses += 1
            super().write(tid, var, site)
        else:
            self.skipped_accesses += 1
            self.counters.writes_fast_nonsampling += 1
