"""Detector framework: the common interface and race reports.

Every detector consumes the event alphabet of Appendix A through either
the typed methods (:meth:`Detector.read`, :meth:`Detector.acquire`, ...)
or :meth:`Detector.apply`, which dispatches a :class:`~repro.trace.events.Event`.
Detectors report races by appending :class:`Race` records and keep
analyzing (real tools do not stop at the first race; the formal
semantics' "stuck" state corresponds to the first report).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.backend import resolve_backend
from ..core.stats import OpCounters, PerfCounters
from ..trace.batch import DEFAULT_BATCH_SIZE, EventBatch, iter_batches
from ..trace.events import (
    ACQUIRE,
    ALLOC,
    Event,
    FORK,
    ID_TO_KIND,
    JOIN,
    METHOD_ENTER,
    METHOD_EXIT,
    READ,
    RELEASE,
    SBEGIN,
    SEND,
    VOL_READ,
    VOL_WRITE,
    WRITE,
)

__all__ = ["Race", "SiteId", "Detector", "NullDetector", "distinct_races"]

#: Race kinds: first access kind followed by second access kind.
WRITE_WRITE = "ww"
WRITE_READ = "wr"
READ_WRITE = "rw"

#: A program site: synthetic workloads use stable integer ids, while the
#: live frontend (:mod:`repro.live`) records real ``file:line`` strings.
#: Sites are only stored, compared, and rendered — never arithmetic — so
#: both representations flow through every detector and backend.
SiteId = Union[int, str]


@dataclass(frozen=True)
class Race:
    """A reported data race.

    The *first* access is the older one (recorded in metadata); the
    *second* is the access whose analysis detected the race.  ``distinct``
    identity — "each pair of program references" in the paper — is the
    ``(first_site, second_site)`` pair (see :func:`distinct_races`).
    """

    var: int
    kind: str  # one of "ww", "wr", "rw"
    first_tid: int
    first_clock: int
    first_site: SiteId
    second_tid: int
    second_site: SiteId
    index: int = -1  # trace position of the second access, if known
    first_index: int = -1  # trace position of the first access, if known

    @property
    def distinct_key(self) -> Tuple[SiteId, SiteId]:
        """Static identity of the race: the pair of program sites."""
        return (self.first_site, self.second_site)

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"race[{self.kind}] var={self.var} "
            f"t{self.first_tid}@site{self.first_site} vs "
            f"t{self.second_tid}@site{self.second_site}"
        )


def distinct_races(races: Iterable[Race]) -> Set[Tuple[SiteId, SiteId]]:
    """The set of static (site-pair) races in a report list."""
    return {r.distinct_key for r in races}


class Detector:
    """Base class for all dynamic race detectors.

    Subclasses implement the typed event methods.  The base class
    provides race collection, counters, dispatch, and bookkeeping of
    which threads exist (thread 0 is implicitly the main thread).
    """

    #: human-readable name used in tables and benchmark output
    name = "abstract"

    def __init__(self, backend: Optional[str] = None) -> None:
        #: resolved state-backend name ("object" or "packed"); detectors
        #: with epoch-compressible per-variable state (FASTTRACK, PACER)
        #: switch storage layouts on it, the rest carry it as a label
        self.backend_name = resolve_backend(backend)
        self.races: List[Race] = []
        self.counters = OpCounters()
        self.perf = PerfCounters()
        #: optional :class:`repro.obs.RunObserver`; every instrumentation
        #: site guards on ``observer is None`` so the disabled path costs
        #: exactly one branch
        self.observer = None
        self._events_seen = 0
        self._threads: Set[int] = set()
        self._dispatch: Dict[str, Callable[[Event], None]] = {
            READ: self._ev_read,
            WRITE: self._ev_write,
            ACQUIRE: self._ev_acquire,
            RELEASE: self._ev_release,
            FORK: self._ev_fork,
            JOIN: self._ev_join,
            VOL_READ: self._ev_vol_read,
            VOL_WRITE: self._ev_vol_write,
            SBEGIN: self._ev_sbegin,
            SEND: self._ev_send,
            METHOD_ENTER: self._ev_method_enter,
            METHOD_EXIT: self._ev_method_exit,
            ALLOC: self._ev_ignore,
        }
        # the same handlers, indexed by the canonical kind id — the
        # default batched loop dispatches through this list
        self._dispatch_by_id: List[Callable[[Event], None]] = [
            self._dispatch[kind] for kind in ID_TO_KIND
        ]

    # -- public API --------------------------------------------------------

    def apply(self, event: Event) -> None:
        """Dispatch one trace event to the typed handler."""
        self._events_seen += 1
        handler = self._dispatch.get(event.kind)
        if handler is None:
            raise ValueError(f"unknown event kind: {event.kind!r}")
        handler(event)

    def run(self, events: Iterable[Event]) -> List[Race]:
        """Analyze a whole trace; returns the accumulated race list."""
        obs = self.observer
        start = time.perf_counter_ns()
        count = 0
        if obs is None:
            for event in events:
                self.apply(event)
                count += 1
        elif getattr(obs, "recorder", None) is not None:
            return self._run_recorded(events, obs)
        else:
            cadence = obs.sample_every
            for event in events:
                self.apply(event)
                count += 1
                if count % cadence == 0:
                    obs.on_events(self, self._events_seen)
        self.perf.elapsed_ns += time.perf_counter_ns() - start
        self.perf.events += count
        return self.races

    def run_batch(
        self,
        events: Iterable[Event],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> List[Race]:
        """Analyze a whole trace through the batched fast path.

        Behavior-identical to :meth:`run` — same races, counters, and
        metadata — but events flow as columnar :class:`EventBatch` chunks
        through :meth:`apply_batch`, which hot detectors override with an
        inlined loop.  ``events`` may be any event iterable or an already
        encoded :class:`EventBatch`.
        """
        obs = self.observer
        if obs is not None and getattr(obs, "recorder", None) is not None:
            # flight recording needs per-event capture in trace order, so
            # the batched fast path is bypassed — scalar and batched
            # dispatch then produce byte-identical provenance
            return self._run_recorded(
                (e for batch in iter_batches(events, batch_size) for e in batch),
                obs,
            )
        start = time.perf_counter_ns()
        count = 0
        batches = 0
        max_batch = 0
        batch_start = start
        for batch in iter_batches(events, batch_size):
            first_vt = self._events_seen
            self.apply_batch(batch)
            n = len(batch)
            count += n
            batches += 1
            if n > max_batch:
                max_batch = n
            if obs is not None:
                now = time.perf_counter_ns()
                obs.on_batch(self, first_vt, n, now - batch_start)
                batch_start = time.perf_counter_ns()
        perf = self.perf
        perf.elapsed_ns += time.perf_counter_ns() - start
        perf.events += count
        perf.batches += batches
        if max_batch > perf.max_batch:
            perf.max_batch = max_batch
        return self.races

    def _run_recorded(self, events: Iterable[Event], obs) -> List[Race]:
        """Scalar replay with flight recording and report-time capture.

        Every event lands in the observer's
        :class:`~repro.obs.provenance.FlightRecorder` *before* analysis,
        and any race the analysis appends — whether through
        :meth:`report` or directly from the engine kernels'
        ``races_append`` — triggers ``obs.on_race`` while the
        surrounding events are still in the rings.  Used by both
        :meth:`run` and :meth:`run_batch` so provenance is identical
        across dispatch modes.
        """
        rec = obs.recorder
        start = time.perf_counter_ns()
        count = 0
        cadence = obs.sample_every
        races = self.races
        known = len(races)
        record = rec.record
        for event in events:
            record(self._events_seen, event.kind, event.tid, event.target,
                   event.site)
            self.apply(event)
            count += 1
            if len(races) > known:
                for race in races[known:]:
                    obs.on_race(self, race)
                known = len(races)
            if count % cadence == 0:
                obs.on_events(self, self._events_seen)
        self.perf.elapsed_ns += time.perf_counter_ns() - start
        self.perf.events += count
        return races

    def apply_batch(self, batch: EventBatch) -> None:
        """Process one encoded batch.

        The base implementation decodes each record and dispatches it
        exactly like :meth:`apply` (so every detector supports batches);
        FASTTRACK and PACER override it with inlined hot loops.
        """
        dispatch = self._dispatch_by_id
        id_to_kind = ID_TO_KIND
        seen = self._events_seen
        kinds, tids, targets, sites = batch.to_list_columns()
        for kid, tid, target, site in zip(kinds, tids, targets, sites):
            seen += 1
            self._events_seen = seen
            dispatch[kid](Event(id_to_kind[kid], tid, target, site))

    @property
    def distinct_races(self) -> Set[Tuple[SiteId, SiteId]]:
        """Static site-pair identities of all reported races."""
        return distinct_races(self.races)

    @property
    def n_threads(self) -> int:
        """Number of threads observed so far (at least 1)."""
        return max(len(self._threads), 1)

    def footprint_words(self) -> int:
        """Live metadata footprint in words; subclasses refine this."""
        return 0

    @property
    def tracked_variables(self) -> int:
        """Number of variables with live metadata; subclasses refine this."""
        return 0

    def max_clock_entries(self) -> int:
        """Largest live vector clock, in entries; subclasses refine this."""
        return 0

    def obs_sample(self) -> Dict[str, int]:
        """One observability probe of live analysis state.

        Called by :class:`repro.obs.RunObserver` at probe boundaries —
        never per event — so subclasses may do O(live metadata) work
        here.  All values must be deterministic functions of the trace.
        """
        words = self.footprint_words()
        return {
            "footprint_words": words,
            "meta_bytes": words * 4,
            "live_vars": self.tracked_variables,
            "vc_max": self.max_clock_entries(),
            "races": len(self.races),
            "threads": len(self._threads),
        }

    # -- typed events (subclass responsibilities) ---------------------------

    def read(self, tid: int, var: int, site: SiteId = 0) -> None:
        raise NotImplementedError

    def write(self, tid: int, var: int, site: SiteId = 0) -> None:
        raise NotImplementedError

    def acquire(self, tid: int, lock: int) -> None:
        raise NotImplementedError

    def release(self, tid: int, lock: int) -> None:
        raise NotImplementedError

    def fork(self, tid: int, child: int) -> None:
        raise NotImplementedError

    def join(self, tid: int, child: int) -> None:
        raise NotImplementedError

    def vol_read(self, tid: int, vol: int) -> None:
        raise NotImplementedError

    def vol_write(self, tid: int, vol: int) -> None:
        raise NotImplementedError

    def begin_sampling(self) -> None:
        """Enter a global sampling period (analysis no-op for always-on
        detectors; the observer still records the square wave)."""
        obs = self.observer
        if obs is not None:
            obs.on_sampling(True, self._events_seen)

    def end_sampling(self) -> None:
        """Leave a global sampling period (analysis no-op for always-on
        detectors; the observer still records the square wave)."""
        obs = self.observer
        if obs is not None:
            obs.on_sampling(False, self._events_seen)

    def method_enter(self, tid: int, method: int) -> None:
        """Method-entry hook (used by LiteRace; default no-op)."""

    def method_exit(self, tid: int, method: int) -> None:
        """Method-exit hook (used by LiteRace; default no-op)."""

    # -- race reporting helper ----------------------------------------------

    @property
    def now(self) -> int:
        """Index of the event currently being analyzed."""
        return self._events_seen - 1

    def report(
        self,
        var: int,
        kind: str,
        first_tid: int,
        first_clock: int,
        first_site: SiteId,
        second_tid: int,
        second_site: SiteId,
        first_index: int = -1,
    ) -> None:
        """Record a race report; analysis continues afterwards."""
        self.races.append(
            Race(
                var=var,
                kind=kind,
                first_tid=first_tid,
                first_clock=first_clock,
                first_site=first_site,
                second_tid=second_tid,
                second_site=second_site,
                index=self._events_seen - 1,
                first_index=first_index,
            )
        )

    # -- internal trampolines -------------------------------------------------

    def _note_thread(self, tid: int) -> None:
        self._threads.add(tid)

    def _ev_read(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.read(e.tid, e.target, e.site)

    def _ev_write(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.write(e.tid, e.target, e.site)

    def _ev_acquire(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.acquire(e.tid, e.target)

    def _ev_release(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.release(e.tid, e.target)

    def _ev_fork(self, e: Event) -> None:
        self._note_thread(e.tid)
        self._note_thread(e.target)
        self.fork(e.tid, e.target)

    def _ev_join(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.join(e.tid, e.target)

    def _ev_vol_read(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.vol_read(e.tid, e.target)

    def _ev_vol_write(self, e: Event) -> None:
        self._note_thread(e.tid)
        self.vol_write(e.tid, e.target)

    def _ev_sbegin(self, _e: Event) -> None:
        self.begin_sampling()

    def _ev_send(self, _e: Event) -> None:
        self.end_sampling()

    def _ev_method_enter(self, e: Event) -> None:
        self.method_enter(e.tid, e.target)

    def _ev_method_exit(self, e: Event) -> None:
        self.method_exit(e.tid, e.target)

    def _ev_ignore(self, _e: Event) -> None:
        pass


class NullDetector(Detector):
    """A detector that analyzes nothing.

    Stands in for the uninstrumented baseline configuration in the
    overhead and space benchmarks ("Base" in Figures 7-10).
    """

    name = "none"

    def read(self, tid: int, var: int, site: int = 0) -> None:
        pass

    def write(self, tid: int, var: int, site: int = 0) -> None:
        pass

    def acquire(self, tid: int, lock: int) -> None:
        pass

    def release(self, tid: int, lock: int) -> None:
        pass

    def fork(self, tid: int, child: int) -> None:
        pass

    def join(self, tid: int, child: int) -> None:
        pass

    def vol_read(self, tid: int, vol: int) -> None:
        pass

    def vol_write(self, tid: int, vol: int) -> None:
        pass
