"""The Goldilocks detector (Elmas, Qadeer & Tasiran; paper §6.2).

Goldilocks is the sound-and-precise *lockset* detector: instead of
vector clocks it keeps, per tracked access, a growing set of
synchronization elements (threads, locks, volatiles) whose acquisition
proves happens-before with that access.  The transfer rules walk the
happens-before relation exactly:

* ``rel(t, m)``   — every set containing ``t`` gains ``m``;
* ``acq(t, m)``   — every set containing ``m`` gains ``t``;
* ``vol_wr(t,v)`` — every set containing ``t`` gains ``v``;
* ``vol_rd(t,v)`` — every set containing ``v`` gains ``t``;
* ``fork(t, u)``  — every set containing ``t`` gains ``u``;
* ``join(t, u)``  — every set containing ``u`` gains ``t``.

Invariant: thread ``t`` is in an access's set **iff** that access
happens-before ``t``'s next action.  An access by ``t`` therefore races
the recorded access exactly when ``t`` is absent from its set.  With a
write set per variable plus one set per concurrent reader (mirroring
FASTTRACK's write epoch + read map), Goldilocks reports *exactly* the
races FASTTRACK reports — which the property tests check literally.

Implementation: the naive semantics update every lockset at every
synchronization action (O(tracked sets) per sync op).  We implement the
standard *inverted index* optimization — ``element -> locksets that
contain it`` — so each transfer touches only the sets it actually grows.
This is the "eager" Goldilocks; the paper's lazy short-circuit queue is
an additional constant-factor optimization with identical output.

Element namespaces (threads / locks / volatiles) are disjoint by
tagging, so a lock and a thread with the same integer id never collide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .base import Detector, READ_WRITE, WRITE_READ, WRITE_WRITE

__all__ = ["GoldilocksDetector"]

# element tags: (kind, id) keeps thread/lock/volatile namespaces disjoint
THREAD = "t"
LOCK = "m"
VOLATILE = "v"


class _Lockset:
    """One recorded access: its owner info and its growing element set."""

    __slots__ = ("tid", "site", "index", "is_write", "elements")

    def __init__(self, tid: int, site: int, index: int, is_write: bool) -> None:
        self.tid = tid
        self.site = site
        self.index = index
        self.is_write = is_write
        self.elements: Set[Tuple[str, int]] = {(THREAD, tid)}


class _VarLocksets:
    """FASTTRACK-shaped metadata: one write set + per-thread read sets."""

    __slots__ = ("write", "readers")

    def __init__(self) -> None:
        self.write: Optional[_Lockset] = None
        self.readers: Dict[int, _Lockset] = {}


class GoldilocksDetector(Detector):
    """Sound and precise race detection via lockset transfer."""

    name = "goldilocks"

    def __init__(self, backend: Optional[str] = None) -> None:
        super().__init__(backend)
        self._vars: Dict[int, _VarLocksets] = {}
        # inverted index: element -> live locksets containing it
        self._index: Dict[Tuple[str, int], List[_Lockset]] = {}
        self.transfers = 0  # elements added by transfer (work measure)

    # -- index bookkeeping ---------------------------------------------------

    def _register(self, lockset: _Lockset) -> None:
        for element in lockset.elements:
            self._index.setdefault(element, []).append(lockset)

    def _unregister(self, lockset: _Lockset) -> None:
        for element in lockset.elements:
            entries = self._index.get(element)
            if entries is not None:
                try:
                    entries.remove(lockset)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not entries:
                    del self._index[element]

    def _transfer(self, source: Tuple[str, int], gained: Tuple[str, int]) -> None:
        """Every lockset containing ``source`` gains ``gained``."""
        entries = self._index.get(source)
        if not entries:
            return
        gained_list = self._index.setdefault(gained, [])
        for lockset in entries:
            if gained not in lockset.elements:
                lockset.elements.add(gained)
                gained_list.append(lockset)
                self.transfers += 1

    # -- synchronization: pure transfers ------------------------------------------

    def acquire(self, tid: int, lock: int) -> None:
        self._transfer((LOCK, lock), (THREAD, tid))

    def release(self, tid: int, lock: int) -> None:
        self._transfer((THREAD, tid), (LOCK, lock))

    def fork(self, tid: int, child: int) -> None:
        self._transfer((THREAD, tid), (THREAD, child))

    def join(self, tid: int, child: int) -> None:
        self._transfer((THREAD, child), (THREAD, tid))

    def vol_write(self, tid: int, vol: int) -> None:
        self._transfer((THREAD, tid), (VOLATILE, vol))

    def vol_read(self, tid: int, vol: int) -> None:
        self._transfer((VOLATILE, vol), (THREAD, tid))

    # -- accesses ------------------------------------------------------------------

    def _var(self, var: int) -> _VarLocksets:
        state = self._vars.get(var)
        if state is None:
            state = _VarLocksets()
            self._vars[var] = state
        return state

    def read(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.reads_slow_sampling += 1
        state = self._var(var)
        me = (THREAD, tid)
        w = state.write
        if w is not None and me not in w.elements:
            self.report(
                var, WRITE_READ, w.tid, 0, w.site, tid, site, first_index=w.index
            )
        # record/refresh this thread's read lockset; an older read by the
        # same thread is superseded (it happens-before this one).
        old = state.readers.get(tid)
        if old is not None:
            self._unregister(old)
        lockset = _Lockset(tid, site, self.now, is_write=False)
        state.readers[tid] = lockset
        self._register(lockset)
        self.counters.words_allocated += 2

    def write(self, tid: int, var: int, site: int = 0) -> None:
        self.counters.writes_slow_sampling += 1
        state = self._var(var)
        me = (THREAD, tid)
        w = state.write
        if w is not None and me not in w.elements:
            self.report(
                var, WRITE_WRITE, w.tid, 0, w.site, tid, site, first_index=w.index
            )
        for reader in state.readers.values():
            if me not in reader.elements:
                self.report(
                    var,
                    READ_WRITE,
                    reader.tid,
                    0,
                    reader.site,
                    tid,
                    site,
                    first_index=reader.index,
                )
        # the write supersedes everything recorded so far
        if w is not None:
            self._unregister(w)
        for reader in state.readers.values():
            self._unregister(reader)
        state.readers.clear()
        lockset = _Lockset(tid, site, self.now, is_write=True)
        state.write = lockset
        self._register(lockset)
        self.counters.words_allocated += 2

    # -- accounting ---------------------------------------------------------------

    def footprint_words(self) -> int:
        total = 0
        for state in self._vars.values():
            if state.write is not None:
                total += 2 + len(state.write.elements)
            for reader in state.readers.values():
                total += 2 + len(reader.elements)
        return total
