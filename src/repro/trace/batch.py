"""Columnar (struct-of-arrays) event batches for the analysis fast path.

The scalar pipeline hands every event to :meth:`Detector.apply` as an
:class:`~repro.trace.events.Event`, paying per event for a dispatch-table
lookup, a trampoline call, and several attribute accesses.  At paper
scale (10⁹ events) that per-event overhead dominates analysis time.

An :class:`EventBatch` stores a run of events as four parallel integer
arrays — kind ids (see :data:`~repro.trace.events.KIND_TO_ID`), thread
ids, targets, and sites — so a detector's batched loop can walk plain
``int`` columns with no per-event object construction and no virtual
dispatch.  :func:`iter_batches` chops any event iterable into batches;
:meth:`Detector.run_batch` drives them.

Batches are an *encoding*, not a semantic change: iterating a batch
yields exactly the :class:`Event` records it was built from, and the
differential test suite (``tests/test_batch_differential.py``) holds the
batched and scalar pipelines to identical race reports, counters, and
metadata footprints.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from .events import Event, ID_TO_KIND, KIND_TO_ID

__all__ = [
    "EventBatch",
    "encode_batch",
    "iter_batches",
    "DEFAULT_BATCH_SIZE",
    "RUN_MASK_TABLE",
    "ACCESS01_TABLE",
]

#: Default number of events per batch.  Large enough to amortize the
#: per-batch setup (local rebinding of hot attributes), small enough to
#: keep the working set cache-friendly and progress observable.
DEFAULT_BATCH_SIZE = 4096

#: kind-id byte -> run-mask byte, for ``bytes.translate`` run scans over
#: a batch's kind column.  Reads/writes keep their own ids (0/1) so one
#: translated mask drives both run-splitting and bulk read/write counting
#: (``count(0/1, i, j)``).  ``m_enter``/``m_exit``/``alloc`` (ids 10-12)
#: are analysis no-ops for the run-bulked loops, so they ride along
#: inside runs as byte 3; only synchronization actions and period
#: boundaries (byte 2) break a run (``find(2, i)``).
RUN_MASK_TABLE = bytes(b if b <= 1 else (3 if b >= 10 else 2) for b in range(256))

#: kind-id byte -> 1 for accesses, 0 otherwise; selector for bulk
#: thread-set updates over runs that contain riding no-op events.
ACCESS01_TABLE = bytes(1 if b <= 1 else 0 for b in range(256))


class EventBatch:
    """A fixed run of events in columnar form.

    ``kinds`` holds small integer kind ids; ``tids``, ``targets`` and
    ``sites`` the corresponding operand columns.  All four lists have the
    same length.  The batch iterates as :class:`Event` records, so any
    scalar consumer accepts a batch wherever it accepts events.
    """

    __slots__ = ("kinds", "tids", "targets", "sites", "_npcols")

    def __init__(
        self,
        kinds: Sequence[int],
        tids: Sequence[int],
        targets: Sequence[int],
        sites: Sequence[int],
    ) -> None:
        if not (len(kinds) == len(tids) == len(targets) == len(sites)):
            raise ValueError("batch columns must have equal length")
        self.kinds: List[int] = list(kinds)
        self.tids: List[int] = list(tids)
        self.targets: List[int] = list(targets)
        self.sites: List[int] = list(sites)
        self._npcols = None

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventBatch":
        """Encode events into one batch (raises on unknown kinds).

        Events are tuples, so ``zip(*events)`` transposes rows into the
        four columns at C speed and ``map`` translates the kind column
        through the id table without a per-event Python frame.
        """
        rows = events if isinstance(events, (list, tuple)) else list(events)
        if not rows:
            return cls([], [], [], [])
        kind_names, tids, targets, sites = zip(*rows)
        try:
            kinds = list(map(KIND_TO_ID.__getitem__, kind_names))
        except KeyError as exc:
            raise ValueError(f"unknown event kind: {exc.args[0]!r}") from None
        batch = cls.__new__(cls)
        batch.kinds = kinds
        batch.tids = list(tids)
        batch.targets = list(targets)
        batch.sites = list(sites)
        batch._npcols = None
        return batch

    @classmethod
    def from_columns(cls, kinds, tids, targets, sites) -> "EventBatch":
        """Wrap already-columnar data without copying.

        Unlike ``__init__``, the columns are stored as given — NumPy
        arrays from the zero-copy binio reader flow straight through to
        the vectorized kernels, while :meth:`to_list_columns` normalizes
        them on demand for plain-int consumers.
        """
        if not (len(kinds) == len(tids) == len(targets) == len(sites)):
            raise ValueError("batch columns must have equal length")
        batch = cls.__new__(cls)
        batch.kinds = kinds
        batch.tids = tids
        batch.targets = targets
        batch.sites = sites
        batch._npcols = None
        return batch

    def to_list_columns(self):
        """``(kinds, tids, targets, sites)`` as plain Python lists.

        The identity when the batch already holds lists; NumPy-backed
        columns are converted once (``tolist`` yields plain ints, never
        array scalars) and cached in place, so the object and packed
        backends see exactly the integers they would have seen from
        :meth:`from_events`.
        """
        if type(self.kinds) is not list:
            self.kinds = self.kinds.tolist()
        if type(self.tids) is not list:
            self.tids = self.tids.tolist()
        if type(self.targets) is not list:
            self.targets = self.targets.tolist()
        if type(self.sites) is not list:
            self.sites = list(self.sites) if not hasattr(
                self.sites, "tolist") else self.sites.tolist()
        return self.kinds, self.tids, self.targets, self.sites

    def to_numpy_columns(self):
        """Columns as arrays for the vectorized kernels (cached).

        Returns ``(kinds, tids, targets, sites, site_list)`` where the
        first four are ``uint8``/``int64`` NumPy arrays — except
        ``sites``, which is ``None`` when the site column holds
        non-integer :data:`~repro.detectors.base.SiteId` values (the
        live frontend's ``file:line`` strings); ``site_list`` is the
        original Python sequence in that case (and ``None`` otherwise),
        so kernels always have exactly one site source.
        """
        cols = self._npcols
        if cols is None:
            import numpy as np

            kinds = np.asarray(self.kinds, dtype=np.uint8)
            tids = np.asarray(self.tids, dtype=np.int64)
            targets = np.asarray(self.targets, dtype=np.int64)
            try:
                sites = np.asarray(self.sites, dtype=np.int64)
                site_list = None
            except (TypeError, ValueError, OverflowError):
                sites = None
                site_list = (self.sites if type(self.sites) is list
                             else list(self.sites))
            cols = (kinds, tids, targets, sites, site_list)
            self._npcols = cols
        return cols

    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self) -> Iterator[Event]:
        id_to_kind = ID_TO_KIND
        kinds, tids, targets, sites = self.to_list_columns()
        for kid, tid, target, site in zip(kinds, tids, targets, sites):
            yield Event(id_to_kind[kid], tid, target, site)

    def to_events(self) -> List[Event]:
        """Decode back into a list of :class:`Event` records."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"EventBatch({len(self)} events)"


def encode_batch(events: Iterable[Event]) -> EventBatch:
    """Encode an entire event iterable as a single batch."""
    return EventBatch.from_events(events)


def iter_batches(
    events: Iterable[Event], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[EventBatch]:
    """Chop an event iterable into :class:`EventBatch` chunks.

    A pre-encoded :class:`EventBatch` passes through unchanged (one
    batch), so callers can encode once and replay many times.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if isinstance(events, EventBatch):
        yield events
        return
    rows = events if isinstance(events, (list, tuple)) else list(events)
    for start in range(0, len(rows), batch_size):
        yield EventBatch.from_events(rows[start:start + batch_size])
