"""Seeded random trace generators.

Used by the property-based tests and microbenchmarks.  All generators
produce *feasible* traces (they maintain lock ownership, fork/join
discipline, and sampling-period alternation by construction), and are
deterministic for a given seed.

Two families:

* :func:`random_trace` — unconstrained mix of synchronized and
  unsynchronized accesses; usually racy.
* :func:`race_free_trace` — every shared variable is protected by a
  dedicated lock (a consistent locking discipline), so the result is
  race-free by construction; used for completeness properties.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .events import (
    Event,
    acq,
    fork,
    join,
    rd,
    rel,
    sbegin,
    send,
    vol_rd,
    vol_wr,
    wr,
)
from .trace import Trace

__all__ = ["GeneratorConfig", "random_trace", "race_free_trace"]


@dataclass
class GeneratorConfig:
    """Tunables for :func:`random_trace`.

    ``protected_fraction`` is the probability that a variable is accessed
    only under its dedicated lock; the remaining accesses are free-for-all
    and may race.  ``sampling_period_prob`` inserts global
    ``sbegin``/``send`` pairs for exercising PACER directly on traces.
    """

    n_threads: int = 4
    n_vars: int = 8
    n_locks: int = 3
    n_vols: int = 2
    length: int = 200
    protected_fraction: float = 0.5
    write_fraction: float = 0.4
    sync_fraction: float = 0.15
    sampling_period_prob: float = 0.0
    seed: int = 0


def random_trace(config: Optional[GeneratorConfig] = None, **overrides) -> Trace:
    """Generate a feasible, seeded random trace.

    The root thread (tid 0) forks all workers up front and joins them at
    the end, so every pair of worker accesses is potentially concurrent.
    """
    cfg = config or GeneratorConfig()
    for key, value in overrides.items():
        if not hasattr(cfg, key):
            raise TypeError(f"unknown generator option {key!r}")
        setattr(cfg, key, value)
    rng = random.Random(cfg.seed)
    events: List[Event] = []
    n = max(1, cfg.n_threads)

    # Each variable is either lock-protected or free.
    protected: Dict[int, int] = {}
    for var in range(cfg.n_vars):
        if cfg.n_locks and rng.random() < cfg.protected_fraction:
            protected[var] = rng.randrange(cfg.n_locks)

    workers = list(range(1, n))
    for child in workers:
        events.append(fork(0, child))

    live = [0] + workers
    held: Dict[int, List[int]] = {t: [] for t in live}  # lock stacks
    sampling = False
    site_of = lambda tid, var, is_write: (  # noqa: E731 - tiny site encoder
        (var * 2 + (1 if is_write else 0)) * n + tid
    )

    for _ in range(cfg.length):
        if cfg.sampling_period_prob and rng.random() < cfg.sampling_period_prob:
            events.append(send() if sampling else sbegin())
            sampling = not sampling
        tid = rng.choice(live)
        roll = rng.random()
        if roll < cfg.sync_fraction and cfg.n_vols:
            vol = rng.randrange(cfg.n_vols)
            if rng.random() < 0.5:
                events.append(vol_wr(tid, vol))
            else:
                events.append(vol_rd(tid, vol))
            continue
        var = rng.randrange(max(1, cfg.n_vars))
        is_write = rng.random() < cfg.write_fraction
        lock = protected.get(var)
        site = site_of(tid, var, is_write)
        if lock is not None:
            events.append(acq(tid, lock + 1000))
            held[tid].append(lock + 1000)
        events.append(
            wr(tid, var, site) if is_write else rd(tid, var, site)
        )
        if lock is not None:
            held[tid].pop()
            events.append(rel(tid, lock + 1000))

    if sampling:
        events.append(send())
    for child in workers:
        events.append(join(0, child))
    return Trace(events).validate()


def race_free_trace(
    n_threads: int = 4,
    n_vars: int = 8,
    length: int = 200,
    seed: int = 0,
    sampling_period_prob: float = 0.0,
) -> Trace:
    """Generate a race-free trace: every variable has a dedicated lock.

    Each access (read or write) to variable v happens strictly inside
    ``acq(lock_v) ... rel(lock_v)``, which totally orders conflicting
    accesses — a consistent locking discipline.
    """
    rng = random.Random(seed)
    events: List[Event] = []
    workers = list(range(1, max(1, n_threads)))
    for child in workers:
        events.append(fork(0, child))
    live = [0] + workers
    sampling = False
    for _ in range(length):
        if sampling_period_prob and rng.random() < sampling_period_prob:
            events.append(send() if sampling else sbegin())
            sampling = not sampling
        tid = rng.choice(live)
        var = rng.randrange(max(1, n_vars))
        lock = 1000 + var  # dedicated lock per variable
        is_write = rng.random() < 0.4
        site = (var * 2 + (1 if is_write else 0)) * n_threads + tid
        events.append(acq(tid, lock))
        events.append(wr(tid, var, site) if is_write else rd(tid, var, site))
        events.append(rel(tid, lock))
    if sampling:
        events.append(send())
    for child in workers:
        events.append(join(0, child))
    return Trace(events).validate()
