"""Compact binary trace serialization.

Paper-scale traces run to 10⁹ events; the text format
(:mod:`repro.trace.textio`) is convenient but ~20 bytes/event.  This
format packs each event into a varint-coded record (~3-6 bytes typical),
with a small header and — since version 2 — an integrity trailer:

    magic  b"PACR"    4 bytes
    version           1 byte
    event count       varint
    events            kind-id varint, tid+1 varint, target varint, site varint
    crc32 trailer     4 bytes little-endian (version >= 2 only)

The trailer is CRC32 over every preceding byte, so a flipped bit or a
silently shortened file is caught even when the damage still parses as
well-formed varints.  Version 1 files (no trailer) remain readable;
writers emit version 2 by default.

Kind ids are the canonical numbering in
:data:`repro.trace.events.KIND_TO_ID`.  ``sbegin``/``send`` encode only
their kind id.  The format round-trips exactly; truncated or corrupt
input raises :class:`~repro.trace.trace.TraceFormatError` with a message
naming the precise failure (bad magic, unsupported version, truncated
varint at a byte offset, trailing bytes, or a CRC32 mismatch) rather
than yielding garbage events.  ``repro verify-trace`` exposes the same
checks as a CLI command via :func:`describe_binary`.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .events import Event, ID_TO_KIND, KIND_TO_ID, SBEGIN, SEND
from .trace import Trace, TraceFormatError

__all__ = [
    "dump_trace_binary",
    "load_trace_binary",
    "dumps_binary",
    "loads_binary",
    "loads_binary_columns",
    "load_trace_columns",
    "describe_binary",
]

MAGIC = b"PACR"
#: newest format version, what ``dumps_binary`` emits by default
VERSION = 2
#: the legacy checksum-free format; still readable, never written unless asked
VERSION_1 = 1
SUPPORTED_VERSIONS = (VERSION_1, VERSION)

_CRC_BYTES = 4

_N_KINDS = len(ID_TO_KIND)
_SBEGIN_ID = KIND_TO_ID[SBEGIN]
_SEND_ID = KIND_TO_ID[SEND]

# historical aliases from when the numbering lived in this module
_KIND_TO_ID = KIND_TO_ID
_ID_TO_KIND = ID_TO_KIND


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int, end: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise TraceFormatError(f"truncated varint at byte {pos}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceFormatError(f"varint longer than 64 bits at byte {pos}")


def dumps_binary(events: Iterable[Event], version: int = VERSION) -> bytes:
    """Serialize events to the binary format (version 2 by default).

    ``version=1`` writes the legacy trailer-free layout — kept for
    compatibility tests and for producing fixtures older readers accept.
    """
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write version {version} (supported: {SUPPORTED_VERSIONS})")
    events = list(events)
    out = bytearray()
    out += MAGIC
    out.append(version)
    _write_varint(out, len(events))
    for e in events:
        kind_id = KIND_TO_ID.get(e.kind)
        if kind_id is None:
            raise ValueError(f"unknown event kind {e.kind!r}")
        _write_varint(out, kind_id)
        if e.kind in (SBEGIN, SEND):
            continue
        if e.tid < -1:
            raise ValueError(f"cannot encode tid {e.tid}")
        if e.target < 0:
            raise ValueError(f"cannot encode negative target {e.target}")
        # tids are >= 0 for thread actions; alloc's site may carry a
        # signed live-delta, zig-zag encode it
        _write_varint(out, e.tid + 1)
        _write_varint(out, e.target)
        _write_varint(out, (e.site << 1) ^ (e.site >> 63))  # zig-zag
    if version >= 2:
        out += zlib.crc32(bytes(out)).to_bytes(_CRC_BYTES, "little")
    return bytes(out)


def _parse_header(data: bytes) -> Tuple[int, int, int]:
    """Validate magic/version/trailer bounds; return (version, pos, end).

    ``pos`` is the offset of the event-count varint, ``end`` the offset
    one past the last event byte (the CRC trailer, if any, lies beyond).
    """
    if data[:4] != MAGIC:
        raise TraceFormatError("not a PACR binary trace (bad magic)")
    if len(data) < 5:
        raise TraceFormatError("truncated header")
    version = data[4]
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(f"unsupported version {version}")
    end = len(data)
    if version >= 2:
        if len(data) < 5 + 1 + _CRC_BYTES:
            raise TraceFormatError(
                f"truncated trailer: v{version} trace needs a {_CRC_BYTES}-byte "
                f"CRC32 after the events, got {len(data)} bytes total"
            )
        end -= _CRC_BYTES
    return version, 5, end


def _check_crc(data: bytes) -> int:
    """Verify a v2+ trailer; return the stored CRC32."""
    stored = int.from_bytes(data[-_CRC_BYTES:], "little")
    computed = zlib.crc32(data[:-_CRC_BYTES])
    if stored != computed:
        raise TraceFormatError(
            f"CRC32 mismatch: stored 0x{stored:08x}, computed 0x{computed:08x} "
            f"(trace is corrupt or truncated)"
        )
    return stored


def loads_binary(data: bytes, validate: bool = True) -> Trace:
    """Parse the binary format into a :class:`Trace`.

    Raises :class:`TraceFormatError` on any structural problem and (when
    ``validate`` is on) :class:`~repro.trace.trace.TraceError` if the
    decoded events are not a feasible trace.
    """
    version, pos, end = _parse_header(data)
    try:
        count, pos = _read_varint(data, pos, end)
    except TraceFormatError as exc:
        raise TraceFormatError(f"bad event count: {exc}") from None
    if count > end - pos:
        # every event record is at least one byte, so a count beyond the
        # remaining payload is corrupt — reject before looping over it
        raise TraceFormatError(
            f"event count {count} exceeds remaining payload ({end - pos} bytes)"
        )
    events: List[Event] = []
    for _ in range(count):
        kind_id, pos = _read_varint(data, pos, end)
        if kind_id >= _N_KINDS:
            raise TraceFormatError(f"unknown kind id {kind_id} at byte {pos}")
        if kind_id == _SBEGIN_ID or kind_id == _SEND_ID:
            events.append(Event(ID_TO_KIND[kind_id], -1, 0, 0))
            continue
        tid_plus, pos = _read_varint(data, pos, end)
        target, pos = _read_varint(data, pos, end)
        zigzag, pos = _read_varint(data, pos, end)
        site = (zigzag >> 1) ^ -(zigzag & 1)
        events.append(Event(ID_TO_KIND[kind_id], tid_plus - 1, target, site))
    if pos != end:
        raise TraceFormatError(f"{end - pos} trailing bytes after events")
    if version >= 2:
        _check_crc(data)
    trace = Trace(events)
    if validate:
        trace.validate()
    return trace


# -- columnar (zero-copy) reader ---------------------------------------------
#
# ``loads_binary_columns`` decodes the same wire format straight into an
# :class:`~repro.trace.batch.EventBatch` whose columns are NumPy arrays,
# skipping per-event ``Event`` construction entirely — the feed for the
# vectorized ``packed-np`` kernels.  The decode is vectorized (one pass
# of array ops over the whole payload, no per-varint Python), and
# ``load_trace_columns`` maps the file with ``mmap`` so the raw bytes
# are never copied into the interpreter heap.
#
# Correctness contract: on *any* anomaly — bad magic, truncated varint,
# CRC mismatch, structural disagreement, oversized values — the column
# reader delegates to :func:`loads_binary`, so corrupt input produces
# byte-identical :class:`TraceFormatError` messages in the scalar
# reader's checking order.  The fast path returns only when a fully
# clean vectorized decode agrees with the format's sequential grammar.

def _columns_fallback(data, validate: bool):
    """Decode via the scalar reader (exact errors), then columnize."""
    from .batch import encode_batch

    trace = loads_binary(bytes(data), validate=validate)
    return encode_batch(trace.events)


def loads_binary_columns(data, validate: bool = False):
    """Parse a binary trace into a columnar :class:`EventBatch`.

    Accepts any bytes-like object (``bytes``, ``memoryview``, ``mmap``).
    Structural integrity — magic, version, varint well-formedness, event
    count, CRC32 trailer — is always enforced, with the same exceptions
    as :func:`loads_binary`.  Trace *feasibility* validation needs
    materialized events, so it is off by default here; pass
    ``validate=True`` to pay for it (the scalar path is used then).

    Requires numpy for the vectorized path; without it the scalar reader
    is used transparently.
    """
    from .batch import EventBatch

    if validate:
        return _columns_fallback(data, validate)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via gating tests
        return _columns_fallback(data, validate)

    view = memoryview(data)
    try:
        version, pos, end = _parse_header(view)
        count, pos = _read_varint(view, pos, end)
    except TraceFormatError:
        return _columns_fallback(data, validate)
    if version >= 2 and zlib.crc32(view[:-_CRC_BYTES]) != int.from_bytes(
        view[-_CRC_BYTES:], "little"
    ):
        # scalar reader decides whether a structural error outranks the
        # CRC mismatch, keeping the error order identical
        return _columns_fallback(data, validate)
    if count == 0:
        if pos != end:
            return _columns_fallback(data, validate)
        return EventBatch([], [], [], [])
    if pos >= end or count > end - pos:
        return _columns_fallback(data, validate)

    b = np.frombuffer(view, dtype=np.uint8, count=end - pos, offset=pos)
    term = (b & 0x80) == 0
    if not term[-1]:  # payload ends mid-varint
        return _columns_fallback(data, validate)
    nb = len(b)
    starts = np.empty(nb, dtype=bool)
    starts[0] = True
    starts[1:] = term[:-1]
    gid = np.cumsum(starts) - 1  # varint index owning each byte
    spos = np.flatnonzero(starts)
    k = np.arange(nb, dtype=np.int64) - spos[gid]
    if int(k.max()) > 4:
        # values >= 2^35 (or varints longer than the 64-bit limit):
        # rare enough that the scalar reader both decodes and errors them
        return _columns_fallback(data, validate)
    vals = (b & 0x7F).astype(np.int64) << (7 * k)
    cs = np.cumsum(vals)
    tpos = np.flatnonzero(term)
    V = cs[tpos] - cs[spos] + vals[spos]  # all varint values, in order
    M = len(V)

    # Recover record boundaries.  The grammar is sequential — a record
    # is 1 varint for sbegin/send, 4 otherwise — but only the *values*
    # 8/9 at record starts matter, so walk just the candidate positions:
    # between consecutive one-varint markers every record is 4 long.
    markers: List[int] = []
    cur = 0
    cand = np.flatnonzero((V == _SBEGIN_ID) | (V == _SEND_ID))
    for c in cand.tolist():
        if c >= cur and (c - cur) % 4 == 0:
            markers.append(c)
            cur = c + 1
    if (M - cur) % 4:
        return _columns_fallback(data, validate)
    n_records = len(markers) + (M - len(markers)) // 4
    if n_records != count:
        return _columns_fallback(data, validate)

    if markers:
        parts = []
        prev = 0
        for m in markers:
            parts.append(np.arange(prev, m, 4, dtype=np.int64))
            parts.append(np.array([m], dtype=np.int64))
            prev = m + 1  # a marker record is exactly one varint
        parts.append(np.arange(prev, M, 4, dtype=np.int64))
        rs = np.concatenate(parts)
    else:
        rs = np.arange(0, M, 4, dtype=np.int64)

    kinds = V[rs]
    if int(kinds.max()) >= _N_KINDS:
        return _columns_fallback(data, validate)
    ismk = (kinds == _SBEGIN_ID) | (kinds == _SEND_ID)
    lim = M - 1
    tids = np.where(ismk, -1, V[np.minimum(rs + 1, lim)] - 1)
    targets = np.where(ismk, 0, V[np.minimum(rs + 2, lim)])
    z = V[np.minimum(rs + 3, lim)]
    sites = np.where(ismk, 0, (z >> 1) ^ -(z & 1))
    return EventBatch.from_columns(
        kinds.astype(np.uint8), tids, targets, sites
    )


def load_trace_columns(path: Union[str, Path], validate: bool = False):
    """Read a binary trace file into a columnar :class:`EventBatch`.

    The file is ``mmap``-ed read-only and decoded in place — the raw
    bytes are never copied into the Python heap; only the four decoded
    integer columns are materialized.  Error behavior and the
    ``validate`` switch match :func:`loads_binary_columns`.
    """
    import mmap

    with open(Path(path), "rb") as fh:
        size = fh.seek(0, 2)
        if size == 0:
            # mmap rejects empty files; the scalar reader owns the error
            return _columns_fallback(b"", validate)
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            try:
                return loads_binary_columns(mm, validate=validate)
            except TraceFormatError:
                # the traceback pins buffer views into the map; copy out
                # and re-raise from plain bytes so the map can close
                data = bytes(mm)
        finally:
            try:
                mm.close()
            except BufferError:  # pragma: no cover - freed by the GC then
                pass
    return _columns_fallback(data, validate)


def describe_binary(data: bytes, validate: bool = False) -> Dict[str, object]:
    """Fully check a binary trace and report what was found.

    Runs every structural check :func:`loads_binary` runs (plus trace
    feasibility when ``validate`` is set) and returns a summary dict —
    the engine behind ``repro verify-trace``.  Raises
    :class:`TraceFormatError` on the first integrity problem.
    """
    version, _, _ = _parse_header(data)
    trace = loads_binary(data, validate=validate)
    crc: Optional[str] = None
    if version >= 2:
        crc = f"0x{int.from_bytes(data[-_CRC_BYTES:], 'little'):08x}"
    return {
        "format": "binary",
        "version": version,
        "events": len(trace),
        "bytes": len(data),
        "crc32": crc,
        "checksummed": version >= 2,
    }


def dump_trace_binary(
    events: Iterable[Event], path: Union[str, Path], version: int = VERSION
) -> None:
    """Write events to ``path`` in the binary format."""
    Path(path).write_bytes(dumps_binary(events, version=version))


def load_trace_binary(path: Union[str, Path], validate: bool = True) -> Trace:
    """Read a binary trace written by :func:`dump_trace_binary`."""
    return loads_binary(Path(path).read_bytes(), validate=validate)
