"""Compact binary trace serialization.

Paper-scale traces run to 10⁹ events; the text format
(:mod:`repro.trace.textio`) is convenient but ~20 bytes/event.  This
format packs each event into a varint-coded record (~3-6 bytes typical),
with a small header for integrity:

    magic  b"PACR"    4 bytes
    version           1 byte
    event count       varint
    events            kind-id varint, tid+1 varint, target varint, site varint

``sbegin``/``send`` encode only their kind id.  The format round-trips
exactly and rejects corrupt or truncated input with clear errors.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from .events import Event, SBEGIN, SEND
from .trace import Trace

__all__ = ["dump_trace_binary", "load_trace_binary", "dumps_binary", "loads_binary"]

MAGIC = b"PACR"
VERSION = 1

#: stable kind numbering for the wire format
_KIND_TO_ID = {
    "rd": 0,
    "wr": 1,
    "acq": 2,
    "rel": 3,
    "fork": 4,
    "join": 5,
    "vol_rd": 6,
    "vol_wr": 7,
    "sbegin": 8,
    "send": 9,
    "m_enter": 10,
    "m_exit": 11,
    "alloc": 12,
}
_ID_TO_KIND = {v: k for k, v in _KIND_TO_ID.items()}


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def dumps_binary(events: Iterable[Event]) -> bytes:
    """Serialize events to the binary format."""
    events = list(events)
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    _write_varint(out, len(events))
    for e in events:
        kind_id = _KIND_TO_ID.get(e.kind)
        if kind_id is None:
            raise ValueError(f"unknown event kind {e.kind!r}")
        _write_varint(out, kind_id)
        if e.kind in (SBEGIN, SEND):
            continue
        # tids are >= 0 for thread actions; alloc's site may carry a
        # signed live-delta, zig-zag encode it
        _write_varint(out, e.tid + 1)
        _write_varint(out, e.target)
        _write_varint(out, (e.site << 1) ^ (e.site >> 63))  # zig-zag
    return bytes(out)


def loads_binary(data: bytes, validate: bool = True) -> Trace:
    """Parse the binary format into a :class:`Trace`."""
    if data[:4] != MAGIC:
        raise ValueError("not a PACR binary trace (bad magic)")
    if len(data) < 5:
        raise ValueError("truncated header")
    if data[4] != VERSION:
        raise ValueError(f"unsupported version {data[4]}")
    count, pos = _read_varint(data, 5)
    events: List[Event] = []
    for _ in range(count):
        kind_id, pos = _read_varint(data, pos)
        kind = _ID_TO_KIND.get(kind_id)
        if kind is None:
            raise ValueError(f"unknown kind id {kind_id}")
        if kind in (SBEGIN, SEND):
            events.append(Event(kind, -1, 0, 0))
            continue
        tid_plus, pos = _read_varint(data, pos)
        target, pos = _read_varint(data, pos)
        zigzag, pos = _read_varint(data, pos)
        site = (zigzag >> 1) ^ -(zigzag & 1)
        events.append(Event(kind, tid_plus - 1, target, site))
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes after events")
    trace = Trace(events)
    if validate:
        trace.validate()
    return trace


def dump_trace_binary(events: Iterable[Event], path: Union[str, Path]) -> None:
    """Write events to ``path`` in the binary format."""
    Path(path).write_bytes(dumps_binary(events))


def load_trace_binary(path: Union[str, Path], validate: bool = True) -> Trace:
    """Read a binary trace written by :func:`dump_trace_binary`."""
    return loads_binary(Path(path).read_bytes(), validate=validate)
