"""Compact binary trace serialization.

Paper-scale traces run to 10⁹ events; the text format
(:mod:`repro.trace.textio`) is convenient but ~20 bytes/event.  This
format packs each event into a varint-coded record (~3-6 bytes typical),
with a small header for integrity:

    magic  b"PACR"    4 bytes
    version           1 byte
    event count       varint
    events            kind-id varint, tid+1 varint, target varint, site varint

Kind ids are the canonical numbering in
:data:`repro.trace.events.KIND_TO_ID`.  ``sbegin``/``send`` encode only
their kind id.  The format round-trips exactly; truncated or corrupt
input raises :class:`~repro.trace.trace.TraceFormatError` (with the byte
offset of the problem) rather than yielding garbage events.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple, Union

from .events import Event, ID_TO_KIND, KIND_TO_ID, SBEGIN, SEND
from .trace import Trace, TraceFormatError

__all__ = ["dump_trace_binary", "load_trace_binary", "dumps_binary", "loads_binary"]

MAGIC = b"PACR"
VERSION = 1

_N_KINDS = len(ID_TO_KIND)
_SBEGIN_ID = KIND_TO_ID[SBEGIN]
_SEND_ID = KIND_TO_ID[SEND]

# historical aliases from when the numbering lived in this module
_KIND_TO_ID = KIND_TO_ID
_ID_TO_KIND = ID_TO_KIND


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceFormatError(f"truncated varint at byte {pos}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceFormatError(f"varint longer than 64 bits at byte {pos}")


def dumps_binary(events: Iterable[Event]) -> bytes:
    """Serialize events to the binary format."""
    events = list(events)
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    _write_varint(out, len(events))
    for e in events:
        kind_id = KIND_TO_ID.get(e.kind)
        if kind_id is None:
            raise ValueError(f"unknown event kind {e.kind!r}")
        _write_varint(out, kind_id)
        if e.kind in (SBEGIN, SEND):
            continue
        if e.tid < -1:
            raise ValueError(f"cannot encode tid {e.tid}")
        if e.target < 0:
            raise ValueError(f"cannot encode negative target {e.target}")
        # tids are >= 0 for thread actions; alloc's site may carry a
        # signed live-delta, zig-zag encode it
        _write_varint(out, e.tid + 1)
        _write_varint(out, e.target)
        _write_varint(out, (e.site << 1) ^ (e.site >> 63))  # zig-zag
    return bytes(out)


def loads_binary(data: bytes, validate: bool = True) -> Trace:
    """Parse the binary format into a :class:`Trace`.

    Raises :class:`TraceFormatError` on any structural problem and (when
    ``validate`` is on) :class:`~repro.trace.trace.TraceError` if the
    decoded events are not a feasible trace.
    """
    if data[:4] != MAGIC:
        raise TraceFormatError("not a PACR binary trace (bad magic)")
    if len(data) < 5:
        raise TraceFormatError("truncated header")
    if data[4] != VERSION:
        raise TraceFormatError(f"unsupported version {data[4]}")
    count, pos = _read_varint(data, 5)
    if count > len(data) - pos:
        # every event record is at least one byte, so a count beyond the
        # remaining payload is corrupt — reject before looping over it
        raise TraceFormatError(
            f"event count {count} exceeds remaining payload ({len(data) - pos} bytes)"
        )
    events: List[Event] = []
    for _ in range(count):
        kind_id, pos = _read_varint(data, pos)
        if kind_id >= _N_KINDS:
            raise TraceFormatError(f"unknown kind id {kind_id} at byte {pos}")
        if kind_id == _SBEGIN_ID or kind_id == _SEND_ID:
            events.append(Event(ID_TO_KIND[kind_id], -1, 0, 0))
            continue
        tid_plus, pos = _read_varint(data, pos)
        target, pos = _read_varint(data, pos)
        zigzag, pos = _read_varint(data, pos)
        site = (zigzag >> 1) ^ -(zigzag & 1)
        events.append(Event(ID_TO_KIND[kind_id], tid_plus - 1, target, site))
    if pos != len(data):
        raise TraceFormatError(f"{len(data) - pos} trailing bytes after events")
    trace = Trace(events)
    if validate:
        trace.validate()
    return trace


def dump_trace_binary(events: Iterable[Event], path: Union[str, Path]) -> None:
    """Write events to ``path`` in the binary format."""
    Path(path).write_bytes(dumps_binary(events))


def load_trace_binary(path: Union[str, Path], validate: bool = True) -> Trace:
    """Read a binary trace written by :func:`dump_trace_binary`."""
    return loads_binary(Path(path).read_bytes(), validate=validate)
