"""Exact happens-before oracle for traces.

This module is the ground truth against which every detector is tested.
It performs an offline GENERIC vector-clock pass to attach a clock
snapshot to every data access, then enumerates:

* **all racing pairs** — conflicting, concurrent accesses;
* **reportable races** — pairs (a, b) where a is the *last* access racing
  with b (Definition 5's "shortest" races are exactly these: the race
  PACER guarantees to report with probability r when a is sampled);
* race-freedom, for completeness properties.

The oracle is O(accesses² per variable) and meant for tests and
experiment ground truth, not production analysis — the detectors are the
production analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.clocks import VectorClock
from .events import (
    ACQUIRE,
    Event,
    FORK,
    JOIN,
    READ,
    RELEASE,
    VOL_READ,
    VOL_WRITE,
    WRITE,
)

__all__ = ["AccessInfo", "RacePair", "HBOracle"]


@dataclass(frozen=True)
class AccessInfo:
    """One data access with its happens-before snapshot."""

    index: int  # position in the trace
    tid: int
    kind: str  # rd or wr
    var: int
    site: int
    clock_value: int  # C_t[t] at access time
    clock: VectorClock  # full snapshot of C_t at access time

    def happens_before(self, other: "AccessInfo") -> bool:
        """True iff this access happens before ``other`` (HB order)."""
        if self.index == other.index:
            return False
        first, second = (
            (self, other) if self.index < other.index else (other, self)
        )
        if first is not self:
            return False  # trace order is a prerequisite for HB
        return self.clock_value <= other.clock.get(self.tid)

    def concurrent_with(self, other: "AccessInfo") -> bool:
        return not self.happens_before(other) and not other.happens_before(self)

    def conflicts_with(self, other: "AccessInfo") -> bool:
        """Same variable and at least one write."""
        return self.var == other.var and (
            self.kind == WRITE or other.kind == WRITE
        )


@dataclass(frozen=True)
class RacePair:
    """A racing access pair; ``first.index < second.index``."""

    first: AccessInfo
    second: AccessInfo

    @property
    def distinct_key(self) -> Tuple[int, int]:
        return (self.first.site, self.second.site)

    @property
    def kind(self) -> str:
        return {
            (WRITE, WRITE): "ww",
            (WRITE, READ): "wr",
            (READ, WRITE): "rw",
        }[(self.first.kind, self.second.kind)]

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"race[{self.kind}] var={self.first.var} "
            f"#{self.first.index}(t{self.first.tid}) vs "
            f"#{self.second.index}(t{self.second.tid})"
        )


class HBOracle:
    """Computes exact happens-before facts for one trace."""

    def __init__(self, events: Iterable[Event]) -> None:
        self.accesses: List[AccessInfo] = []
        self._by_var: Dict[int, List[AccessInfo]] = {}
        self._compute(list(events))

    # -- construction ---------------------------------------------------------

    def _compute(self, events: List[Event]) -> None:
        thread_clock: Dict[int, VectorClock] = {}
        lock_clock: Dict[int, VectorClock] = {}
        vol_clock: Dict[int, VectorClock] = {}

        def clock_of(tid: int) -> VectorClock:
            clock = thread_clock.get(tid)
            if clock is None:
                clock = VectorClock()
                clock.increment(tid)
                thread_clock[tid] = clock
            return clock

        for index, e in enumerate(events):
            kind = e.kind
            if kind == READ or kind == WRITE:
                clock = clock_of(e.tid)
                info = AccessInfo(
                    index=index,
                    tid=e.tid,
                    kind=kind,
                    var=e.target,
                    site=e.site,
                    clock_value=clock.get(e.tid),
                    clock=clock.copy(),
                )
                self.accesses.append(info)
                self._by_var.setdefault(e.target, []).append(info)
            elif kind == ACQUIRE:
                source = lock_clock.get(e.target)
                if source is not None:
                    clock_of(e.tid).join(source)
            elif kind == RELEASE:
                clock = clock_of(e.tid)
                lock_clock[e.target] = clock.copy()
                clock.increment(e.tid)
            elif kind == FORK:
                clock = clock_of(e.tid)
                child = clock.copy()
                child.increment(e.target)
                thread_clock[e.target] = child
                clock.increment(e.tid)
            elif kind == JOIN:
                child = clock_of(e.target)
                clock_of(e.tid).join(child)
                child.increment(e.target)
            elif kind == VOL_READ:
                source = vol_clock.get(e.target)
                if source is not None:
                    clock_of(e.tid).join(source)
            elif kind == VOL_WRITE:
                clock = clock_of(e.tid)
                target = vol_clock.setdefault(e.target, VectorClock())
                target.join(clock)
                clock.increment(e.tid)
            # sbegin/send/method/alloc events carry no happens-before edges

    # -- queries -----------------------------------------------------------------

    def all_races(self) -> List[RacePair]:
        """Every conflicting, concurrent access pair, in trace order."""
        races: List[RacePair] = []
        for accesses in self._by_var.values():
            n = len(accesses)
            for j in range(n):
                b = accesses[j]
                for i in range(j):
                    a = accesses[i]
                    if a.conflicts_with(b) and not a.happens_before(b):
                        races.append(RacePair(a, b))
        races.sort(key=lambda r: (r.second.index, r.first.index))
        return races

    def reportable_races(self) -> List[RacePair]:
        """Pairs (a, b) where a is the *last* access racing with b.

        These are the races precise shortest-race detectors (FASTTRACK)
        report, and the races PACER reports when a is sampled.
        """
        races: List[RacePair] = []
        for accesses in self._by_var.values():
            n = len(accesses)
            for j in range(n):
                b = accesses[j]
                best: Optional[AccessInfo] = None
                for i in range(j - 1, -1, -1):
                    a = accesses[i]
                    if a.conflicts_with(b) and not a.happens_before(b):
                        best = a
                        break
                if best is not None:
                    races.append(RacePair(best, b))
        races.sort(key=lambda r: (r.second.index, r.first.index))
        return races

    def is_race_free(self) -> bool:
        """True iff the trace contains no conflicting concurrent pair."""
        for accesses in self._by_var.values():
            n = len(accesses)
            for j in range(n):
                b = accesses[j]
                for i in range(j):
                    a = accesses[i]
                    if a.conflicts_with(b) and not a.happens_before(b):
                        return False
        return True

    def racy_variables(self) -> Set[int]:
        """Variables participating in at least one race."""
        return {r.first.var for r in self.all_races()}

    def distinct_races(self) -> Set[Tuple[int, int]]:
        """Static site-pair identities of all races."""
        return {r.distinct_key for r in self.all_races()}
