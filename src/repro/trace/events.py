"""The event alphabet of the paper's formal semantics (Appendix A).

A trace is a sequence of :class:`Event` records.  The core alphabet is

``rd, wr, acq, rel, fork, join, vol_rd, vol_wr, sbegin, send``

exactly as in Appendix A.  Two auxiliary kinds support the substrate:
``m_enter``/``m_exit`` delimit method invocations (needed by the
LiteRace baseline, which samples at method granularity) and ``alloc``
models heap allocation (drives the simulator's GC-based sampling).
Detectors that do not care about an auxiliary kind ignore it.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

__all__ = [
    "READ",
    "WRITE",
    "ACQUIRE",
    "RELEASE",
    "FORK",
    "JOIN",
    "VOL_READ",
    "VOL_WRITE",
    "SBEGIN",
    "SEND",
    "METHOD_ENTER",
    "METHOD_EXIT",
    "ALLOC",
    "KINDS",
    "SYNC_KINDS",
    "ACCESS_KINDS",
    "KIND_TO_ID",
    "ID_TO_KIND",
    "Event",
    "rd",
    "wr",
    "acq",
    "rel",
    "fork",
    "join",
    "vol_rd",
    "vol_wr",
    "sbegin",
    "send",
]

READ = "rd"
WRITE = "wr"
ACQUIRE = "acq"
RELEASE = "rel"
FORK = "fork"
JOIN = "join"
VOL_READ = "vol_rd"
VOL_WRITE = "vol_wr"
SBEGIN = "sbegin"
SEND = "send"
METHOD_ENTER = "m_enter"
METHOD_EXIT = "m_exit"
ALLOC = "alloc"

KINDS = frozenset(
    {
        READ,
        WRITE,
        ACQUIRE,
        RELEASE,
        FORK,
        JOIN,
        VOL_READ,
        VOL_WRITE,
        SBEGIN,
        SEND,
        METHOD_ENTER,
        METHOD_EXIT,
        ALLOC,
    }
)

#: Kinds that are synchronization actions (Appendix A).
SYNC_KINDS = frozenset({ACQUIRE, RELEASE, FORK, JOIN, VOL_READ, VOL_WRITE})

#: Kinds that access data variables and may race.
ACCESS_KINDS = frozenset({READ, WRITE})

#: Canonical small-integer numbering of the event alphabet.  This is the
#: single source of truth for every packed representation of a trace:
#: the binary wire format (:mod:`repro.trace.binio`) and the columnar
#: in-memory batches (:mod:`repro.trace.batch`) both index by it, so a
#: batch can be built straight from decoded records without re-mapping.
KIND_TO_ID = {
    READ: 0,
    WRITE: 1,
    ACQUIRE: 2,
    RELEASE: 3,
    FORK: 4,
    JOIN: 5,
    VOL_READ: 6,
    VOL_WRITE: 7,
    SBEGIN: 8,
    SEND: 9,
    METHOD_ENTER: 10,
    METHOD_EXIT: 11,
    ALLOC: 12,
}

#: Inverse of :data:`KIND_TO_ID` as a list indexable by kind id.
ID_TO_KIND = [k for k, _ in sorted(KIND_TO_ID.items(), key=lambda kv: kv[1])]


class Event(NamedTuple):
    """One trace action.

    ``tid`` is the acting thread (-1 for the global ``sbegin``/``send``
    actions, which are not initiated by any thread).  ``target`` is the
    variable, lock, volatile, peer thread, method, or byte count,
    depending on ``kind``.  ``site`` identifies the static program
    location, used in race reports.
    """

    kind: str
    tid: int
    target: int
    site: int = 0

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        if self.kind in (SBEGIN, SEND):
            return self.kind
        return f"{self.kind}(t{self.tid}, {self.target})@{self.site}"


# -- concise constructors (used heavily in tests and examples) ------------


def rd(tid: int, var: int, site: int = 0) -> Event:
    """Thread ``tid`` reads data variable ``var``."""
    return Event(READ, tid, var, site)


def wr(tid: int, var: int, site: int = 0) -> Event:
    """Thread ``tid`` writes data variable ``var``."""
    return Event(WRITE, tid, var, site)


def acq(tid: int, lock: int, site: int = 0) -> Event:
    """Thread ``tid`` acquires lock ``lock``."""
    return Event(ACQUIRE, tid, lock, site)


def rel(tid: int, lock: int, site: int = 0) -> Event:
    """Thread ``tid`` releases lock ``lock``."""
    return Event(RELEASE, tid, lock, site)


def fork(tid: int, child: int, site: int = 0) -> Event:
    """Thread ``tid`` forks thread ``child``."""
    return Event(FORK, tid, child, site)


def join(tid: int, child: int, site: int = 0) -> Event:
    """Thread ``tid`` joins (waits for) thread ``child``."""
    return Event(JOIN, tid, child, site)


def vol_rd(tid: int, vol: int, site: int = 0) -> Event:
    """Thread ``tid`` reads volatile ``vol``."""
    return Event(VOL_READ, tid, vol, site)


def vol_wr(tid: int, vol: int, site: int = 0) -> Event:
    """Thread ``tid`` writes volatile ``vol``."""
    return Event(VOL_WRITE, tid, vol, site)


def sbegin() -> Event:
    """Global start of a sampling period."""
    return Event(SBEGIN, -1, 0, 0)


def send() -> Event:
    """Global end of a sampling period."""
    return Event(SEND, -1, 0, 0)


def access_events(events: Iterable[Event]) -> Iterable[Event]:
    """Filter a trace down to data reads and writes."""
    return (e for e in events if e.kind in ACCESS_KINDS)
