"""Plain-text trace serialization.

LiteRace's native mode is offline analysis over logged traces (paper
§2.3); this module provides the log format: one event per line,

    <kind> <tid> <target> [site]

with ``#`` comments and blank lines ignored.  ``sbegin``/``send`` take no
operands.  The format round-trips exactly through
:func:`dump_trace`/:func:`load_trace`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, TextIO, Union

from .events import Event, KINDS, SBEGIN, SEND
from .trace import Trace, TraceFormatError

__all__ = ["dump_trace", "load_trace", "dumps_trace", "loads_trace"]


def _format_event(e: Event) -> str:
    if e.kind in (SBEGIN, SEND):
        return e.kind
    if e.site:
        return f"{e.kind} {e.tid} {e.target} {e.site}"
    return f"{e.kind} {e.tid} {e.target}"


def _parse_line(line: str, lineno: int) -> Event:
    parts = line.split()
    kind = parts[0]
    if kind not in KINDS:
        raise TraceFormatError(f"line {lineno}: unknown event kind {kind!r}")
    if kind in (SBEGIN, SEND):
        if len(parts) != 1:
            raise TraceFormatError(f"line {lineno}: {kind} takes no operands")
        return Event(kind, -1, 0, 0)
    if len(parts) not in (3, 4):
        raise TraceFormatError(
            f"line {lineno}: expected '<kind> <tid> <target> [site]', got {line!r}"
        )
    try:
        tid, target = int(parts[1]), int(parts[2])
        site = int(parts[3]) if len(parts) == 4 else 0
    except ValueError:
        raise TraceFormatError(
            f"line {lineno}: non-integer operand in {line!r}"
        ) from None
    return Event(kind, tid, target, site)


def dumps_trace(events: Iterable[Event]) -> str:
    """Serialize events to the text format."""
    return "\n".join(_format_event(e) for e in events) + "\n"


def loads_trace(text: str, validate: bool = True) -> Trace:
    """Parse the text format into a :class:`Trace`."""
    events: List[Event] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        events.append(_parse_line(line, lineno))
    trace = Trace(events)
    if validate:
        trace.validate()
    return trace


def dump_trace(events: Iterable[Event], path: Union[str, Path]) -> None:
    """Write events to ``path`` in the text format."""
    Path(path).write_text(dumps_trace(events))


def load_trace(path: Union[str, Path], validate: bool = True) -> Trace:
    """Read a trace file written by :func:`dump_trace`."""
    return loads_trace(Path(path).read_text(), validate=validate)
