"""Trace containers and well-formedness validation (Appendix A).

The paper restricts attention to *feasible* traces obeying traditional
synchronization semantics; :meth:`Trace.validate` enforces those rules:

* a thread never acquires a lock held (unreleased) by another thread;
* a thread never releases a lock it does not hold (monitors are
  reentrant, as in Java);
* a forked thread performs no actions before its ``fork`` and none after
  being ``join``\\ ed; threads are forked and joined at most once;
* ``sbegin``/``send`` alternate (no nested sampling periods).

Root threads (those never forked, e.g. the main thread) may act from the
start of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from .events import (
    ACCESS_KINDS,
    ACQUIRE,
    Event,
    FORK,
    JOIN,
    KINDS,
    READ,
    RELEASE,
    SBEGIN,
    SEND,
    SYNC_KINDS,
    VOL_READ,
    VOL_WRITE,
    WRITE,
)

__all__ = ["Trace", "TraceError", "TraceFormatError"]


class TraceError(ValueError):
    """A trace violates the feasibility rules of Appendix A."""

    def __init__(self, index: int, event: Optional[Event], message: str) -> None:
        self.index = index
        self.event = event
        super().__init__(f"event {index} ({event}): {message}")


class TraceFormatError(ValueError):
    """A serialized trace is malformed (truncated, corrupt, or not a trace).

    Raised by the text and binary loaders for *format*-level problems, as
    opposed to :class:`TraceError`, which flags a well-formed event
    sequence that is not feasible.  Both subclass :class:`ValueError`, so
    ``except ValueError`` catches any failed load.
    """


@dataclass
class Trace:
    """An immutable-by-convention sequence of events with helpers.

    Construct from any iterable of :class:`Event`; ``validate=True``
    (default) checks feasibility eagerly.
    """

    events: List[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = list(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __getitem__(self, idx):
        return self.events[idx]

    # -- summary properties -------------------------------------------------

    @property
    def threads(self) -> Set[int]:
        """All thread ids that act or are forked/joined."""
        tids: Set[int] = set()
        for e in self.events:
            if e.tid >= 0:
                tids.add(e.tid)
            if e.kind in (FORK, JOIN):
                tids.add(e.target)
        return tids

    @property
    def variables(self) -> Set[int]:
        return {e.target for e in self.events if e.kind in ACCESS_KINDS}

    @property
    def locks(self) -> Set[int]:
        return {e.target for e in self.events if e.kind in (ACQUIRE, RELEASE)}

    @property
    def volatiles(self) -> Set[int]:
        return {e.target for e in self.events if e.kind in (VOL_READ, VOL_WRITE)}

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def n_sync_ops(self) -> int:
        return sum(1 for e in self.events if e.kind in SYNC_KINDS)

    @property
    def n_accesses(self) -> int:
        return sum(1 for e in self.events if e.kind in ACCESS_KINDS)

    # -- validation -----------------------------------------------------------

    def validate(self) -> "Trace":
        """Check Appendix A feasibility; raises :class:`TraceError`.

        Returns ``self`` so construction can be chained.
        """
        lock_holder: Dict[int, int] = {}
        lock_depth: Dict[int, int] = {}
        forked: Set[int] = set()
        joined: Set[int] = set()
        acted: Set[int] = set()
        sampling = False
        for i, e in enumerate(self.events):
            if e.kind not in KINDS:
                raise TraceError(i, e, f"unknown kind {e.kind!r}")
            if e.kind == SBEGIN:
                if sampling:
                    raise TraceError(i, e, "sbegin inside a sampling period")
                sampling = True
                continue
            if e.kind == SEND:
                if not sampling:
                    raise TraceError(i, e, "send outside a sampling period")
                sampling = False
                continue
            if e.tid < 0:
                raise TraceError(i, e, "thread actions need a valid tid")
            if e.tid in joined:
                raise TraceError(i, e, f"thread {e.tid} acts after being joined")
            acted.add(e.tid)
            if e.kind == ACQUIRE:
                holder = lock_holder.get(e.target)
                if holder is not None and holder != e.tid:
                    raise TraceError(
                        i, e, f"lock {e.target} already held by thread {holder}"
                    )
                lock_holder[e.target] = e.tid
                lock_depth[e.target] = lock_depth.get(e.target, 0) + 1
            elif e.kind == RELEASE:
                if lock_holder.get(e.target) != e.tid:
                    raise TraceError(
                        i, e, f"thread {e.tid} releases lock {e.target} it does not hold"
                    )
                lock_depth[e.target] -= 1
                if lock_depth[e.target] == 0:
                    del lock_holder[e.target]
                    del lock_depth[e.target]
            elif e.kind == FORK:
                if e.target == e.tid:
                    raise TraceError(i, e, "thread forks itself")
                if e.target in forked:
                    raise TraceError(i, e, f"thread {e.target} forked twice")
                if e.target in acted:
                    raise TraceError(
                        i, e, f"thread {e.target} acted before being forked"
                    )
                forked.add(e.target)
            elif e.kind == JOIN:
                if e.target == e.tid:
                    raise TraceError(i, e, "thread joins itself")
                if e.target in joined:
                    raise TraceError(i, e, f"thread {e.target} joined twice")
                joined.add(e.target)
        return self

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def of(cls, *events: Event, validate: bool = True) -> "Trace":
        """Build a trace from event arguments; validates by default."""
        trace = cls(list(events))
        if validate:
            trace.validate()
        return trace

    @classmethod
    def from_iterable(cls, events: Iterable[Event], validate: bool = True) -> "Trace":
        trace = cls(list(events))
        if validate:
            trace.validate()
        return trace
