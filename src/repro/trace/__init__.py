"""Trace substrate: events, validation, oracle, generation, serialization."""

from .batch import DEFAULT_BATCH_SIZE, EventBatch, encode_batch, iter_batches
from .events import Event
from .generator import GeneratorConfig, race_free_trace, random_trace
from .oracle import AccessInfo, HBOracle, RacePair
from .binio import (
    dump_trace_binary,
    dumps_binary,
    load_trace_binary,
    loads_binary,
)
from .textio import dump_trace, dumps_trace, load_trace, loads_trace
from .trace import Trace, TraceError, TraceFormatError

__all__ = [
    "Event",
    "EventBatch",
    "encode_batch",
    "iter_batches",
    "DEFAULT_BATCH_SIZE",
    "Trace",
    "TraceError",
    "TraceFormatError",
    "HBOracle",
    "AccessInfo",
    "RacePair",
    "GeneratorConfig",
    "random_trace",
    "race_free_trace",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "dump_trace_binary",
    "dumps_binary",
    "load_trace_binary",
    "loads_binary",
]
